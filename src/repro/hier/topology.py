"""Declarative fleet topologies (device → edge → region → global).

A :class:`FleetTopology` is a fully materialised aggregation tree over
a fixed device roster: a single global root, an optional regional
tier, and a tier of edge aggregators that own the devices. Devices are
assigned to edge aggregators by seeded k-means over per-device feature
vectors (power curve and OPP-table summaries plus a seeded location
stand-in), or by contiguous roster chunks — both deterministic in the
seed, so every backend and every rerun builds the identical tree.

Spec strings follow the house style of
:class:`repro.faults.plan.FaultPlan` /
:class:`repro.guard.churn.ChurnPlan`: either a path to a saved JSON
topology or comma-separated ``key=value`` pairs, e.g.
``"edges=32,seed=7"`` or ``"edges=16,regions=4,cluster=kmeans"``.
A depth-1 topology (``"flat"`` or ``edges=0``) is the identity: one
root that owns every device, bit-identical to the flat server.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import stable_token
from repro.utils.rng import generator_from_root

#: Tier names, root downwards. The root is always ``"global"``.
TIER_GLOBAL = "global"
TIER_REGION = "region"
TIER_EDGE = "edge"

#: Clustering methods accepted in topology specs.
CLUSTER_METHODS = ("kmeans", "contiguous")

#: Root node id. Matches the flat server's default ``server_id`` so a
#: depth-1 topology reproduces today's wire traffic byte-for-byte.
ROOT_ID = "server"


@dataclass(frozen=True)
class TopologyNode:
    """One aggregation node: id, tier, parent link and children.

    ``children`` are device names for edge-tier nodes and node ids for
    internal tiers. The root has ``parent=None``.
    """

    node_id: str
    tier: str
    parent: Optional[str]
    children: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.node_id:
            raise ConfigurationError("topology node needs a non-empty id")
        if self.tier not in (TIER_GLOBAL, TIER_REGION, TIER_EDGE):
            raise ConfigurationError(
                f"unknown tier {self.tier!r} for node {self.node_id!r}"
            )
        if (self.parent is None) != (self.tier == TIER_GLOBAL):
            raise ConfigurationError(
                f"node {self.node_id!r}: exactly the global root may have "
                f"no parent"
            )
        if not self.children:
            raise ConfigurationError(
                f"node {self.node_id!r} has no children; empty aggregators "
                f"are dropped at construction"
            )
        if len(set(self.children)) != len(self.children):
            raise ConfigurationError(
                f"node {self.node_id!r} lists duplicate children"
            )

    def to_dict(self) -> Dict[str, object]:
        return {
            "node_id": self.node_id,
            "tier": self.tier,
            "parent": self.parent,
            "children": list(self.children),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TopologyNode":
        return cls(
            node_id=str(data["node_id"]),
            tier=str(data["tier"]),
            parent=(None if data.get("parent") is None else str(data["parent"])),
            children=tuple(str(c) for c in data.get("children", ())),
        )


def default_device_features(
    devices: Sequence[str], seed: int = 0, opp_table=None
) -> Dict[str, Tuple[float, ...]]:
    """Per-device feature vectors for clustering.

    Real deployments would feed measured power curves here; the
    simulator's fleet shares one OPP table, so the OPP features (peak
    ``V²f`` power proxy, frequency span, level count) are constant
    across devices and a seeded 2-D location stand-in carries the
    geographic structure. Locations are drawn per device from
    ``(seed, 23, stable_token(name))`` sub-streams — order-independent,
    so adding a device never moves any other device's location.
    """
    if opp_table is None:
        from repro.sim.opp import JETSON_NANO_OPP_TABLE

        opp_table = JETSON_NANO_OPP_TABLE
    top = opp_table[opp_table.num_levels - 1]
    power_proxy = top.voltage_v**2 * top.frequency_hz / 1e9
    span = (
        opp_table.max_frequency_hz - opp_table.min_frequency_hz
    ) / opp_table.max_frequency_hz
    features: Dict[str, Tuple[float, ...]] = {}
    for name in devices:
        location = generator_from_root(seed, 23, stable_token(name)).uniform(
            0.0, 1.0, size=2
        )
        features[name] = (
            float(location[0]),
            float(location[1]),
            float(power_proxy),
            float(span),
            float(opp_table.num_levels),
        )
    return features


def _kmeans_labels(
    points: np.ndarray, k: int, rng: np.random.Generator, iterations: int = 20
) -> np.ndarray:
    """Seeded Lloyd's k-means; deterministic ties (lowest centroid wins)."""
    count = len(points)
    k = min(k, count)
    centroids = points[rng.choice(count, size=k, replace=False)].astype(
        np.float64
    )
    labels = np.zeros(count, dtype=np.intp)
    for _ in range(iterations):
        distances = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(
            axis=2
        )
        labels = np.argmin(distances, axis=1)
        for centroid_index in range(k):
            members = points[labels == centroid_index]
            if len(members):
                centroids[centroid_index] = members.mean(axis=0)
    return labels


def _cluster_devices(
    devices: Sequence[str],
    num_clusters: int,
    method: str,
    seed: int,
    features: Optional[Mapping[str, Sequence[float]]],
) -> List[List[str]]:
    """Partition the roster into at most ``num_clusters`` groups.

    Groups preserve roster order internally; empty groups are dropped.
    """
    num_clusters = min(num_clusters, len(devices))
    if num_clusters <= 1:
        return [list(devices)]
    if method == "contiguous":
        splits = np.array_split(np.arange(len(devices)), num_clusters)
        return [
            [devices[i] for i in chunk] for chunk in splits if len(chunk)
        ]
    if features is None:
        features = default_device_features(devices, seed=seed)
    missing = [name for name in devices if name not in features]
    if missing:
        raise ConfigurationError(
            f"no cluster features for devices {missing[:5]}"
            + ("..." if len(missing) > 5 else "")
        )
    points = np.asarray(
        [features[name] for name in devices], dtype=np.float64
    )
    # Normalise columns so the constant OPP features cannot drown the
    # location axes (or vice versa) purely by unit choice.
    spread = points.max(axis=0) - points.min(axis=0)
    spread[spread == 0.0] = 1.0
    points = (points - points.min(axis=0)) / spread
    labels = _kmeans_labels(
        points, num_clusters, generator_from_root(seed, 24)
    )
    clusters: Dict[int, List[str]] = {}
    for name, label in zip(devices, labels):
        clusters.setdefault(int(label), []).append(name)
    # Stable cluster order: by first member's roster position.
    order = {name: index for index, name in enumerate(devices)}
    return sorted(clusters.values(), key=lambda group: order[group[0]])


class FleetTopology:
    """A materialised aggregation tree over a fixed device roster."""

    def __init__(
        self, devices: Sequence[str], nodes: Sequence[TopologyNode]
    ) -> None:
        if not devices:
            raise ConfigurationError("a topology needs at least one device")
        if len(set(devices)) != len(devices):
            raise ConfigurationError("duplicate device names in the roster")
        self.devices: Tuple[str, ...] = tuple(devices)
        self.nodes: Tuple[TopologyNode, ...] = tuple(nodes)
        self._by_id: Dict[str, TopologyNode] = {}
        for node in self.nodes:
            if node.node_id in self._by_id:
                raise ConfigurationError(
                    f"duplicate node id {node.node_id!r}"
                )
            self._by_id[node.node_id] = node
        device_set = set(self.devices)
        collisions = device_set & set(self._by_id)
        if collisions:
            raise ConfigurationError(
                f"node ids collide with device names: {sorted(collisions)}"
            )
        roots = [n for n in self.nodes if n.parent is None]
        if len(roots) != 1:
            raise ConfigurationError(
                f"a topology needs exactly one root, found {len(roots)}"
            )
        self._root = roots[0]
        self._parent_of: Dict[str, str] = {}
        owned_devices: List[str] = []
        for node in self.nodes:
            if node.parent is not None:
                parent = self._by_id.get(node.parent)
                if parent is None:
                    raise ConfigurationError(
                        f"node {node.node_id!r} names unknown parent "
                        f"{node.parent!r}"
                    )
                if node.node_id not in parent.children:
                    raise ConfigurationError(
                        f"node {node.parent!r} does not list child "
                        f"{node.node_id!r}"
                    )
            for child in node.children:
                if child in self._parent_of:
                    raise ConfigurationError(
                        f"{child!r} has two parents ({self._parent_of[child]!r}"
                        f" and {node.node_id!r})"
                    )
                self._parent_of[child] = node.node_id
                if child in device_set:
                    owned_devices.append(child)
                elif child not in self._by_id:
                    raise ConfigurationError(
                        f"node {node.node_id!r} lists unknown child {child!r}"
                    )
        unowned = device_set - set(owned_devices)
        if unowned:
            raise ConfigurationError(
                f"devices missing from the tree: {sorted(unowned)[:5]}"
            )
        for node in self.nodes:
            kinds = {child in device_set for child in node.children}
            if len(kinds) > 1:
                raise ConfigurationError(
                    f"node {node.node_id!r} mixes device and node children"
                )
        self._leaves: Dict[str, Tuple[str, ...]] = {}
        for node in self.nodes:
            self._leaves[node.node_id] = self._collect_leaves(node)

    def _collect_leaves(self, node: TopologyNode) -> Tuple[str, ...]:
        if node.children and node.children[0] in self._by_id:
            leaves: List[str] = []
            for child in node.children:
                leaves.extend(self._collect_leaves(self._by_id[child]))
            return tuple(leaves)
        return node.children

    # -- structure queries -------------------------------------------------

    @property
    def root(self) -> TopologyNode:
        return self._root

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def depth(self) -> int:
        """Aggregation tiers between a device and the global model."""
        tiers = {node.tier for node in self.nodes}
        return len(tiers)

    @property
    def is_flat(self) -> bool:
        """True when the tree is the identity (root owns every device)."""
        return len(self.nodes) == 1

    def node(self, node_id: str) -> TopologyNode:
        try:
            return self._by_id[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node {node_id!r}") from None

    def parent_of(self, name: str) -> str:
        """Owning node of a device or non-root node."""
        try:
            return self._parent_of[name]
        except KeyError:
            raise ConfigurationError(
                f"{name!r} is not a device or child node of this topology"
            ) from None

    def leaves_under(self, node_id: str) -> Tuple[str, ...]:
        """Devices in this node's subtree, in roster order per cluster."""
        self.node(node_id)
        return self._leaves[node_id]

    def nodes_at_tier(self, tier: str) -> List[TopologyNode]:
        return [node for node in self.nodes if node.tier == tier]

    def counts_by_tier(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.tier] = counts.get(node.tier, 0) + 1
        return counts

    def device_clusters(self) -> Dict[str, Tuple[str, ...]]:
        """``edge node id -> its devices`` (root id for flat trees)."""
        return {
            node.node_id: node.children
            for node in self.nodes
            if node.children and node.children[0] in set(self.devices)
        }

    def max_fan_in(self) -> int:
        """Largest child count of any node — the buffering bound for
        non-streaming (robust) per-node aggregation."""
        return max(len(node.children) for node in self.nodes)

    def describe(self) -> str:
        counts = self.counts_by_tier()
        tiers = " -> ".join(
            f"{tier}:{counts[tier]}"
            for tier in (TIER_GLOBAL, TIER_REGION, TIER_EDGE)
            if tier in counts
        )
        return (
            f"FleetTopology(devices={self.num_devices}, depth={self.depth}, "
            f"{tiers}, max_fan_in={self.max_fan_in()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FleetTopology):
            return NotImplemented
        return self.devices == other.devices and self.nodes == other.nodes

    def __len__(self) -> int:
        return len(self.nodes)

    # -- construction ------------------------------------------------------

    @classmethod
    def flat(
        cls, devices: Sequence[str], root_id: str = ROOT_ID
    ) -> "FleetTopology":
        """The identity topology: one global root owning every device."""
        return cls(
            devices,
            [
                TopologyNode(
                    node_id=root_id,
                    tier=TIER_GLOBAL,
                    parent=None,
                    children=tuple(devices),
                )
            ],
        )

    @classmethod
    def clustered(
        cls,
        devices: Sequence[str],
        edges: int,
        regions: int = 0,
        seed: int = 0,
        method: str = "kmeans",
        features: Optional[Mapping[str, Sequence[float]]] = None,
        root_id: str = ROOT_ID,
    ) -> "FleetTopology":
        """Build a 2- or 3-tier tree by clustering the device roster.

        ``edges`` edge aggregators own the devices (seeded k-means over
        ``features`` by default); with ``regions > 0`` the edge nodes
        are themselves grouped into regional aggregators by contiguous
        chunks of the edge ordering (edge clusters are already
        spatially coherent). ``edges=0`` returns the flat identity.
        """
        if edges < 0 or regions < 0:
            raise ConfigurationError(
                f"edges/regions must be >= 0, got edges={edges}, "
                f"regions={regions}"
            )
        if method not in CLUSTER_METHODS:
            raise ConfigurationError(
                f"unknown cluster method {method!r}; available: "
                f"{', '.join(CLUSTER_METHODS)}"
            )
        if edges == 0:
            if regions:
                raise ConfigurationError(
                    "regions require an edge tier (edges > 0)"
                )
            return cls.flat(devices, root_id=root_id)
        clusters = _cluster_devices(devices, edges, method, seed, features)
        width = max(3, len(str(len(clusters) - 1)))
        edge_nodes = [
            TopologyNode(
                node_id=f"edge_{index:0{width}d}",
                tier=TIER_EDGE,
                parent="",  # patched below once the parent tier exists
                children=tuple(cluster),
            )
            for index, cluster in enumerate(clusters)
        ]
        nodes: List[TopologyNode]
        if regions:
            regions = min(regions, len(edge_nodes))
            groups = [
                chunk
                for chunk in np.array_split(
                    np.arange(len(edge_nodes)), regions
                )
                if len(chunk)
            ]
            region_nodes = []
            edge_parent: Dict[int, str] = {}
            rwidth = max(2, len(str(len(groups) - 1)))
            for region_index, chunk in enumerate(groups):
                region_id = f"region_{region_index:0{rwidth}d}"
                for edge_index in chunk:
                    edge_parent[int(edge_index)] = region_id
                region_nodes.append(
                    TopologyNode(
                        node_id=region_id,
                        tier=TIER_REGION,
                        parent=root_id,
                        children=tuple(
                            edge_nodes[int(i)].node_id for i in chunk
                        ),
                    )
                )
            edge_nodes = [
                TopologyNode(
                    node_id=node.node_id,
                    tier=node.tier,
                    parent=edge_parent[index],
                    children=node.children,
                )
                for index, node in enumerate(edge_nodes)
            ]
            root = TopologyNode(
                node_id=root_id,
                tier=TIER_GLOBAL,
                parent=None,
                children=tuple(node.node_id for node in region_nodes),
            )
            nodes = [root, *region_nodes, *edge_nodes]
        else:
            edge_nodes = [
                TopologyNode(
                    node_id=node.node_id,
                    tier=node.tier,
                    parent=root_id,
                    children=node.children,
                )
                for node in edge_nodes
            ]
            root = TopologyNode(
                node_id=root_id,
                tier=TIER_GLOBAL,
                parent=None,
                children=tuple(node.node_id for node in edge_nodes),
            )
            nodes = [root, *edge_nodes]
        return cls(devices, nodes)

    @classmethod
    def from_spec(
        cls,
        spec: "FleetTopology | str | None",
        devices: Sequence[str],
        seed: int = 0,
    ) -> "FleetTopology":
        """Resolve a topology spec against a device roster.

        ``spec`` may be a materialised topology (validated against the
        roster), a path to a saved JSON topology, ``"flat"``, or
        comma-separated ``key=value`` pairs — ``edges``, ``regions``,
        ``seed`` and ``cluster`` (``kmeans``/``contiguous``), e.g.
        ``"edges=32,seed=7"``. ``None`` and ``""`` mean flat.
        """
        if isinstance(spec, FleetTopology):
            if tuple(spec.devices) != tuple(devices):
                raise ConfigurationError(
                    f"topology was built for {spec.num_devices} devices, "
                    f"roster has {len(devices)}"
                )
            return spec
        if spec is None:
            return cls.flat(devices)
        text = str(spec).strip()
        if not text or text == "flat":
            return cls.flat(devices)
        if text.endswith(".json") or Path(text).exists():
            topology = cls.load(text)
            if tuple(topology.devices) != tuple(devices):
                raise ConfigurationError(
                    f"saved topology {text!r} was built for a different "
                    f"roster ({topology.num_devices} devices vs "
                    f"{len(devices)})"
                )
            return topology
        settings: Dict[str, str] = {}
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, separator, value = part.partition("=")
            if not separator:
                raise ConfigurationError(
                    f"bad topology spec item {part!r}; expected key=value"
                )
            settings[key.strip()] = value.strip()
        known = {"edges", "regions", "seed", "cluster"}
        unknown = set(settings) - known
        if unknown:
            raise ConfigurationError(
                f"unknown topology spec keys {sorted(unknown)}; "
                f"available: {sorted(known)}"
            )
        try:
            edges = int(settings.get("edges", "0"))
            regions = int(settings.get("regions", "0"))
            spec_seed = int(settings.get("seed", str(seed)))
        except ValueError as error:
            raise ConfigurationError(
                f"bad topology spec {text!r}: {error}"
            ) from error
        return cls.clustered(
            devices,
            edges=edges,
            regions=regions,
            seed=spec_seed,
            method=settings.get("cluster", "kmeans"),
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "devices": list(self.devices),
            "nodes": [node.to_dict() for node in self.nodes],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "FleetTopology":
        return cls(
            [str(d) for d in data["devices"]],
            [TopologyNode.from_dict(n) for n in data["nodes"]],
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FleetTopology":
        return cls.from_dict(json.loads(text))

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path: "str | Path") -> "FleetTopology":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))
