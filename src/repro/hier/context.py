"""Ambient hierarchy configuration.

Experiment runners share the uniform ``runner(config) -> str``
signature, so the CLI cannot thread ``--topology``/``--selection``
through every figure module — the same problem the telemetry sinks
(:mod:`repro.obs.context`), execution backend
(:mod:`repro.parallel.context`) and resilience settings
(:mod:`repro.faults.context`) have, solved the same way: the CLI
*activates* a :class:`HierConfig` here and
:func:`repro.experiments.training.train_federated` picks it up as its
default when no explicit ``topology``/``selection`` arguments are
passed. Explicit arguments always win; the empty stack resolves to
"flat server, status-quo uniform draw" — existing callers see zero
behaviour change.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union


@dataclass(frozen=True)
class HierConfig:
    """One activated hierarchy preference bundle.

    ``topology`` may be a materialised
    :class:`~repro.hier.topology.FleetTopology` or a spec string
    (resolved against the run's device roster by the training driver);
    ``selection`` a :class:`~repro.hier.selection.SelectionPolicy`
    instance or spec string.
    """

    topology: Optional[Union[object, str]] = None
    selection: Optional[Union[object, str]] = None


class _ThreadLocalStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[HierConfig] = []


_LOCAL = _ThreadLocalStack()


def get_active_hier() -> Optional[HierConfig]:
    """The innermost config activated on this thread, or ``None``."""
    stack = _LOCAL.stack
    return stack[-1] if stack else None


def resolve_hier(
    topology: Optional[Union[object, str]] = None,
    selection: Optional[Union[object, str]] = None,
) -> HierConfig:
    """Effective hierarchy settings for a driver call.

    Explicit arguments win field-by-field; otherwise the ambient
    config applies; otherwise both stay ``None`` (flat server,
    status-quo participation draw).
    """
    ambient = get_active_hier()
    if ambient is not None:
        if topology is None:
            topology = ambient.topology
        if selection is None:
            selection = ambient.selection
    return HierConfig(topology=topology, selection=selection)


@contextmanager
def hier(
    topology: Optional[Union[object, str]] = None,
    selection: Optional[Union[object, str]] = None,
) -> Iterator[HierConfig]:
    """Activate a hierarchy config for the enclosed block."""
    config = HierConfig(topology=topology, selection=selection)
    _LOCAL.stack.append(config)
    try:
        yield config
    finally:
        _LOCAL.stack.pop()
