"""Incremental per-node aggregation: fold updates in one at a time.

A flat server decodes every client's model before averaging — O(fleet
× model) memory. A :class:`StreamingAggregator` instead exposes
``begin(expected, weights) → fold(params)* → finalize()``, so a tier
node decodes one child update at a time, folds it into a single
accumulator and drops it: O(model) memory per node at any fan-in.

Exactness contract, mirrored from :mod:`repro.faults.aggregation`:

* :class:`StreamingMean` is **bit-identical** to
  :func:`repro.federated.averaging.federated_average` for the same
  update order and weights: weights are normalised up front with the
  same :func:`~repro.federated.averaging.normalize_weights` call, each
  per-array accumulator starts from the same ``np.zeros_like`` and
  receives the same ``accumulator += w_i * update_i`` additions in the
  same order. (Folding client-by-client instead of array-by-array
  reorders operations *across* accumulators, never within one.)
* :class:`StreamingNormClip` is exact when the clip bound is fixed:
  clipping is per-update, so clip-then-fold equals the batch
  clip-then-average. The self-calibrating variant (``clip_norm=None``
  uses the median of client norms) needs every norm before any scale
  and is rejected at construction.
* Median and trimmed-mean are order statistics — inherently not
  streamable. Their documented fallback,
  :class:`StreamingBufferedAggregator`, buffers child updates and
  delegates to the batch aggregator at ``finalize``; per-node memory
  is O(fan-in × model), bounded by the topology's branching factor
  rather than the fleet size.

Every aggregator tracks ``max_buffered`` — the high-water mark of
child updates held between folds — which the fleet-scale tests assert
stays 0 for the streaming paths regardless of device count.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AggregationError, ConfigurationError
from repro.faults.aggregation import (
    MedianAggregator,
    TrimmedMeanAggregator,
)
from repro.federated.averaging import has_non_finite, normalize_weights

#: Names accepted by :func:`build_streaming_aggregator`.
STREAMING_NAMES = ("mean", "median", "trimmed_mean", "norm_clip")


class StreamingAggregator:
    """Base class: fold child updates one at a time into one model.

    Lifecycle: ``begin(expected, weights)`` (the contributor count —
    and weights, if any — must be known up front, which every caller
    has after scanning its inbox headers), then exactly ``expected``
    ``fold`` calls, then ``finalize``. ``streaming`` marks O(model)
    implementations; buffered fallbacks set it ``False``.
    """

    name = "base"
    #: True when memory is O(model) regardless of fan-in.
    streaming = True
    #: True when the result is bit-identical to the batch counterpart.
    exact = True

    def __init__(self) -> None:
        self.max_buffered = 0
        self.last_rejected_indices: Tuple[int, ...] = ()
        self._expected = 0
        self._folded = 0

    def begin(
        self, expected: int, weights: Optional[Sequence[float]] = None
    ) -> None:
        if expected <= 0:
            raise AggregationError("cannot average zero parameter sets")
        self._expected = expected
        self._folded = 0
        self.last_rejected_indices = ()
        self._begin(expected, weights)

    def fold(self, parameters: Sequence[np.ndarray]) -> None:
        if self._expected == 0:
            raise AggregationError("fold() before begin()")
        if self._folded >= self._expected:
            raise AggregationError(
                f"fold() called more than the {self._expected} times "
                f"announced to begin()"
            )
        self._fold(parameters, self._folded)
        self._folded += 1

    def finalize(self) -> List[np.ndarray]:
        if self._folded != self._expected:
            raise AggregationError(
                f"finalize() after {self._folded} folds, expected "
                f"{self._expected}"
            )
        result = self._finalize()
        self._expected = 0
        return result

    # Subclass hooks.
    def _begin(
        self, expected: int, weights: Optional[Sequence[float]]
    ) -> None:
        raise NotImplementedError

    def _fold(self, parameters: Sequence[np.ndarray], index: int) -> None:
        raise NotImplementedError

    def _finalize(self) -> List[np.ndarray]:
        raise NotImplementedError


class StreamingMean(StreamingAggregator):
    """Running weighted mean, bit-identical to ``federated_average``.

    Divergence from the batch path only on one error case: the batch
    call scans every client before raising and reports *all* non-finite
    contributors; a stream can only name the first one it meets.
    """

    name = "mean"

    def __init__(self) -> None:
        super().__init__()
        self._normalized: Optional[np.ndarray] = None
        self._accumulators: Optional[List[np.ndarray]] = None
        self._shapes: Optional[List[Tuple[int, ...]]] = None

    def _begin(
        self, expected: int, weights: Optional[Sequence[float]]
    ) -> None:
        self._normalized = normalize_weights(weights, expected)
        self._accumulators = None
        self._shapes = None

    def _fold(self, parameters: Sequence[np.ndarray], index: int) -> None:
        if has_non_finite(parameters):
            raise AggregationError(
                f"non-finite (NaN/Inf) parameters from client(s) [{index}]; "
                "use a robust aggregator to drop poisoned updates"
            )
        arrays = [np.asarray(a, dtype=np.float64) for a in parameters]
        if self._accumulators is None:
            self._accumulators = [np.zeros_like(a) for a in arrays]
            self._shapes = [a.shape for a in arrays]
        else:
            if len(arrays) != len(self._accumulators):
                raise AggregationError(
                    f"client {index} has {len(arrays)} arrays, expected "
                    f"{len(self._accumulators)}"
                )
            for array_index, (array, shape) in enumerate(
                zip(arrays, self._shapes)
            ):
                if array.shape != shape:
                    raise AggregationError(
                        f"client {index} array {array_index} has shape "
                        f"{array.shape}, expected {shape}"
                    )
        weight = self._normalized[index]
        for accumulator, array in zip(self._accumulators, arrays):
            accumulator += weight * array

    def _finalize(self) -> List[np.ndarray]:
        assert self._accumulators is not None
        result = self._accumulators
        self._accumulators = None
        return result


class StreamingNormClip(StreamingMean):
    """Fixed-bound norm clipping, then the streaming mean.

    Exact vs :class:`repro.faults.aggregation.NormClipAggregator` with
    the same fixed ``clip_norm``: both scale each over-norm update by
    ``bound / norm`` before the identical weighted average. The
    self-calibrating batch mode (median-of-norms bound) is not
    streamable — it needs all norms before any scaling — so
    ``clip_norm`` is mandatory here; non-finite updates are dropped
    from the fold (robust semantics) rather than fatal, with the
    dropped positions in ``last_rejected_indices``.
    """

    name = "norm_clip"

    def __init__(self, clip_norm: float) -> None:
        if clip_norm is None:
            raise ConfigurationError(
                "streaming norm_clip needs a fixed clip bound; the "
                "self-calibrating median bound requires every client norm "
                "up front and cannot stream — pass e.g. 'norm_clip:5.0'"
            )
        if clip_norm <= 0:
            raise ConfigurationError(
                f"clip_norm must be positive, got {clip_norm}"
            )
        super().__init__()
        self.clip_norm = float(clip_norm)
        self._rejected: List[int] = []

    def _begin(
        self, expected: int, weights: Optional[Sequence[float]]
    ) -> None:
        # Weights are re-normalised over the surviving folds at
        # finalize, so keep the raw values here.
        self._raw_weights = (
            list(weights) if weights is not None else None
        )
        self._kept: List[Tuple[int, float]] = []
        self._pending: List[Tuple[List[np.ndarray], float]] = []
        self._rejected = []
        self._accumulators = None
        self._shapes = None

    def _fold(self, parameters: Sequence[np.ndarray], index: int) -> None:
        if has_non_finite(parameters):
            self._rejected.append(index)
            return
        arrays = [np.asarray(a, dtype=np.float64) for a in parameters]
        total = 0.0
        for array in arrays:
            flat = array.ravel()
            total += float(np.dot(flat, flat))
        norm = float(np.sqrt(total))
        if self.clip_norm > 0 and norm > self.clip_norm:
            factor = self.clip_norm / norm
            arrays = [array * factor for array in arrays]
        weight = (
            self._raw_weights[index] if self._raw_weights is not None else 1.0
        )
        # The running mean needs normalised weights, but the divisor
        # (the survivors' weight sum) is only known once every fold has
        # passed the finite screen — hold the weighted sums instead:
        # sum(w_i * x_i) / sum(w_i) equals the batch weighted mean.
        if self._accumulators is None:
            self._accumulators = [np.zeros_like(a) for a in arrays]
            self._shapes = [a.shape for a in arrays]
        for accumulator, array in zip(self._accumulators, arrays):
            accumulator += weight * array
        self._kept.append((index, weight))

    def _finalize(self) -> List[np.ndarray]:
        self.last_rejected_indices = tuple(self._rejected)
        if self._accumulators is None:
            raise AggregationError(
                "every client update was non-finite; nothing to aggregate"
            )
        total_weight = sum(weight for _, weight in self._kept)
        if total_weight <= 0:
            raise AggregationError("weights must not all be zero")
        result = [a / total_weight for a in self._accumulators]
        self._accumulators = None
        return result


class StreamingBufferedAggregator(StreamingAggregator):
    """Documented fallback for order-statistic aggregators.

    Median and trimmed mean need the full sorted column of child
    values, so they cannot stream; this wrapper buffers the node's
    child updates (memory O(fan-in × model) — bounded by the tree's
    branching factor, not the fleet size) and runs the batch aggregator
    at ``finalize``. Results are exactly the batch aggregator's.
    """

    streaming = False

    def __init__(self, batch_aggregator) -> None:
        super().__init__()
        self.batch = batch_aggregator
        self.name = batch_aggregator.name
        self._buffer: List[Sequence[np.ndarray]] = []
        self._weights: Optional[List[float]] = None

    def _begin(
        self, expected: int, weights: Optional[Sequence[float]]
    ) -> None:
        self._buffer = []
        self._weights = list(weights) if weights is not None else None

    def _fold(self, parameters: Sequence[np.ndarray], index: int) -> None:
        self._buffer.append(parameters)
        self.max_buffered = max(self.max_buffered, len(self._buffer))

    def _finalize(self) -> List[np.ndarray]:
        result = self.batch.aggregate(self._buffer, self._weights)
        self.last_rejected_indices = tuple(
            getattr(self.batch, "last_rejected_indices", ())
        )
        self._buffer = []
        return result


def build_streaming_aggregator(spec: str) -> StreamingAggregator:
    """Resolve a streaming-aggregator spec into an instance.

    Same grammar as :func:`repro.faults.aggregation.build_aggregator`:
    ``"mean"``, ``"norm_clip:5.0"`` (bound mandatory — see
    :class:`StreamingNormClip`), ``"median"`` and
    ``"trimmed_mean[:frac]"`` resolve to their buffered fallbacks.
    """
    name, _, argument = spec.strip().partition(":")
    name = name.strip()
    if name == "mean":
        return StreamingMean()
    if name == "median":
        return StreamingBufferedAggregator(MedianAggregator())
    try:
        if name == "trimmed_mean":
            return StreamingBufferedAggregator(
                TrimmedMeanAggregator(
                    trim_fraction=float(argument) if argument else 0.2
                )
            )
        if name == "norm_clip":
            if not argument:
                raise ConfigurationError(
                    "streaming norm_clip needs a fixed bound, e.g. "
                    "'norm_clip:5.0'"
                )
            return StreamingNormClip(clip_norm=float(argument))
    except ValueError as error:
        raise ConfigurationError(
            f"bad streaming aggregator argument in {spec!r}: {error}"
        ) from error
    raise ConfigurationError(
        f"unknown streaming aggregator {name!r}; available: "
        f"{', '.join(STREAMING_NAMES)}"
    )
