"""Pluggable client-selection policies for federated rounds.

The orchestrator historically draws a uniform ``participation_fraction``
sample each round. At fleet scale the draw itself becomes a policy
decision: bias participation toward devices reporting good
utility-per-cost (Jung et al. 2024 cut parameter-server traffic ~76%
with Pareto-biased participation over clustered fleets), or stratify
the draw across edge clusters so every region stays represented.

Policies are deterministic in their seed and the round index — the
Pareto and stratified draws pull from their own
:func:`~repro.utils.rng.generator_from_root` streams rather than the
orchestrator's shared participation RNG, so the same policy picks the
same devices on the serial, thread, process and batched backends.
:class:`UniformSelection` deliberately keeps using the orchestrator's
RNG through the original draw helper, making it bit-identical to a run
with no policy at all.

Spec grammar (house style of ``build_aggregator``)::

    uniform[:fraction]            e.g. "uniform:0.5"
    pareto[:fraction[:alpha]]     e.g. "pareto:0.5:1.5"
    stratified[:fraction]         e.g. "stratified:0.25"  (needs topology)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import stable_token
from repro.federated.orchestrator import _draw_participants
from repro.utils.rng import generator_from_root

#: Names accepted by :func:`build_selection_policy`.
SELECTION_NAMES = ("uniform", "pareto", "stratified")

# Spawn-key namespaces for selection RNG streams (distinct from the
# training paths 1-6 and the fault-plan paths 11/12 in use elsewhere).
_PARETO_PATH = 30
_STRATIFIED_PATH = 31


def _check_fraction(fraction: float) -> float:
    fraction = float(fraction)
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(
            f"selection fraction must be in (0, 1], got {fraction}"
        )
    return fraction


class SelectionPolicy:
    """Base class: pick this round's participants from the roster.

    ``select`` receives the live roster (already churn-filtered), the
    round index, and the orchestrator's participation RNG; it returns
    a non-empty subset in roster order.
    """

    name = "base"

    def select(
        self,
        round_index: int,
        roster: Sequence[str],
        rng: np.random.Generator,
    ) -> List[str]:
        raise NotImplementedError

    def report(self, client_id: str, score: float) -> None:
        """Accept a device's reported utility/cost score (optional)."""

    def describe(self) -> str:
        return self.name


class UniformSelection(SelectionPolicy):
    """The status-quo draw, expressed as a policy.

    Delegates to the orchestrator's own draw helper with the
    orchestrator's RNG, so a run with ``UniformSelection(f)`` is
    bit-identical to one with ``participation_fraction=f`` and no
    policy.
    """

    name = "uniform"

    def __init__(self, fraction: float = 1.0) -> None:
        self.fraction = _check_fraction(fraction)

    def select(
        self,
        round_index: int,
        roster: Sequence[str],
        rng: np.random.Generator,
    ) -> List[str]:
        return _draw_participants(roster, self.fraction, rng)

    def describe(self) -> str:
        return f"uniform:{self.fraction:g}"


class ParetoSelection(SelectionPolicy):
    """Rank-biased participation by reported utility/cost score.

    Devices report a scalar score via :meth:`report` (higher is
    better: e.g. reward improvement per joule of upload energy);
    unreported devices score 1.0. Each round the roster is ranked by
    score (ties broken by roster order) and drawn without replacement
    with probability ∝ ``(1 + rank) ** -alpha`` — ``alpha=0`` is
    uniform, larger values concentrate on the Pareto front. The draw
    uses a private per-round stream
    ``generator_from_root(seed, 30, round_index)``, independent of
    backend scheduling.
    """

    name = "pareto"

    def __init__(
        self, fraction: float = 0.5, alpha: float = 1.0, seed: int = 0
    ) -> None:
        self.fraction = _check_fraction(fraction)
        if alpha < 0:
            raise ConfigurationError(
                f"pareto alpha must be non-negative, got {alpha}"
            )
        self.alpha = float(alpha)
        self.seed = int(seed)
        self.scores: Dict[str, float] = {}

    def report(self, client_id: str, score: float) -> None:
        self.scores[str(client_id)] = float(score)

    def select(
        self,
        round_index: int,
        roster: Sequence[str],
        rng: np.random.Generator,
    ) -> List[str]:
        roster = list(roster)
        if self.fraction >= 1.0 or len(roster) <= 1:
            return roster
        count = max(1, int(round(self.fraction * len(roster))))
        # Rank 0 = best score; roster order breaks ties so the ranking
        # is deterministic regardless of dict insertion order.
        by_score = sorted(
            range(len(roster)),
            key=lambda i: (-self.scores.get(roster[i], 1.0), i),
        )
        weights = np.empty(len(roster), dtype=np.float64)
        for rank, roster_index in enumerate(by_score):
            weights[roster_index] = (1.0 + rank) ** -self.alpha
        probabilities = weights / weights.sum()
        draw_rng = generator_from_root(self.seed, _PARETO_PATH, round_index)
        chosen = draw_rng.choice(
            np.asarray(roster, dtype=object),
            size=count,
            replace=False,
            p=probabilities,
        )
        order = {client_id: i for i, client_id in enumerate(roster)}
        return sorted((str(c) for c in chosen), key=order.__getitem__)

    def describe(self) -> str:
        return f"pareto:{self.fraction:g}:{self.alpha:g}"


class ClusterStratifiedSelection(SelectionPolicy):
    """Proportional per-cluster draws over a fleet topology.

    A plain uniform draw over 10k devices can leave whole edge
    clusters silent for rounds at a stretch; this policy draws
    ``fraction`` of each edge cluster's live members (at least one)
    from a per-node stream
    ``generator_from_root(seed, 31, stable_token(node_id), round_index)``,
    so each cluster's picks are independent of every other cluster and
    of backend scheduling. Devices whose cluster is fully churned out
    simply contribute nothing that round.
    """

    name = "stratified"

    def __init__(self, fraction: float, topology, seed: int = 0) -> None:
        self.fraction = _check_fraction(fraction)
        if topology is None:
            raise ConfigurationError(
                "stratified selection needs a fleet topology; pass "
                "topology=... or use --topology"
            )
        self.topology = topology
        self.seed = int(seed)

    def select(
        self,
        round_index: int,
        roster: Sequence[str],
        rng: np.random.Generator,
    ) -> List[str]:
        live = set(roster)
        chosen: List[str] = []
        for node_id, members in sorted(self.topology.device_clusters().items()):
            present = [name for name in members if name in live]
            if not present:
                continue
            if self.fraction >= 1.0:
                chosen.extend(present)
                continue
            count = max(1, int(round(self.fraction * len(present))))
            node_rng = generator_from_root(
                self.seed, _STRATIFIED_PATH, stable_token(node_id), round_index
            )
            picks = node_rng.choice(
                np.asarray(present, dtype=object), size=count, replace=False
            )
            chosen.extend(str(p) for p in picks)
        order = {client_id: i for i, client_id in enumerate(roster)}
        return sorted(chosen, key=order.__getitem__)

    def describe(self) -> str:
        return f"stratified:{self.fraction:g}"


def build_selection_policy(
    spec: str, topology=None, seed: int = 0
) -> SelectionPolicy:
    """Resolve a selection spec string into a policy instance.

    ``topology`` is required for ``stratified`` and ignored otherwise;
    ``seed`` feeds the policy's private RNG streams.
    """
    name, _, argument = spec.strip().partition(":")
    name = name.strip()
    try:
        if name == "uniform":
            return UniformSelection(
                fraction=float(argument) if argument else 1.0
            )
        if name == "pareto":
            fraction_text, _, alpha_text = argument.partition(":")
            return ParetoSelection(
                fraction=float(fraction_text) if fraction_text else 0.5,
                alpha=float(alpha_text) if alpha_text else 1.0,
                seed=seed,
            )
        if name == "stratified":
            return ClusterStratifiedSelection(
                fraction=float(argument) if argument else 0.5,
                topology=topology,
                seed=seed,
            )
    except ValueError as error:
        raise ConfigurationError(
            f"bad selection argument in {spec!r}: {error}"
        ) from error
    raise ConfigurationError(
        f"unknown selection policy {name!r}; available: "
        f"{', '.join(SELECTION_NAMES)}"
    )
