"""Ambient control-plane configuration.

Same mechanism as :mod:`repro.faults.context`: experiment runners all
share the ``runner(config) -> str`` signature, so the CLI cannot
thread ``--async``/``--heartbeat-interval``/``--upload-buffer``/
``--quorum`` through every figure module. Instead it activates a
:class:`ControlPlaneConfig` here and
:func:`repro.experiments.training.train_federated` delegates to the
async driver when the ambient config is enabled. Explicit arguments
always win; an empty stack means "synchronous orchestrator, unchanged".
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.controlplane.buffer import BUFFER_POLICIES, POLICY_DROP_OLDEST


@dataclass(frozen=True)
class ControlPlaneConfig:
    """One activated control-plane preference bundle."""

    enabled: bool = False
    heartbeat_interval_s: float = 1.0
    buffer_capacity: int = 32
    buffer_policy: str = POLICY_DROP_OLDEST
    buffer_block_deadline_s: float = 5.0
    quorum: float = 0.5

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0.0:
            raise ConfigurationError(
                "heartbeat interval must be positive, got "
                f"{self.heartbeat_interval_s}"
            )
        if self.buffer_capacity < 1:
            raise ConfigurationError(
                f"buffer capacity must be >= 1, got {self.buffer_capacity}"
            )
        if self.buffer_policy not in BUFFER_POLICIES:
            raise ConfigurationError(
                f"unknown buffer policy {self.buffer_policy!r}; choose one "
                f"of {', '.join(BUFFER_POLICIES)}"
            )
        if not 0.0 < self.quorum <= 1.0:
            raise ConfigurationError(
                f"quorum must be in (0, 1], got {self.quorum}"
            )


def parse_buffer_spec(spec: str) -> dict:
    """Parse a ``capacity:policy[:deadline_s]`` CLI spec.

    Examples: ``32:drop-oldest``, ``8:reject``,
    ``16:block-with-deadline:2.5``.
    """
    parts = spec.split(":")
    if len(parts) not in (2, 3):
        raise ConfigurationError(
            f"buffer spec {spec!r} must look like "
            "'capacity:policy[:deadline_s]'"
        )
    try:
        capacity = int(parts[0])
    except ValueError:
        raise ConfigurationError(
            f"buffer capacity {parts[0]!r} is not an integer"
        ) from None
    policy = parts[1]
    if policy not in BUFFER_POLICIES:
        raise ConfigurationError(
            f"unknown buffer policy {policy!r}; choose one of "
            f"{', '.join(BUFFER_POLICIES)}"
        )
    result = {"buffer_capacity": capacity, "buffer_policy": policy}
    if len(parts) == 3:
        try:
            result["buffer_block_deadline_s"] = float(parts[2])
        except ValueError:
            raise ConfigurationError(
                f"buffer deadline {parts[2]!r} is not a number"
            ) from None
    return result


class _ThreadLocalStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[ControlPlaneConfig] = []


_LOCAL = _ThreadLocalStack()


def get_active_controlplane() -> Optional[ControlPlaneConfig]:
    """The innermost config activated on this thread, or ``None``."""
    stack = _LOCAL.stack
    return stack[-1] if stack else None


@contextmanager
def controlplane(
    enabled: bool = True,
    heartbeat_interval_s: float = 1.0,
    buffer_capacity: int = 32,
    buffer_policy: str = POLICY_DROP_OLDEST,
    buffer_block_deadline_s: float = 5.0,
    quorum: float = 0.5,
) -> Iterator[ControlPlaneConfig]:
    """``with controlplane(quorum=0.5): ...`` — balanced push/pop."""
    config = ControlPlaneConfig(
        enabled=enabled,
        heartbeat_interval_s=heartbeat_interval_s,
        buffer_capacity=buffer_capacity,
        buffer_policy=buffer_policy,
        buffer_block_deadline_s=buffer_block_deadline_s,
        quorum=quorum,
    )
    _LOCAL.stack.append(config)
    try:
        yield config
    finally:
        _LOCAL.stack.pop()
