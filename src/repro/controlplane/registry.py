"""Device registry: membership, seeded heartbeats, liveness states.

The registry is the control plane's view of *who is alive*. Devices
register once, then emit heartbeats on the modelled clock (one beat
every ``heartbeat_interval_s``, phase-shifted by a per-device seeded
offset so the fleet never beats in lockstep). Liveness is a pure
function of that clock — :meth:`DeviceRegistry.sweep` compares each
device's silence against the interval and walks the state machine

    ALIVE ──(miss ≥ suspect_after)──▶ SUSPECT
    SUSPECT ──(miss ≥ dead_after)──▶ DEAD
    SUSPECT ──heartbeat──▶ ALIVE
    DEAD ──heartbeat──▶ REJOINED ──heartbeat──▶ ALIVE

so state transitions are deterministic for a fixed seed regardless of
execution backend. Permanent deaths (fault-plan kind ``dead``) pin the
device in DEAD; rejoining is refused.

Every transition is appended to :attr:`DeviceRegistry.transitions`,
emitted as a ``device_state`` event into the ambient obs pipeline and
counted in the ``controlplane.*`` metrics, which is what ``obs-watch``
and the :class:`~repro.obs.rollup.FleetRollup` render.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError, FederationError
from repro.faults.plan import stable_token
from repro.obs.logging import get_logger
from repro.utils.rng import generator_from_root

#: Liveness states, in ladder order.
ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"
REJOINED = "rejoined"
LIVENESS_STATES = (ALIVE, SUSPECT, DEAD, REJOINED)

#: Seed-path child reserved for heartbeat phase jitter.
_HEARTBEAT_SEED_CHILD = 37

_LOG = get_logger("controlplane.registry")


@dataclass(frozen=True)
class StateTransition:
    """One liveness transition, on the modelled clock."""

    time_s: float
    device: str
    from_state: str
    to_state: str
    reason: str

    def as_tuple(self) -> Tuple[float, str, str, str, str]:
        return (self.time_s, self.device, self.from_state, self.to_state,
                self.reason)


class _DeviceRecord:
    """Per-device registry state (O(1) per device)."""

    __slots__ = (
        "device_id",
        "state",
        "registered_at_s",
        "phase_s",
        "last_heartbeat_s",
        "heartbeats",
        "beats_scheduled",
        "permanently_dead",
        "rejoin_count",
    )

    def __init__(
        self, device_id: str, registered_at_s: float, phase_s: float
    ) -> None:
        self.device_id = device_id
        self.state = ALIVE
        self.registered_at_s = registered_at_s
        self.phase_s = phase_s
        self.last_heartbeat_s = registered_at_s
        self.heartbeats = 0
        self.beats_scheduled = 0
        self.permanently_dead = False
        self.rejoin_count = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "heartbeats": self.heartbeats,
            "rejoins": self.rejoin_count,
            "permanently_dead": self.permanently_dead,
        }


class DeviceRegistry:
    """Seeded, clock-driven membership and liveness tracking."""

    def __init__(
        self,
        heartbeat_interval_s: float = 1.0,
        suspect_after_missed: int = 2,
        dead_after_missed: int = 4,
        seed: int = 0,
        metrics=None,
        events=None,
    ) -> None:
        if heartbeat_interval_s <= 0.0:
            raise ConfigurationError(
                f"heartbeat interval must be positive, got {heartbeat_interval_s}"
            )
        if suspect_after_missed < 1:
            raise ConfigurationError(
                f"suspect_after_missed must be >= 1, got {suspect_after_missed}"
            )
        if dead_after_missed <= suspect_after_missed:
            raise ConfigurationError(
                f"dead_after_missed ({dead_after_missed}) must exceed "
                f"suspect_after_missed ({suspect_after_missed})"
            )
        self.heartbeat_interval_s = float(heartbeat_interval_s)
        self.suspect_after_missed = int(suspect_after_missed)
        self.dead_after_missed = int(dead_after_missed)
        self.seed = int(seed)
        self.metrics = metrics
        self.events = events
        self.transitions: List[StateTransition] = []
        self._records: Dict[str, _DeviceRecord] = {}

    # -- membership ----------------------------------------------------
    def register(self, device_id: str, now_s: float = 0.0) -> None:
        """Admit a device; its heartbeat phase is seeded, not positional.

        The phase offset is drawn from ``(seed, 37, crc32(device_id))``,
        so it depends only on the registry seed and the device's *name*
        — registration order, execution backend and fleet composition
        never shift another device's schedule.
        """
        if device_id in self._records:
            raise FederationError(f"device {device_id!r} already registered")
        rng = generator_from_root(
            self.seed, _HEARTBEAT_SEED_CHILD, stable_token(device_id)
        )
        phase_s = float(rng.random()) * self.heartbeat_interval_s
        self._records[device_id] = _DeviceRecord(device_id, now_s, phase_s)
        if self.metrics is not None:
            self.metrics.inc("controlplane.registered")
        _LOG.debug(
            "device registered",
            extra={"device": device_id, "phase_s": phase_s},
        )

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    @property
    def device_ids(self) -> Tuple[str, ...]:
        return tuple(self._records)

    def _record(self, device_id: str) -> _DeviceRecord:
        record = self._records.get(device_id)
        if record is None:
            raise FederationError(f"device {device_id!r} is not registered")
        return record

    def state(self, device_id: str) -> str:
        return self._record(device_id).state

    def is_dead(self, device_id: str) -> bool:
        return self._record(device_id).state == DEAD

    def is_permanently_dead(self, device_id: str) -> bool:
        return self._record(device_id).permanently_dead

    # -- heartbeat schedule (modelled clock) ---------------------------
    def next_heartbeat_due(self, device_id: str) -> float:
        """When the device's next scheduled beat fires."""
        record = self._record(device_id)
        return (
            record.registered_at_s
            + record.phase_s
            + record.beats_scheduled * self.heartbeat_interval_s
        )

    def heartbeat_scheduled(self, device_id: str) -> int:
        """Mark one beat as scheduled; returns its beat index."""
        record = self._record(device_id)
        index = record.beats_scheduled
        record.beats_scheduled += 1
        return index

    # -- liveness ------------------------------------------------------
    def record_heartbeat(self, device_id: str, now_s: float) -> None:
        """A beat arrived: refresh liveness, possibly walk the ladder up."""
        record = self._record(device_id)
        if record.permanently_dead:
            raise FederationError(
                f"device {device_id!r} is permanently dead; no heartbeats"
            )
        record.last_heartbeat_s = now_s
        record.heartbeats += 1
        if self.metrics is not None:
            self.metrics.inc("controlplane.heartbeats")
        if record.state == SUSPECT:
            self._transition(record, ALIVE, "heartbeat-resumed", now_s)
        elif record.state == DEAD:
            record.rejoin_count += 1
            self._transition(record, REJOINED, "rejoin", now_s)
        elif record.state == REJOINED:
            self._transition(record, ALIVE, "stabilised", now_s)

    def mark_dead(
        self, device_id: str, now_s: float, permanent: bool = False
    ) -> None:
        """Declare a device dead immediately (fault-plan ``dead`` events)."""
        record = self._record(device_id)
        if permanent:
            record.permanently_dead = True
        if record.state != DEAD:
            reason = "fault-permanent" if permanent else "fault"
            self._transition(record, DEAD, reason, now_s)

    def sweep(self, now_s: float) -> None:
        """Walk every device's silence against the interval, in name order.

        ``missed`` counts whole heartbeat intervals elapsed since the
        last beat; crossing ``suspect_after_missed`` demotes ALIVE and
        REJOINED devices, crossing ``dead_after_missed`` demotes
        SUSPECT ones. The iteration order is the (deterministic)
        registration order, so the transition log is reproducible.
        """
        for record in self._records.values():
            if record.state == DEAD:
                continue
            silence = now_s - record.last_heartbeat_s
            missed = int(math.floor(silence / self.heartbeat_interval_s))
            if (
                record.state in (ALIVE, REJOINED)
                and missed >= self.suspect_after_missed
            ):
                self._transition(record, SUSPECT, "heartbeats-missed", now_s)
            if record.state == SUSPECT and missed >= self.dead_after_missed:
                self._transition(record, DEAD, "silence", now_s)
        if self.metrics is not None:
            for state, count in self.counts().items():
                self.metrics.set_gauge(f"controlplane.{state}", count)
            self.metrics.set_gauge(
                "controlplane.live_fraction", self.live_fraction()
            )

    def _transition(
        self, record: _DeviceRecord, to_state: str, reason: str, now_s: float
    ) -> None:
        transition = StateTransition(
            time_s=now_s,
            device=record.device_id,
            from_state=record.state,
            to_state=to_state,
            reason=reason,
        )
        record.state = to_state
        self.transitions.append(transition)
        if self.metrics is not None:
            self.metrics.inc("controlplane.transitions")
            if to_state == DEAD:
                self.metrics.inc("controlplane.deaths")
            elif to_state == REJOINED:
                self.metrics.inc("controlplane.rejoins")
        if self.events is not None:
            self.events.emit(
                {
                    "type": "device_state",
                    "device": record.device_id,
                    "from_state": transition.from_state,
                    "to_state": to_state,
                    "reason": reason,
                    "time_s": now_s,
                }
            )
        _LOG.debug(
            "liveness transition",
            extra={
                "device": record.device_id,
                "from_state": transition.from_state,
                "to_state": to_state,
                "reason": reason,
            },
        )

    # -- views ---------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        """Device count per liveness state (every state always present)."""
        counts = {state: 0 for state in LIVENESS_STATES}
        for record in self._records.values():
            counts[record.state] += 1
        return counts

    def live_fraction(self) -> float:
        """Fraction of registered devices not DEAD (SUSPECT still counts)."""
        if not self._records:
            return 0.0
        dead = sum(1 for r in self._records.values() if r.state == DEAD)
        return (len(self._records) - dead) / len(self._records)

    def live_devices(self) -> Tuple[str, ...]:
        return tuple(
            device_id
            for device_id, record in self._records.items()
            if record.state != DEAD
        )

    def snapshot(self) -> Dict[str, object]:
        """JSON-serialisable summary (deterministic key order)."""
        return {
            "heartbeat_interval_s": self.heartbeat_interval_s,
            "counts": self.counts(),
            "live_fraction": self.live_fraction(),
            "transitions": len(self.transitions),
            "devices": {
                name: self._records[name].as_dict()
                for name in sorted(self._records)
            },
        }
