"""Graceful-degradation ladder driven by registry live fraction.

The control plane never blocks on a dead device; instead it *degrades*
in named, observable steps as the fleet shrinks:

``full``
    live fraction ≥ ``full_floor`` — every tick drains and merges.
``quorum``
    live fraction ≥ ``quorum_floor`` — still merging, but uploads from
    devices the registry has declared DEAD are discarded (they may be
    in-flight zombies) and the mode change is surfaced.
``stale-serve``
    live fraction ≥ ``stale_floor`` — the server stops merging and
    keeps serving the last good global model; uploads park in the
    bounded buffer (backpressure engages). Recoverable: if devices
    rejoin, the ladder climbs back up and parked uploads merge.
``halt``
    live fraction below ``stale_floor`` for ``halt_grace_ticks``
    consecutive ticks — checkpoint and raise
    :class:`~repro.errors.DegradedHaltError` (CLI exit code 6).

Each mode change appends to :attr:`DegradationLadder.history` and
emits a ``controlplane_mode`` event so ``obs-watch`` shows the ladder
position live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.obs.logging import get_logger

MODE_FULL = "full"
MODE_QUORUM = "quorum"
MODE_STALE = "stale-serve"
MODE_HALT = "halt"
DEGRADATION_MODES = (MODE_FULL, MODE_QUORUM, MODE_STALE, MODE_HALT)

_LOG = get_logger("controlplane.degrade")


@dataclass(frozen=True)
class DegradationPolicy:
    """Thresholds for the ladder, as live-fraction floors."""

    full_floor: float = 0.9
    quorum_floor: float = 0.5
    stale_floor: float = 0.25
    halt_grace_ticks: int = 3

    def __post_init__(self) -> None:
        for name, value in (
            ("full_floor", self.full_floor),
            ("quorum_floor", self.quorum_floor),
            ("stale_floor", self.stale_floor),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value}"
                )
        if not self.full_floor >= self.quorum_floor >= self.stale_floor:
            raise ConfigurationError(
                "degradation floors must be ordered full >= quorum >= stale, "
                f"got {self.full_floor} / {self.quorum_floor} / "
                f"{self.stale_floor}"
            )
        if self.halt_grace_ticks < 1:
            raise ConfigurationError(
                f"halt_grace_ticks must be >= 1, got {self.halt_grace_ticks}"
            )

    def mode_for(self, live_fraction: float) -> str:
        if live_fraction >= self.full_floor:
            return MODE_FULL
        if live_fraction >= self.quorum_floor:
            return MODE_QUORUM
        if live_fraction >= self.stale_floor:
            return MODE_STALE
        return MODE_HALT


class DegradationLadder:
    """Stateful ladder: tracks the mode, its history, and halt grace."""

    def __init__(
        self, policy: DegradationPolicy = None, metrics=None, events=None
    ) -> None:
        self.policy = policy if policy is not None else DegradationPolicy()
        self.metrics = metrics
        self.events = events
        self.mode = MODE_FULL
        #: ``(time_s, from_mode, to_mode, live_fraction)`` per change.
        self.history: List[Tuple[float, str, str, float]] = []
        self._halt_streak = 0

    def update(self, live_fraction: float, now_s: float) -> str:
        """Re-evaluate the mode; returns the (possibly new) mode.

        HALT only takes effect after ``halt_grace_ticks`` consecutive
        halt-band evaluations — a single sweep that momentarily sees
        too few devices (e.g. mid-rejoin) must not kill the run.
        """
        target = self.policy.mode_for(live_fraction)
        if target == MODE_HALT:
            self._halt_streak += 1
            if self._halt_streak < self.policy.halt_grace_ticks:
                target = MODE_STALE  # grace: degrade but keep serving
        else:
            self._halt_streak = 0
        if target != self.mode:
            self.history.append((now_s, self.mode, target, live_fraction))
            if self.metrics is not None:
                self.metrics.inc("controlplane.mode_changes")
            if self.events is not None:
                self.events.emit(
                    {
                        "type": "controlplane_mode",
                        "from_mode": self.mode,
                        "to_mode": target,
                        "live_fraction": live_fraction,
                        "time_s": now_s,
                    }
                )
            _LOG.info(
                "degradation mode change",
                extra={
                    "from_mode": self.mode,
                    "to_mode": target,
                    "live_fraction": live_fraction,
                },
            )
            self.mode = target
        if self.metrics is not None:
            self.metrics.set_gauge(
                "controlplane.mode_index", DEGRADATION_MODES.index(self.mode)
            )
        return self.mode

    @property
    def should_halt(self) -> bool:
        return self.mode == MODE_HALT

    @property
    def merging_allowed(self) -> bool:
        return self.mode in (MODE_FULL, MODE_QUORUM)

    def snapshot(self) -> dict:
        return {
            "mode": self.mode,
            "mode_changes": len(self.history),
            "halt_streak": self._halt_streak,
            "floors": {
                "full": self.policy.full_floor,
                "quorum": self.policy.quorum_floor,
                "stale": self.policy.stale_floor,
            },
        }
