"""The async control-plane event loop.

A single modelled clock orders four event kinds through one heap —
``heartbeat`` (registry liveness), ``round_done`` (a device finished a
local round and pushes), ``tick`` (deadline-bounded aggregation), and
``callback`` (driver-scheduled work such as evaluations) — so the
whole run is deterministic: same seed, same fault plan, same event
sequence, on any execution backend.

Per tick the plane sweeps the registry, re-evaluates the degradation
ladder, and — when merging is allowed — drains the bounded upload
buffer into the wrapped :class:`AsynchronousFederatedServer`, which
staleness-weights each merge via its existing ``mixing_for_staleness``.
Uploads that waited longer than the late threshold (the retry policy's
upload timeout when one is configured, else one tick interval) are
*merged anyway* but marked late; nothing ever blocks on a straggler.
When the ladder reaches ``halt`` the plane checkpoints through the
driver's callback and raises :class:`~repro.errors.DegradedHaltError`.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.controlplane.buffer import BoundedUploadBuffer
from repro.controlplane.degrade import MODE_QUORUM, DegradationLadder
from repro.controlplane.registry import DeviceRegistry
from repro.errors import DegradedHaltError, FederationError
from repro.faults.plan import FaultPlan
from repro.faults.retry import PHASE_UPLOAD, RetryPolicy
from repro.obs.logging import get_logger

_LOG = get_logger("controlplane.loop")

_KIND_HEARTBEAT = "heartbeat"
_KIND_ROUND_DONE = "round_done"
_KIND_TICK = "tick"
_KIND_CALLBACK = "callback"


class AsyncControlPlane:
    """Deadline-bounded async aggregation around an existing server."""

    def __init__(
        self,
        server,
        clients: Dict[str, object],
        trainers: Dict[str, Callable[[int], object]],
        local_rounds_per_client: Dict[str, int],
        round_duration_s: Dict[str, float],
        registry: DeviceRegistry,
        buffer: BoundedUploadBuffer,
        ladder: DegradationLadder,
        plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        tick_interval_s: float = 1.0,
        events=None,
        metrics=None,
        checkpoint_callback: Optional[Callable[["AsyncControlPlane"], str]] = None,
        timed_callbacks: Sequence[Tuple[float, Callable[[float], None]]] = (),
    ) -> None:
        if tick_interval_s <= 0.0:
            raise FederationError(
                f"tick interval must be positive, got {tick_interval_s}"
            )
        if set(clients) != set(trainers):
            raise FederationError("clients and trainers must name the same devices")
        self.server = server
        self.clients = dict(clients)
        self.trainers = dict(trainers)
        self.round_duration_s = dict(round_duration_s)
        self.registry = registry
        self.buffer = buffer
        self.ladder = ladder
        self.plan = plan
        self.retry = retry
        self.tick_interval_s = float(tick_interval_s)
        self.events = events
        self.metrics = metrics
        self.checkpoint_callback = checkpoint_callback

        self.remaining = dict(local_rounds_per_client)
        for device in self.clients:
            self.remaining.setdefault(device, 0)
        self.round_counter = {device: 0 for device in self.clients}
        self.pushes = {device: 0 for device in self.clients}
        self.clock = 0.0
        #: ``(global_version, modelled_time)`` per merge — the bench's
        #: time-to-version-N raw series.
        self.time_to_version: List[Tuple[int, float]] = []
        self.late_merges = 0
        self.discarded_rounds = 0
        self.zombie_uploads = 0
        #: (time_s, device, was_late) per merged upload, merge order.
        self.merge_log: List[Tuple[float, str, bool]] = []

        self._heap: List[Tuple[float, int, str, object]] = []
        self._seq = 0
        self._in_flight: set = set()
        self._next_tick_s = self.tick_interval_s
        self._merge_index = 0
        if self.retry is not None and math.isfinite(
            self.retry.timeout_for(PHASE_UPLOAD)
        ):
            self.late_threshold_s = self.retry.timeout_for(PHASE_UPLOAD)
        else:
            self.late_threshold_s = self.tick_interval_s

    # -- scheduling ----------------------------------------------------
    def _schedule(self, time_s: float, kind: str, payload: object) -> None:
        heapq.heappush(self._heap, (time_s, self._seq, kind, payload))
        self._seq += 1

    def _schedule_heartbeat(self, device: str) -> None:
        self._schedule(
            self.registry.next_heartbeat_due(device), _KIND_HEARTBEAT, device
        )

    def _start_round(self, device: str, now_s: float) -> None:
        """Dispatch the current global model and start one local round."""
        self.server.dispatch(device)
        self.clients[device].pull()
        self._in_flight.add(device)
        self._schedule(
            now_s + self.round_duration_s[device], _KIND_ROUND_DONE, device
        )

    # -- lifecycle -----------------------------------------------------
    def _work_outstanding(self) -> bool:
        if self._in_flight or len(self.buffer) > 0:
            return True
        return any(
            rounds > 0
            for device, rounds in self.remaining.items()
            if not self.registry.is_dead(device)
        )

    def run(self) -> Dict[str, int]:
        """Drive all events to completion; returns pushes per device."""
        for device in self.clients:
            if device not in self.registry:
                self.registry.register(device, now_s=0.0)
            self._schedule_heartbeat(device)
            if self.remaining.get(device, 0) > 0:
                self._start_round(device, 0.0)
        self._schedule(self._next_tick_s, _KIND_TICK, None)

        while self._heap:
            rounds_outstanding = bool(self._in_flight) or any(
                rounds > 0
                for device, rounds in self.remaining.items()
                if not self.registry.is_dead(device)
            )
            if not rounds_outstanding and (
                len(self.buffer) == 0 or not self.ladder.merging_allowed
            ):
                # Either truly done, or only parked uploads remain and
                # the ladder forbids merging (stale-serve would spin
                # forever) — exit and let the final flush decide.
                break
            time_s, _seq, kind, payload = heapq.heappop(self._heap)
            self.clock = max(self.clock, time_s)
            if kind == _KIND_HEARTBEAT:
                self._on_heartbeat(payload, time_s)
            elif kind == _KIND_ROUND_DONE:
                self._on_round_done(payload, time_s)
            elif kind == _KIND_TICK:
                self._on_tick(time_s)
            elif kind == _KIND_CALLBACK:
                payload(time_s)

        # Final flush: merge whatever is still parked (e.g. the run
        # ended inside the stale-serve band) so accepted uploads are
        # never silently abandoned at shutdown.
        if len(self.buffer) > 0:
            self._drain_and_merge(self.clock + self.tick_interval_s, force=True)
        self._emit_summary()
        return dict(self.pushes)

    # -- event handlers ------------------------------------------------
    def _on_heartbeat(self, device: str, now_s: float) -> None:
        if self.registry.is_permanently_dead(device):
            return
        beat_index = self.registry.heartbeat_scheduled(device)
        if self.plan is not None:
            death_beat = self.plan.death_beat(device)
            if death_beat is not None and beat_index >= death_beat:
                # Permanent death: the device stops beating forever and
                # any round it is running dies with it.
                self.registry.mark_dead(device, now_s, permanent=True)
                return
            if self.plan.loses_heartbeat(beat_index, device):
                if self.metrics is not None:
                    self.metrics.inc("controlplane.heartbeats_lost")
                self._schedule_heartbeat(device)
                return
        self.registry.record_heartbeat(device, now_s)
        self._schedule_heartbeat(device)

    def _on_round_done(self, device: str, now_s: float) -> None:
        self._in_flight.discard(device)
        if self.registry.is_permanently_dead(device):
            # The device died mid-round; its work is lost.
            self.discarded_rounds += 1
            if self.metrics is not None:
                self.metrics.inc("controlplane.rounds_discarded")
            return
        client = self.clients[device]
        self.trainers[device](self.round_counter[device])
        self.round_counter[device] += 1
        client.push()
        self.pushes[device] += 1
        self.remaining[device] -= 1
        # Intercept the upload: move it from the server's raw transport
        # inbox into the bounded buffer, where backpressure applies.
        blocked_delay = 0.0
        for message in self.server.transport.receive_all(self.server.server_id):
            outcome = self.buffer.offer(
                message, message.sender, now_s, next_drain_s=self._next_tick_s
            )
            if not outcome.accepted:
                _LOG.warning(
                    "upload rejected by backpressure",
                    extra={"device": message.sender, "policy": self.buffer.policy},
                )
            blocked_delay = max(blocked_delay, outcome.blocked_delay_s)
        if self.remaining[device] > 0:
            # block-with-deadline stalls the device until the drain it
            # is waiting on, so its next round starts late.
            self._start_round(device, now_s + blocked_delay)

    def _on_tick(self, now_s: float) -> None:
        self.registry.sweep(now_s)
        mode = self.ladder.update(self.registry.live_fraction(), now_s)
        if self.ladder.should_halt:
            self._halt(now_s)
        if self.ladder.merging_allowed:
            self._drain_and_merge(now_s, quorum_filter=(mode == MODE_QUORUM))
        if self._work_outstanding():
            self._next_tick_s = now_s + self.tick_interval_s
            self._schedule(self._next_tick_s, _KIND_TICK, None)

    def _drain_and_merge(
        self, now_s: float, quorum_filter: bool = False, force: bool = False
    ) -> int:
        entries = self.buffer.drain(now_s)
        delivered = []
        for entry in entries:
            if (
                quorum_filter
                and not force
                and self.registry.is_dead(entry.device)
            ):
                # In-flight upload from a device the registry already
                # declared dead — a zombie; quorum mode refuses it.
                self.zombie_uploads += 1
                if self.metrics is not None:
                    self.metrics.inc("controlplane.zombie_uploads")
                continue
            self.server.transport.deliver(entry.message)
            delivered.append(entry)
        version_before = self.server.version
        merged = self.server.absorb_pending()
        for offset in range(merged):
            self.time_to_version.append((version_before + offset + 1, now_s))
        # absorb_pending merges in delivery order, so the first
        # ``merged`` delivered entries are the ones that landed (the
        # sanitizer may have refused a suffix's worth — they are
        # counted by the server's own ``async.rejected``).
        for entry in delivered[:merged]:
            wait_s = now_s - entry.offered_at_s
            late = wait_s > self.late_threshold_s
            if late:
                self.late_merges += 1
                if self.metrics is not None:
                    self.metrics.inc("controlplane.late_merges")
            self.merge_log.append((now_s, entry.device, late))
            if self.events is not None:
                self.events.emit(
                    {
                        "type": "round_span",
                        "round": self._merge_index,
                        "participants": [entry.device],
                        "stragglers": [entry.device] if late else [],
                        "duration_s": wait_s,
                        "bytes": len(entry.message.payload),
                        "update_norm": None,
                        "aggregated": True,
                        "status": "ok",
                        "phases": [],
                        "mode": "async",
                    }
                )
            self._merge_index += 1
        return merged

    def _halt(self, now_s: float) -> None:
        checkpoint_path = ""
        if self.checkpoint_callback is not None:
            checkpoint_path = self.checkpoint_callback(self)
        if self.metrics is not None:
            self.metrics.inc("controlplane.halts")
        raise DegradedHaltError(
            "control plane halted: live fraction "
            f"{self.registry.live_fraction():.2f} stayed below the stale "
            f"floor at t={now_s:.2f}s",
            checkpoint_path=checkpoint_path,
        )

    def schedule_callback(
        self, time_s: float, callback: Callable[[float], None]
    ) -> None:
        """Driver hook: run ``callback(now_s)`` at a modelled time."""
        self._schedule(time_s, _KIND_CALLBACK, callback)

    # -- summary -------------------------------------------------------
    def _emit_summary(self) -> None:
        merges = len(self.merge_log)
        if self.events is not None:
            self.events.emit(
                {
                    "type": "run_summary",
                    "rounds": merges,
                    "bytes": self.server.transport.total_bytes,
                    "messages": self.server.transport.total_messages,
                    "aggregations": merges,
                    "straggler_rate": (
                        self.late_merges / merges if merges else 0.0
                    ),
                }
            )

    def state_blob(self) -> Dict[str, object]:
        """Loop progress for checkpointing (plain picklable types)."""
        return {
            "clock": self.clock,
            "remaining": dict(self.remaining),
            "round_counter": dict(self.round_counter),
            "pushes": dict(self.pushes),
            "late_merges": self.late_merges,
            "discarded_rounds": self.discarded_rounds,
            "zombie_uploads": self.zombie_uploads,
            "mode": self.ladder.mode,
            "registry": self.registry.snapshot(),
            "time_to_version": list(self.time_to_version),
        }
