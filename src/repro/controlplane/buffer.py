"""Bounded upload buffer with explicit backpressure policies.

The raw transport inbox is unbounded: a fleet of fast devices can
materialise arbitrarily many pending uploads between aggregation
ticks. The control plane interposes this buffer between ``push`` and
``absorb_pending`` so memory is bounded and the overflow behaviour is
an explicit, named policy rather than an accident:

``reject``
    A full buffer refuses the upload; the device's round is wasted
    (counted in ``controlplane.buffer_rejected``).
``drop-oldest``
    A full buffer evicts its oldest entry to admit the new one —
    freshest-wins, bounded loss (``controlplane.buffer_dropped``).
``block-with-deadline``
    The device "waits" (on the modelled clock) until the next
    aggregation tick drains the buffer; if that wait would exceed the
    deadline the upload is rejected instead. Admitted entries become
    visible only at their release time, which is how backpressure
    delays propagate into the tail-latency bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List, Optional
import collections

from repro.errors import ConfigurationError

POLICY_REJECT = "reject"
POLICY_DROP_OLDEST = "drop-oldest"
POLICY_BLOCK = "block-with-deadline"
BUFFER_POLICIES = (POLICY_REJECT, POLICY_DROP_OLDEST, POLICY_BLOCK)


@dataclass(frozen=True)
class BufferedUpload:
    """One admitted upload, visible to drains at ``visible_at_s``."""

    message: object
    device: str
    offered_at_s: float
    visible_at_s: float


@dataclass(frozen=True)
class OfferOutcome:
    """What happened to one offered upload."""

    accepted: bool
    blocked_delay_s: float = 0.0
    evicted_device: Optional[str] = None


class BoundedUploadBuffer:
    """FIFO of pending uploads with a hard capacity and overflow policy."""

    def __init__(
        self,
        capacity: int = 32,
        policy: str = POLICY_DROP_OLDEST,
        block_deadline_s: float = 5.0,
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"upload buffer capacity must be >= 1, got {capacity}"
            )
        if policy not in BUFFER_POLICIES:
            raise ConfigurationError(
                f"unknown buffer policy {policy!r}; "
                f"choose one of {', '.join(BUFFER_POLICIES)}"
            )
        if block_deadline_s <= 0.0:
            raise ConfigurationError(
                f"block deadline must be positive, got {block_deadline_s}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self.block_deadline_s = float(block_deadline_s)
        self.metrics = metrics
        self._entries: Deque[BufferedUpload] = collections.deque()
        self.offered = 0
        self.accepted = 0
        self.rejected = 0
        self.dropped = 0
        self.blocked = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def depth(self) -> int:
        return len(self._entries)

    def offer(
        self,
        message: object,
        device: str,
        now_s: float,
        next_drain_s: Optional[float] = None,
    ) -> OfferOutcome:
        """Try to admit one upload under the configured policy.

        ``next_drain_s`` is when the next aggregation tick will drain
        the buffer — required for ``block-with-deadline``, ignored by
        the other policies.
        """
        self.offered += 1
        if self.metrics is not None:
            self.metrics.inc("controlplane.buffer_offered")
        if len(self._entries) < self.capacity:
            return self._admit(message, device, now_s, now_s)
        if self.policy == POLICY_REJECT:
            return self._reject(device)
        if self.policy == POLICY_DROP_OLDEST:
            evicted = self._entries.popleft()
            self.dropped += 1
            if self.metrics is not None:
                self.metrics.inc("controlplane.buffer_dropped")
            outcome = self._admit(message, device, now_s, now_s)
            return OfferOutcome(
                accepted=True, evicted_device=evicted.device
            )
        # block-with-deadline: the sender stalls until the drain frees
        # a slot, provided that stall fits inside the deadline.
        if next_drain_s is None:
            return self._reject(device)
        delay = max(0.0, next_drain_s - now_s)
        if delay > self.block_deadline_s:
            return self._reject(device)
        self.blocked += 1
        if self.metrics is not None:
            self.metrics.inc("controlplane.buffer_blocked")
            self.metrics.observe("controlplane.buffer_block_delay_s", delay)
        self._admit(message, device, now_s, next_drain_s)
        return OfferOutcome(accepted=True, blocked_delay_s=delay)

    def _admit(
        self, message: object, device: str, now_s: float, visible_at_s: float
    ) -> OfferOutcome:
        self._entries.append(
            BufferedUpload(
                message=message,
                device=device,
                offered_at_s=now_s,
                visible_at_s=visible_at_s,
            )
        )
        self.accepted += 1
        self.peak_depth = max(self.peak_depth, len(self._entries))
        if self.metrics is not None:
            self.metrics.inc("controlplane.buffer_accepted")
            self.metrics.set_gauge("controlplane.buffer_depth", len(self._entries))
        return OfferOutcome(accepted=True)

    def _reject(self, device: str) -> OfferOutcome:
        self.rejected += 1
        if self.metrics is not None:
            self.metrics.inc("controlplane.buffer_rejected")
        return OfferOutcome(accepted=False)

    def drain(self, now_s: float) -> List[BufferedUpload]:
        """Remove and return every entry visible at ``now_s``, in order."""
        ready: List[BufferedUpload] = []
        parked: Deque[BufferedUpload] = collections.deque()
        while self._entries:
            entry = self._entries.popleft()
            if entry.visible_at_s <= now_s:
                ready.append(entry)
            else:
                parked.append(entry)
        self._entries = parked
        if self.metrics is not None:
            self.metrics.set_gauge("controlplane.buffer_depth", len(self._entries))
        return ready

    def snapshot(self) -> dict:
        return {
            "capacity": self.capacity,
            "policy": self.policy,
            "depth": len(self._entries),
            "peak_depth": self.peak_depth,
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "blocked": self.blocked,
        }
