"""Production-shaped async control plane (extension).

Wraps :class:`repro.federated.async_server.AsynchronousFederatedServer`
into an event-driven loop that never blocks on a straggler: a
:class:`DeviceRegistry` tracks liveness through seeded heartbeats
(ALIVE → SUSPECT → DEAD → REJOINED), a :class:`BoundedUploadBuffer`
applies explicit backpressure (``reject`` / ``drop-oldest`` /
``block-with-deadline``), aggregation happens on deadline-bounded
ticks with staleness weighting, and a :class:`DegradationLadder`
(full → quorum → stale-serve → halt-with-checkpoint) degrades
gracefully as the live fraction falls. Activate via the CLI's
``--async`` flags or the :func:`controlplane` ambient context;
:func:`train_async_federated` is the driver entry.
"""

from repro.controlplane.buffer import (
    BUFFER_POLICIES,
    BoundedUploadBuffer,
    POLICY_BLOCK,
    POLICY_DROP_OLDEST,
    POLICY_REJECT,
)
from repro.controlplane.context import (
    ControlPlaneConfig,
    controlplane,
    get_active_controlplane,
    parse_buffer_spec,
)
from repro.controlplane.degrade import (
    DEGRADATION_MODES,
    DegradationLadder,
    DegradationPolicy,
    MODE_FULL,
    MODE_HALT,
    MODE_QUORUM,
    MODE_STALE,
)
from repro.controlplane.loop import AsyncControlPlane
from repro.controlplane.registry import (
    ALIVE,
    DEAD,
    DeviceRegistry,
    LIVENESS_STATES,
    REJOINED,
    SUSPECT,
    StateTransition,
)
from repro.controlplane.driver import (
    CONTROLPLANE_BLOB_KEY,
    skewed_round_durations,
    train_async_federated,
)

__all__ = [
    "ALIVE",
    "AsyncControlPlane",
    "BUFFER_POLICIES",
    "BoundedUploadBuffer",
    "CONTROLPLANE_BLOB_KEY",
    "ControlPlaneConfig",
    "DEAD",
    "DEGRADATION_MODES",
    "DegradationLadder",
    "DegradationPolicy",
    "DeviceRegistry",
    "LIVENESS_STATES",
    "MODE_FULL",
    "MODE_HALT",
    "MODE_QUORUM",
    "MODE_STALE",
    "POLICY_BLOCK",
    "POLICY_DROP_OLDEST",
    "POLICY_REJECT",
    "REJOINED",
    "SUSPECT",
    "StateTransition",
    "controlplane",
    "get_active_controlplane",
    "parse_buffer_spec",
    "skewed_round_durations",
    "train_async_federated",
]
