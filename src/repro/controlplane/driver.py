"""``train_async_federated`` — the control plane's training driver.

Same surface as :func:`repro.experiments.training.train_federated`
(assignments + :class:`FederatedPowerControlConfig` in, a
:class:`TrainingResult` out, ambient obs/resilience respected) but the
round loop is the :class:`~repro.controlplane.loop.AsyncControlPlane`:
devices train on a skewed speed profile, push through the bounded
upload buffer, and the wrapped
:class:`~repro.federated.async_server.AsynchronousFederatedServer`
staleness-weights each merge. Evaluations fire at modelled times (one
per ``eval_every_rounds`` sync-equivalent rounds) so async runs
produce the same evaluation series shape as synchronous ones.

Seed paths match the synchronous driver exactly — environments
``(seed, 1, index)``, controllers ``(seed, 2, index)``, global init
``(seed, 3)``, eval controller ``(seed, 4)`` — so the async run trains
the *same fleet* the sync run does, only the schedule differs.
"""

from __future__ import annotations

import pickle
from statistics import fmean
from typing import Dict, Optional, Sequence, Tuple

from repro.control.neural import build_neural_controller
from repro.control.runtime import ControlSession
from repro.controlplane.buffer import BoundedUploadBuffer
from repro.controlplane.context import (
    ControlPlaneConfig,
    get_active_controlplane,
)
from repro.controlplane.degrade import DegradationLadder, DegradationPolicy
from repro.controlplane.loop import AsyncControlPlane
from repro.controlplane.registry import DeviceRegistry
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.config import FederatedPowerControlConfig
from repro.experiments.evaluation import PolicyEvaluator
from repro.experiments.scenarios import evaluation_applications
from repro.faults.recovery import (
    OrchestratorProgress,
    RunSnapshot,
    capture_device_state,
    restore_device_state,
    restore_session_state,
    save_snapshot,
)
from repro.federated.async_server import (
    AsynchronousFederatedClient,
    AsynchronousFederatedServer,
)
from repro.federated.orchestrator import FederatedRunResult
from repro.federated.transport import InMemoryTransport
from repro.obs.context import (
    active_events,
    active_metrics,
    active_profiler,
)
from repro.obs.logging import get_logger
from repro.sim.trace import TraceRecorder
from repro.utils.rng import generator_from_root

#: Reserved ``device_blobs`` key carrying the loop's own progress in a
#: halt checkpoint — not a device name (names never start with ``__``).
CONTROLPLANE_BLOB_KEY = "__controlplane__"

_LOG = get_logger("controlplane.driver")


def skewed_round_durations(
    device_names: Sequence[str], slow_factor: float = 4.0
) -> Dict[str, float]:
    """The bench's skewed speed profile: linear 1.0 → ``slow_factor``.

    Device *i* of *D* takes ``1 + (slow_factor - 1) * i / (D - 1)``
    modelled seconds per local round — the fleet shape where the
    synchronous orchestrator pays the slowest device's time every
    round and the async plane does not.
    """
    if slow_factor < 1.0:
        raise ConfigurationError(
            f"slow factor must be >= 1, got {slow_factor}"
        )
    names = list(device_names)
    if len(names) == 1:
        return {names[0]: 1.0}
    span = len(names) - 1
    return {
        name: 1.0 + (slow_factor - 1.0) * index / span
        for index, name in enumerate(names)
    }


def train_async_federated(
    assignments: Dict[str, Tuple[str, ...]],
    config: FederatedPowerControlConfig,
    eval_applications: Optional[Sequence[str]] = None,
    controlplane_config: Optional[ControlPlaneConfig] = None,
    round_duration_s: Optional[Dict[str, float]] = None,
    slow_factor: float = 4.0,
    mixing_rate: float = 0.6,
    staleness_exponent: float = 0.5,
    suspect_after_missed: int = 2,
    dead_after_missed: int = 4,
    metrics=None,
    events=None,
    profiler=None,
    faults=None,
    aggregator=None,
    retry=None,
    checkpoint=None,
):
    """Run federated training under the async control plane.

    ``controlplane_config`` defaults to the ambient
    :func:`repro.controlplane.context.controlplane` configuration, then
    to :class:`ControlPlaneConfig` defaults. ``round_duration_s``
    overrides the skewed speed profile (modelled seconds per local
    round, per device). Resilience arguments behave exactly like
    :func:`~repro.experiments.training.train_federated`'s — ambient
    :func:`repro.faults.context.resilience` applies when they are
    ``None``; a fault plan's ``hb_loss``/``dead`` events drive the
    registry, and a configured checkpoint is where a degraded halt
    writes its resumable snapshot before the CLI exits with code 6.
    """
    from repro.experiments.training import (
        TrainingResult,
        _build_neural_controllers,
        _build_training_environments,
        _check_assignments,
        _emit_evaluation,
        _power_accounting,
        _resolve_run_resilience,
    )

    _check_assignments(assignments)
    metrics = active_metrics(metrics)
    events = active_events(events)
    profiler = active_profiler(profiler)
    cp = controlplane_config
    if cp is None:
        cp = get_active_controlplane() or ControlPlaneConfig(enabled=True)
    eval_apps = tuple(eval_applications or evaluation_applications())
    if round_duration_s is None:
        round_duration_s = skewed_round_durations(
            list(assignments), slow_factor=slow_factor
        )
    resilience_cfg = _resolve_run_resilience(
        faults,
        aggregator,
        retry,
        checkpoint,
        assignments,
        config,
        eval_apps,
        participation_fraction=1.0,
        aggregation_weights=None,
        guard_parts={
            "controlplane": (
                cp.heartbeat_interval_s,
                cp.buffer_capacity,
                cp.buffer_policy,
                cp.buffer_block_deadline_s,
                cp.quorum,
                sorted(round_duration_s.items()),
                mixing_rate,
                staleness_exponent,
            )
        },
    )
    snapshot = resilience_cfg.snapshot
    loop_state: Optional[Dict[str, object]] = None
    if snapshot is not None:
        blob = snapshot.device_blobs.get(CONTROLPLANE_BLOB_KEY)
        if blob is not None:
            loop_state = pickle.loads(blob)

    environments = _build_training_environments(
        assignments, config, metrics=metrics, profiler=profiler
    )
    controllers = _build_neural_controllers(assignments, config, environments)
    device_payloads: Dict[str, Dict[str, object]] = {}
    if snapshot is not None:
        for name in assignments:
            device_blob = snapshot.device_blobs.get(name)
            if device_blob is None:
                continue
            payload = restore_device_state(
                device_blob, metrics=metrics, profiler=profiler
            )
            device_payloads[name] = payload
            environments[name] = payload["environment"]
            controllers[name] = payload["controller"]
    trace = TraceRecorder()
    sessions = {
        name: ControlSession(
            environments[name],
            controllers[name],
            trace=trace,
            metrics=metrics,
            profiler=profiler,
            events=events,
        )
        for name in assignments
    }
    if snapshot is not None:
        for name, payload in device_payloads.items():
            restore_session_state(sessions[name], payload["session"])

    transport = InMemoryTransport(metrics=metrics)
    global_init = build_neural_controller(
        next(iter(environments.values())).device.opp_table,
        hidden_layers=config.hidden_layers,
        seed=generator_from_root(config.seed, 3),
    )
    server = AsynchronousFederatedServer(
        global_init.agent.get_parameters(),
        transport,
        mixing_rate=mixing_rate,
        staleness_exponent=staleness_exponent,
        metrics=metrics,
        aggregator=resilience_cfg.aggregator,
    )
    if snapshot is not None:
        server.restore(snapshot.global_parameters, snapshot.rounds_aggregated)

    # Resume acknowledges permanently dead devices: they are left out
    # of the fleet entirely, so the resumed run's quorum is computed
    # over the devices that can still contribute.
    acknowledged_dead: Tuple[str, ...] = ()
    if loop_state is not None:
        registry_blob = loop_state.get("registry", {})
        acknowledged_dead = tuple(
            name
            for name, record in registry_blob.get("devices", {}).items()
            if record.get("permanently_dead")
        )
    active_names = [n for n in assignments if n not in acknowledged_dead]
    if not active_names:
        raise ConfigurationError(
            "cannot resume: every device in the checkpoint is permanently dead"
        )
    clients = {
        name: AsynchronousFederatedClient(
            name, controllers[name].agent, transport, metrics=metrics
        )
        for name in active_names
    }

    def trainer_for(device_name: str):
        session = sessions[device_name]

        def train(round_index: int) -> None:
            session.run_steps(
                config.steps_per_round, round_index=round_index, train=True
            )

        return train

    if loop_state is not None:
        remaining = {
            name: int(loop_state["remaining"].get(name, config.num_rounds))
            for name in active_names
        }
    else:
        remaining = {name: config.num_rounds for name in active_names}

    registry = DeviceRegistry(
        heartbeat_interval_s=cp.heartbeat_interval_s,
        suspect_after_missed=suspect_after_missed,
        dead_after_missed=dead_after_missed,
        seed=config.seed,
        metrics=metrics,
        events=events,
    )
    buffer = BoundedUploadBuffer(
        capacity=cp.buffer_capacity,
        policy=cp.buffer_policy,
        block_deadline_s=cp.buffer_block_deadline_s,
        metrics=metrics,
    )
    ladder = DegradationLadder(
        DegradationPolicy(quorum_floor=cp.quorum),
        metrics=metrics,
        events=events,
    )

    result = TrainingResult(
        name="async_federated",
        assignments=dict(assignments),
        controllers=controllers,
    )
    if snapshot is not None:
        result.round_evaluations.extend(snapshot.round_evaluations)

    evaluator = PolicyEvaluator(list(assignments), config, eval_apps)
    if snapshot is not None:
        for name, payload in device_payloads.items():
            eval_environment = payload.get("eval_environment")
            if eval_environment is not None:
                evaluator.set_environment(name, eval_environment)
    eval_controller = build_neural_controller(
        next(iter(environments.values())).device.opp_table,
        power_limit_w=config.power_limit_w,
        offset_w=config.power_offset_w,
        hidden_layers=config.hidden_layers,
        seed=generator_from_root(config.seed, 4),
    )
    evals_done = len(result.round_evaluations)

    def run_evaluation(round_index: int) -> None:
        eval_controller.agent.set_parameters(server.global_parameters)
        round_eval = evaluator.evaluate(
            {name: eval_controller for name in assignments}, round_index
        )
        result.round_evaluations.append(round_eval)
        _emit_evaluation(events, round_eval)

    def checkpoint_on_halt(active_loop: AsyncControlPlane) -> str:
        if resilience_cfg.checkpoint is None:
            return ""
        blobs = {
            name: capture_device_state(
                environments[name],
                controllers[name],
                sessions[name],
                eval_environment=evaluator.get_environment(name),
            )
            for name in assignments
        }
        blobs[CONTROLPLANE_BLOB_KEY] = pickle.dumps(
            active_loop.state_blob(), protocol=pickle.HIGHEST_PROTOCOL
        )
        violations, steps = _power_accounting(
            trace, assignments, config.power_limit_w
        )
        if snapshot is not None:
            for name in assignments:
                violations[name] = violations.get(name, 0) + (
                    snapshot.prior_power_violations.get(name, 0)
                )
                steps[name] = steps.get(name, 0) + (
                    snapshot.prior_power_steps.get(name, 0)
                )
        save_snapshot(
            RunSnapshot(
                fingerprint=resilience_cfg.fingerprint,
                progress=OrchestratorProgress(next_round=server.version),
                global_parameters=server.global_parameters,
                rounds_aggregated=server.version,
                device_blobs=blobs,
                round_evaluations=list(result.round_evaluations),
                prior_power_violations=violations,
                prior_power_steps=steps,
            ),
            resilience_cfg.checkpoint.path,
        )
        _LOG.warning(
            "halt checkpoint written",
            extra={"path": str(resilience_cfg.checkpoint.path)},
        )
        return str(resilience_cfg.checkpoint.path)

    loop = AsyncControlPlane(
        server,
        clients,
        {name: trainer_for(name) for name in active_names},
        remaining,
        {name: round_duration_s[name] for name in active_names},
        registry,
        buffer,
        ladder,
        plan=resilience_cfg.plan,
        retry=resilience_cfg.retry,
        tick_interval_s=cp.heartbeat_interval_s,
        events=events,
        metrics=metrics,
        checkpoint_callback=checkpoint_on_halt,
    )

    # Evaluations at the modelled times where the synchronous run would
    # evaluate: one per eval_every_rounds "rounds", each round lasting
    # the slowest active device's duration. Evaluations already in the
    # resumed series are not repeated.
    max_duration = max(round_duration_s[name] for name in active_names)
    total_evals = config.num_rounds // config.eval_every_rounds
    eval_rounds = []
    for k in range(evals_done + 1, total_evals + 1):
        round_index = k * config.eval_every_rounds - 1
        eval_time = k * config.eval_every_rounds * max_duration
        eval_rounds.append(round_index)
        loop.schedule_callback(
            eval_time,
            (lambda r: lambda now_s: run_evaluation(r))(round_index),
        )

    _LOG.info(
        "async control plane starting",
        extra={
            "devices": len(active_names),
            "rounds_per_device": config.num_rounds,
            "heartbeat_interval_s": cp.heartbeat_interval_s,
            "buffer": f"{cp.buffer_capacity}:{cp.buffer_policy}",
            "quorum": cp.quorum,
        },
    )
    loop.run()  # raises DegradedHaltError after checkpointing on halt

    # Evaluations whose modelled time lies past the last event (the
    # slowest devices died, so the run finished early) still run — the
    # evaluation series must keep the synchronous shape.
    expected = total_evals
    for round_index in eval_rounds:
        if len(result.round_evaluations) >= expected:
            break
        already = any(
            getattr(r, "round_index", None) == round_index
            for r in result.round_evaluations
        )
        if not already:
            run_evaluation(round_index)

    run_result = FederatedRunResult(
        rounds_completed=len(loop.merge_log),
        total_bytes_communicated=transport.total_bytes,
        total_messages=transport.total_messages,
        participation_by_round=[[device] for _, device, _ in loop.merge_log],
        stragglers_by_round=[
            [device] if late else [] for _, device, late in loop.merge_log
        ],
        aggregations_completed=len(loop.merge_log),
    )
    violations, steps = _power_accounting(
        trace, assignments, config.power_limit_w
    )
    if snapshot is not None:
        for name in assignments:
            violations[name] = violations.get(name, 0) + (
                snapshot.prior_power_violations.get(name, 0)
            )
            steps[name] = steps.get(name, 0) + (
                snapshot.prior_power_steps.get(name, 0)
            )
    run_result.power_violations_by_device = violations
    run_result.power_steps_by_device = steps
    result.federated_result = run_result
    result.train_trace = trace
    result.communication_bytes = transport.total_bytes
    latencies = []
    for session in sessions.values():
        try:
            latencies.append(session.mean_decision_latency_s())
        except SimulationError:
            continue
    result.mean_decision_latency_s = fmean(latencies) if latencies else 0.0
    # Control-plane accounting for tables and the CLI summary; an extra
    # attribute so every TrainingResult consumer is untouched.
    result.controlplane = {
        "clock_s": loop.clock,
        "merges": len(loop.merge_log),
        "late_merges": loop.late_merges,
        "discarded_rounds": loop.discarded_rounds,
        "zombie_uploads": loop.zombie_uploads,
        "mode": ladder.mode,
        "mode_changes": len(ladder.history),
        "registry": registry.snapshot(),
        "buffer": buffer.snapshot(),
        "time_to_version": list(loop.time_to_version),
    }
    _LOG.info(
        "async control plane finished",
        extra={
            "merges": len(loop.merge_log),
            "late_merges": loop.late_merges,
            "mode": ladder.mode,
            "live_fraction": registry.live_fraction(),
            "clock_s": round(loop.clock, 3),
        },
    )
    return result
