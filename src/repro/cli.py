"""Command-line interface.

``repro-power list`` shows the experiment catalogue;
``repro-power run <id> [--full] [--seed N]`` executes one experiment
and prints its table/series output. ``--full`` uses the paper's
100-round schedule; the default is the fast smoke schedule.

Observability flags (``run`` and ``report``): ``--log-level``/
``--log-json`` configure the ``repro.*`` structured loggers;
``--metrics-out PATH`` attaches a :class:`~repro.obs.MetricsRegistry`
and :class:`~repro.obs.RoundTracer` to the run via the ambient
telemetry context, then writes one JSONL file — one ``round_span``
line per federated round followed by a final ``metrics_snapshot``
line; ``--flight-out PATH`` attaches a
:class:`~repro.obs.FlightRecorder` (capacity ``--flight-capacity``,
thinning ``--flight-sample``) and dumps one ``flight_record`` line per
retained control step; ``--profile`` attaches a
:class:`~repro.obs.ScopeProfiler` whose self/cumulative table lands on
stderr and (with ``--metrics-out``) in the metrics snapshot.

``repro-power obs-report trace.jsonl --metrics metrics.jsonl -o
report.md`` turns those artefacts into an offline Markdown run report
(OPP dwell histograms, power-violation rates, convergence curves,
straggler/drift summaries, device-vs-fleet divergence).

Cross-run analytics: ``--events-out PATH`` streams the run's telemetry
events (round spans, fault/guard/quarantine events, run summary) to a
JSONL file as they happen; ``--store PATH`` registers the run in a
persistent SQLite :class:`~repro.obs.store.RunStore` with its config,
per-round series and final summary. ``repro-power obs-diff A B``
compares two runs (metrics JSONL files, or ``--store`` run ids) with
direction-aware regression detection — two same-seed runs must report
zero deltas; ``--fail-on-regression`` exits 5 otherwise.
``repro-power obs-history --store runs.db`` tabulates stored runs and
flags the latest against its history via robust z-scores. ``bench``
appends a schema-versioned entry to ``BENCH_history.jsonl`` on every
invocation (``--no-history`` to skip) and ``--gate`` fails with exit 5
when a key throughput metric drops more than ``--max-drop`` below the
stored baseline median.

Guardrail flags (``run`` and ``report``): ``--guard`` arms the
device-side safety watchdog (fallback power-cap governor on anomaly),
``--quarantine`` arms the server-side update screen with EWMA
reputations, and ``--churn [SPEC]`` runs the federation under a seeded
join/leave/rejoin membership schedule (default spec:
``leave=0.15,rejoin=0.5,seed=11``). All three activate the ambient
:func:`repro.guard.guard` context, picked up by every federated
training run the experiment performs.

Control-plane flags (``run`` and ``report``): ``--async`` reroutes
federated training through the event-driven async control plane
(:mod:`repro.controlplane`) — device registry with seeded heartbeats,
bounded upload buffer with backpressure, deadline-bounded staleness-
weighted aggregation, graceful degradation by live fraction.
``--heartbeat-interval`` sets the modelled beat period,
``--upload-buffer capacity:policy[:deadline]`` the buffer
(policies: ``reject``, ``drop-oldest``, ``block-with-deadline``), and
``--quorum`` the live-fraction floor below which merging stops.

Exit codes: ``0`` success, ``1`` configuration or runtime error,
``3`` injected server kill (resume with ``--checkpoint``/``--resume``),
``4`` the run completed but ended *fully degraded* — every guarded
device finished on its fallback governor, ``5`` a regression gate
failed (``obs-diff --fail-on-regression`` or ``bench --gate``),
``6`` the async control plane halted below quorum after writing a
resumable checkpoint (``--async`` with ``--checkpoint``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from contextlib import nullcontext

from repro.errors import (
    ConfigurationError,
    DegradedHaltError,
    ReproError,
    RunKilledError,
)
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    paper_config,
    smoke_config,
)
from repro.obs import (
    FlightRecorder,
    MetricsRegistry,
    RoundTracer,
    ScopeProfiler,
    setup_logging,
    telemetry,
)
from repro.obs.report import report_from_files
from repro.parallel import BACKEND_NAMES, DEFAULT_BACKEND, execution


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-power",
        description=(
            "Federated reinforcement learning for power-efficient DVFS "
            "(DATE 2025 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="experiment id (see `list`)")
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full 100-round schedule (slower)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=2025, help="root random seed"
    )
    run_parser.add_argument(
        "--rounds",
        type=int,
        default=0,
        help="override the number of federated rounds (0 keeps the preset)",
    )
    run_parser.add_argument(
        "--steps",
        type=int,
        default=0,
        help="override the steps per round (0 keeps the preset)",
    )
    run_parser.add_argument(
        "--output",
        type=str,
        default="",
        help="also write the experiment output to this file",
    )
    _add_telemetry_flags(run_parser)
    _add_execution_flags(run_parser)
    _add_resilience_flags(run_parser)
    _add_guard_flags(run_parser)
    _add_hier_flags(run_parser)
    _add_controlplane_flags(run_parser)

    report_parser = subparsers.add_parser(
        "report",
        help="run a set of experiments and write one file each to a directory",
    )
    report_parser.add_argument(
        "output_dir", help="directory for the generated artefacts"
    )
    report_parser.add_argument(
        "--experiments",
        nargs="*",
        default=[],
        help="experiment ids to include (default: every paper artefact)",
    )
    report_parser.add_argument(
        "--full", action="store_true", help="use the paper's full schedule"
    )
    report_parser.add_argument(
        "--seed", type=int, default=2025, help="root random seed"
    )
    _add_telemetry_flags(report_parser)
    _add_execution_flags(report_parser)
    _add_resilience_flags(report_parser)
    _add_guard_flags(report_parser)
    _add_hier_flags(report_parser)
    _add_controlplane_flags(report_parser)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the speed benchmark suite and write BENCH_speed.json",
    )
    bench_parser.add_argument(
        "-o",
        "--output",
        type=str,
        default="BENCH_speed.json",
        metavar="PATH",
        help="where to write the JSON document (default: BENCH_speed.json)",
    )
    bench_parser.add_argument(
        "--seed", type=int, default=2025, help="root random seed"
    )
    bench_parser.add_argument(
        "--rounds", type=int, default=4, help="federated rounds per driver"
    )
    bench_parser.add_argument(
        "--steps", type=int, default=100, help="control steps per round"
    )
    bench_parser.add_argument(
        "--devices", type=int, default=4, help="number of simulated devices"
    )
    bench_parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="parallel workers (0 = min(devices, available cpus))",
    )
    bench_parser.add_argument(
        "--no-process",
        action="store_true",
        help="skip the process-backend comparison (serial timings only)",
    )
    bench_parser.add_argument(
        "--backend",
        type=str,
        default="batched",
        choices=sorted(BACKEND_NAMES),
        help=(
            "backend the fleet section compares against serial "
            "(default: batched)"
        ),
    )
    bench_parser.add_argument(
        "--fleet-devices",
        type=str,
        default="4,32,256",
        metavar="CSV",
        help=(
            "comma-separated fleet sizes for the per-scale throughput "
            "section, deduped and sorted; empty skips it "
            "(default: 4,32,256)"
        ),
    )
    bench_parser.add_argument(
        "--hier-devices",
        type=str,
        default="1000,10000",
        metavar="CSV",
        help=(
            "comma-separated device counts for the hierarchical-vs-flat "
            "aggregation section, deduped and sorted; empty skips it "
            "(default: 1000,10000)"
        ),
    )
    bench_parser.add_argument(
        "--history",
        type=str,
        default="BENCH_history.jsonl",
        metavar="PATH",
        help=(
            "append a schema-versioned entry to this JSONL trajectory "
            "(default: BENCH_history.jsonl)"
        ),
    )
    bench_parser.add_argument(
        "--no-history",
        action="store_true",
        help="do not append to the bench history trajectory",
    )
    bench_parser.add_argument(
        "--gate",
        action="store_true",
        help=(
            "fail (exit 5) when a key throughput metric drops more than "
            "--max-drop below the median of the stored history baseline"
        ),
    )
    bench_parser.add_argument(
        "--max-drop",
        type=float,
        default=0.3,
        metavar="FRACTION",
        help="largest tolerated relative throughput drop (default: 0.3)",
    )

    obs_report = subparsers.add_parser(
        "obs-report",
        help="render a Markdown run report from telemetry artefacts",
    )
    obs_report.add_argument(
        "flight_jsonl",
        help="flight-recorder JSONL written by `run --flight-out`",
    )
    obs_report.add_argument(
        "--metrics",
        type=str,
        default="",
        metavar="PATH",
        help="round-span/metrics JSONL written by `run --metrics-out`",
    )
    obs_report.add_argument(
        "--events",
        type=str,
        default="",
        metavar="PATH",
        help=(
            "events JSONL written by `run --events-out`; adds the fired "
            "alerts section to the report"
        ),
    )
    obs_report.add_argument(
        "-o",
        "--output",
        type=str,
        default="",
        metavar="PATH",
        help="write the report here instead of stdout",
    )
    obs_report.add_argument(
        "--power-limit",
        type=float,
        default=None,
        metavar="WATTS",
        help="P_crit to annotate in the report header",
    )
    obs_report.add_argument(
        "--title",
        type=str,
        default="Run report",
        help="report title (default: 'Run report')",
    )

    obs_diff = subparsers.add_parser(
        "obs-diff",
        help=(
            "compare two runs (metrics JSONL files, or --store run ids) "
            "with direction-aware regression detection"
        ),
    )
    obs_diff.add_argument(
        "run_a",
        help="baseline run: metrics JSONL path, or run id with --store",
    )
    obs_diff.add_argument(
        "run_b",
        help="candidate run: metrics JSONL path, or run id with --store",
    )
    obs_diff.add_argument(
        "--store",
        type=str,
        default="",
        metavar="PATH",
        help="RunStore SQLite file; run_a/run_b are then store run ids",
    )
    obs_diff.add_argument(
        "--flight-a",
        type=str,
        default="",
        metavar="PATH",
        help="run A's flight JSONL (adds reward/violation comparison)",
    )
    obs_diff.add_argument(
        "--flight-b",
        type=str,
        default="",
        metavar="PATH",
        help="run B's flight JSONL (adds reward/violation comparison)",
    )
    obs_diff.add_argument(
        "-o",
        "--output",
        type=str,
        default="",
        metavar="PATH",
        help="write the Markdown comparison here instead of stdout",
    )
    obs_diff.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 5 when run B regressed against run A",
    )
    obs_diff.add_argument(
        "--flag-timing",
        action="store_true",
        help=(
            "also flag wall-time/throughput regressions beyond 25%% "
            "(off by default: wall-clock noise is not a finding)"
        ),
    )
    obs_diff.add_argument(
        "--title",
        type=str,
        default="Run diff",
        help="comparison title (default: 'Run diff')",
    )

    obs_history = subparsers.add_parser(
        "obs-history",
        help=(
            "tabulate stored runs (--store) or the bench trajectory "
            "(--bench) and flag regressions against history"
        ),
    )
    obs_history.add_argument(
        "--store",
        type=str,
        default="",
        metavar="PATH",
        help="RunStore SQLite file to read run history from",
    )
    obs_history.add_argument(
        "--bench",
        type=str,
        default="",
        metavar="PATH",
        help="BENCH_history.jsonl trajectory to summarise instead",
    )
    obs_history.add_argument(
        "--limit",
        type=int,
        default=20,
        metavar="N",
        help="show at most the last N entries (default: 20)",
    )
    obs_history.add_argument(
        "--z-threshold",
        type=float,
        default=3.5,
        metavar="Z",
        help="robust z-score beyond which a metric is flagged (default: 3.5)",
    )
    obs_history.add_argument(
        "-o",
        "--output",
        type=str,
        default="",
        metavar="PATH",
        help="write the Markdown history here instead of stdout",
    )

    obs_watch = subparsers.add_parser(
        "obs-watch",
        help=(
            "live fleet dashboard: tail a run's events JSONL (or poll "
            "a --store run) and re-render the rollup in place"
        ),
    )
    obs_watch.add_argument(
        "events",
        nargs="?",
        default="",
        help="events JSONL being written by `run --events-out`",
    )
    obs_watch.add_argument(
        "--store",
        type=str,
        default="",
        metavar="PATH",
        help="poll a RunStore SQLite file instead of tailing a JSONL",
    )
    obs_watch.add_argument(
        "--run",
        type=int,
        default=None,
        metavar="ID",
        help="store run id to watch (required with --store)",
    )
    obs_watch.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="poll/re-render interval (default: 1.0)",
    )
    obs_watch.add_argument(
        "--once",
        action="store_true",
        help=(
            "render one snapshot of whatever is available and exit; "
            "wall-clock fields are dropped so the output is identical "
            "across execution backends (the scripting/CI mode)"
        ),
    )
    obs_watch.add_argument(
        "--max-wait",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="stop live watching after SECONDS (0 = until run_summary)",
    )
    obs_watch.add_argument(
        "-o",
        "--output",
        type=str,
        default="",
        metavar="PATH",
        help="write the rendered snapshot here instead of stdout",
    )
    return parser


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        type=str,
        default="",
        metavar="LEVEL",
        help="enable repro.* structured logging at LEVEL (debug, info, ...)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="format log records as JSON lines (implies --log-level info)",
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default="",
        metavar="PATH",
        help=(
            "attach a metrics registry and round tracer to the run and "
            "write round spans plus a final metrics snapshot to PATH as JSONL"
        ),
    )
    parser.add_argument(
        "--flight-out",
        type=str,
        default="",
        metavar="PATH",
        help=(
            "attach a device-level flight recorder and write one JSON line "
            "per retained control step to PATH"
        ),
    )
    parser.add_argument(
        "--flight-capacity",
        type=int,
        default=65536,
        metavar="N",
        help="flight-recorder ring-buffer capacity (default: 65536 records)",
    )
    parser.add_argument(
        "--flight-sample",
        type=int,
        default=1,
        metavar="N",
        help="keep every Nth control step per device (default: 1, keep all)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "attach a hot-path scope profiler; prints the self/cumulative "
            "table to stderr and exports it into --metrics-out if given"
        ),
    )
    parser.add_argument(
        "--events-out",
        type=str,
        default="",
        metavar="PATH",
        help=(
            "stream telemetry events (round spans, fault/guard/quarantine "
            "events, run summary) to PATH as JSONL while the run executes"
        ),
    )
    parser.add_argument(
        "--store",
        type=str,
        default="",
        metavar="PATH",
        help=(
            "register this run in a persistent SQLite RunStore at PATH "
            "(config, streamed events, per-round series, final summary) "
            "for later obs-diff/obs-history comparison"
        ),
    )
    parser.add_argument(
        "--run-name",
        type=str,
        default="",
        metavar="NAME",
        help="run name recorded in --store (default: the experiment id)",
    )
    parser.add_argument(
        "--serve-metrics",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve /metrics (Prometheus text), /health and /rollup.json "
            "on 127.0.0.1:PORT while the run executes (0 picks a free "
            "port; implies a live events pipeline)"
        ),
    )
    parser.add_argument(
        "--alerts",
        type=str,
        default="",
        metavar="SPEC",
        help=(
            "comma-separated alert rules ('metric>=threshold[@window]') "
            "or a JSON rule file; triggered alerts flow through the "
            "event stream and into obs-report (implies a live events "
            "pipeline)"
        ),
    )


def _add_execution_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        type=str,
        default=DEFAULT_BACKEND,
        choices=BACKEND_NAMES,
        help=(
            "execution backend for the training drivers: serial (default), "
            "thread, or process (persistent per-device workers; results "
            "are bit-identical across backends)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="max concurrent device workers (0 = one per device)",
    )


def _add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults",
        type=str,
        default="",
        metavar="SPEC",
        help=(
            "inject seeded faults into the federated runs: a plan spec "
            "like 'drop=0.1,fail=0.2,seed=3,kill=5' or the path of a "
            "saved FaultPlan JSON (see repro.faults.FaultPlan.from_spec)"
        ),
    )
    parser.add_argument(
        "--aggregator",
        type=str,
        default="",
        metavar="NAME",
        help=(
            "robust aggregation rule: mean (default), median, "
            "trimmed_mean[:FRACTION], or norm_clip[:NORM]"
        ),
    )
    parser.add_argument(
        "--checkpoint",
        type=str,
        default="",
        metavar="PATH",
        help="checkpoint the federated run state to PATH after each due round",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint every N rounds (default: 1, with --checkpoint)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the --checkpoint snapshot instead of starting "
            "over; the finished run is bit-identical to an uninterrupted one"
        ),
    )
    parser.add_argument(
        "--retry-attempts",
        type=int,
        default=3,
        metavar="N",
        help=(
            "transport retry budget per send when faults are injected "
            "(default: 3; only active with --faults)"
        ),
    )


def _add_guard_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--guard",
        action="store_true",
        help=(
            "arm the device-side safety watchdog: anomalous agents are "
            "swapped onto a power-cap fallback governor and re-admitted "
            "only after a clean probation (see repro.guard.watchdog)"
        ),
    )
    parser.add_argument(
        "--quarantine",
        action="store_true",
        help=(
            "screen incoming federated updates before aggregation and "
            "quarantine repeat offenders for a cooldown "
            "(see repro.guard.quarantine)"
        ),
    )
    parser.add_argument(
        "--churn",
        type=str,
        nargs="?",
        const="default",
        default="",
        metavar="SPEC",
        help=(
            "run under a seeded join/leave/rejoin membership schedule; "
            "SPEC is a plan like 'leave=0.15,rejoin=0.5,seed=11' "
            f"(bare --churn uses that default; see "
            f"repro.guard.ChurnPlan.from_spec)"
        ),
    )


def _add_hier_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        type=str,
        default="",
        metavar="SPEC",
        help=(
            "run the federation over a multi-tier aggregation tree: "
            "'flat', key=value pairs like 'edges=4,regions=2,seed=7' or "
            "the path of a saved topology JSON "
            "(see repro.hier.FleetTopology.from_spec)"
        ),
    )
    parser.add_argument(
        "--selection",
        type=str,
        default="",
        metavar="SPEC",
        help=(
            "client-selection policy for partial participation: "
            "'uniform[:FRACTION]', 'pareto[:FRACTION[:ALPHA]]' or "
            "'stratified[:FRACTION]' (stratified needs --topology; see "
            "repro.hier.build_selection_policy)"
        ),
    )


def _build_hier_context(args):
    """The ambient hierarchy context for this invocation (or a no-op)."""
    topology_spec = getattr(args, "topology", "")
    selection_spec = getattr(args, "selection", "")
    if not (topology_spec or selection_spec):
        return nullcontext()
    from repro.hier import hier

    return hier(
        topology=topology_spec or None,
        selection=selection_spec or None,
    )


def _add_controlplane_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--async",
        dest="async_mode",
        action="store_true",
        help=(
            "run federated training through the event-driven async "
            "control plane (device registry, heartbeats, bounded upload "
            "buffer, graceful degradation; see repro.controlplane)"
        ),
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="modelled heartbeat period for the device registry (default 1.0)",
    )
    parser.add_argument(
        "--upload-buffer",
        type=str,
        default="32:drop-oldest",
        metavar="SPEC",
        help=(
            "bounded upload buffer as 'capacity:policy[:deadline_s]'; "
            "policies: reject, drop-oldest, block-with-deadline "
            "(default 32:drop-oldest)"
        ),
    )
    parser.add_argument(
        "--quorum",
        type=float,
        default=0.5,
        metavar="FRACTION",
        help=(
            "live-fraction floor for the degradation ladder's quorum "
            "mode; below it the plane stops merging and may halt with "
            "exit code 6 (default 0.5)"
        ),
    )


def _build_controlplane_context(args):
    """The ambient control-plane context for this invocation (or a no-op)."""
    if not getattr(args, "async_mode", False):
        return nullcontext()
    from repro.controlplane import controlplane, parse_buffer_spec

    buffer_parts = parse_buffer_spec(args.upload_buffer)
    return controlplane(
        enabled=True,
        heartbeat_interval_s=args.heartbeat_interval,
        quorum=args.quorum,
        **buffer_parts,
    )


def _build_guard_context(args):
    """The ambient guard context for this invocation (or a no-op)."""
    guard_on = getattr(args, "guard", False)
    quarantine_on = getattr(args, "quarantine", False)
    churn_spec = getattr(args, "churn", "")
    if not (guard_on or quarantine_on or churn_spec):
        return nullcontext()
    from repro.guard import DEFAULT_CHURN_SPEC, guard

    if churn_spec == "default":
        churn_spec = DEFAULT_CHURN_SPEC
    return guard(
        watchdog=True if guard_on else None,
        quarantine=True if quarantine_on else None,
        churn=churn_spec or None,
    )


def _guard_exit_code(default: int = 0) -> int:
    """``default``, or 4 when the guarded run ended fully degraded."""
    from repro.guard import consume_guard_report

    report = consume_guard_report()
    if report is None:
        return default
    if report.quarantined_devices:
        print(
            "[guard] quarantined devices: "
            + ", ".join(report.quarantined_devices)
            + f" ({report.quarantine_events} exclusion events)",
            file=sys.stderr,
        )
    if report.fully_degraded:
        states = ", ".join(
            f"{name}={state}"
            for name, state in sorted(report.device_states.items())
        )
        print(
            f"run fully degraded: every guarded device ended on its "
            f"fallback governor ({states})",
            file=sys.stderr,
        )
        return 4
    return default


def _build_resilience_context(args):
    """The ambient resilience context for this invocation (or a no-op)."""
    faults = getattr(args, "faults", "")
    aggregator = getattr(args, "aggregator", "")
    checkpoint_path = getattr(args, "checkpoint", "")
    if not (faults or aggregator or checkpoint_path):
        if getattr(args, "resume", False):
            raise ConfigurationError("--resume requires --checkpoint PATH")
        return nullcontext()
    from repro.faults import CheckpointConfig, RetryPolicy, resilience

    checkpoint = None
    if checkpoint_path:
        _require_parent_dir("--checkpoint", checkpoint_path)
        checkpoint = CheckpointConfig(
            path=checkpoint_path,
            every=args.checkpoint_every,
            resume=args.resume,
        )
    elif args.resume:
        raise ConfigurationError("--resume requires --checkpoint PATH")
    retry = RetryPolicy(max_attempts=args.retry_attempts) if faults else None
    return resilience(
        faults=faults or None,
        aggregator=aggregator or None,
        retry=retry,
        checkpoint=checkpoint,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # Piping into `head` and friends closes stdout early; that is
        # not an error worth a traceback.
        return 0
    except RunKilledError as error:
        # An injected mid-run server kill is a scheduled chaos event,
        # not a configuration error — distinct exit code so scripts can
        # follow up with --resume.
        print(f"run killed: {error}", file=sys.stderr)
        return 3
    except DegradedHaltError as error:
        # The async control plane fell below quorum and halted after
        # writing a checkpoint; scripts can acknowledge the dead
        # devices and follow up with --resume.
        print(f"halt-degraded: {error}", file=sys.stderr)
        if error.checkpoint_path:
            print(
                f"resumable checkpoint: {error.checkpoint_path}",
                file=sys.stderr,
            )
        return 6
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    if args.command == "list":
        print(list_experiments())
        return 0
    if args.command == "obs-report":
        return _run_obs_report(args)
    if args.command == "obs-diff":
        return _run_obs_diff(args)
    if args.command == "obs-history":
        return _run_obs_history(args)
    if args.command == "obs-watch":
        return _run_obs_watch(args)
    if args.command == "bench":
        return _run_bench(args)
    _setup_logging_from_args(args)
    if args.command == "report":
        return _run_report(args)
    spec = get_experiment(args.experiment_id)
    config = paper_config(args.seed) if args.full else smoke_config(args.seed)
    if args.rounds or args.steps:
        config = config.scaled(
            rounds=args.rounds or config.num_rounds,
            steps_per_round=args.steps or config.steps_per_round,
        )
    sinks = _build_sinks(args, spec.experiment_id, config)
    with telemetry(
        metrics=sinks.metrics,
        tracer=sinks.tracer,
        flight=sinks.flight,
        profiler=sinks.profiler,
        events=sinks.events,
    ), execution(args.backend, args.workers or None), _build_resilience_context(
        args
    ), _build_guard_context(args), _build_hier_context(
        args
    ), _build_controlplane_context(args):
        output = spec.runner(config)
    print(output)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output + "\n")
    _write_sink_outputs(args, sinks)
    return _guard_exit_code()


def _setup_logging_from_args(args) -> None:
    if args.log_level or args.log_json:
        try:
            setup_logging(
                level=args.log_level or "INFO", json_output=args.log_json
            )
        except ValueError as error:
            raise ConfigurationError(str(error)) from error


class _Sinks:
    """The telemetry sinks one CLI invocation attaches (any may be None)."""

    def __init__(
        self,
        metrics,
        tracer,
        flight,
        profiler,
        events=None,
        store=None,
        run_id=None,
        header=None,
        rollup=None,
        server=None,
    ) -> None:
        self.metrics = metrics
        self.tracer = tracer
        self.flight = flight
        self.profiler = profiler
        self.events = events
        self.store = store
        self.run_id = run_id
        self.header = header
        self.rollup = rollup
        self.server = server


def _telemetry_header(args, experiment: str, config) -> dict:
    """The provenance record stamped first into every telemetry file."""
    from repro import __version__
    from repro.faults.recovery import run_fingerprint
    from repro.obs.sink import TELEMETRY_SCHEMA_VERSION

    fingerprint = run_fingerprint(
        experiment=experiment,
        seed=args.seed,
        backend=args.backend,
        rounds=config.num_rounds,
        steps_per_round=config.steps_per_round,
    )
    return {
        "type": "header",
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "run_fingerprint": fingerprint,
        "repro_version": __version__,
        "seed": args.seed,
        "backend": args.backend,
        "experiment": experiment,
    }


def _build_sinks(args, experiment: str, config) -> _Sinks:
    metrics = tracer = flight = profiler = None
    events = store = run_id = rollup = server = None
    events_out = getattr(args, "events_out", "")
    store_path = getattr(args, "store", "")
    serve_port = getattr(args, "serve_metrics", None)
    alerts_spec = getattr(args, "alerts", "")
    # Serving live metrics or evaluating alert rules needs the event
    # stream even when no file/store sink was asked for.
    want_events = bool(
        events_out or store_path or serve_port is not None or alerts_spec
    )
    # Events and the store need round spans (tracer), train-step counts
    # (metrics) and reward curves (flight) to be useful — attach them
    # implicitly, exactly as --metrics-out/--flight-out would.
    if args.metrics_out or want_events:
        if args.metrics_out:
            _require_parent_dir("--metrics-out", args.metrics_out)
        metrics, tracer = MetricsRegistry(), RoundTracer()
    if args.flight_out or store_path:
        if args.flight_out:
            _require_parent_dir("--flight-out", args.flight_out)
        flight = FlightRecorder(
            capacity=args.flight_capacity, sample_every=args.flight_sample
        )
    if args.profile:
        profiler = ScopeProfiler()
    header = None
    if metrics is not None or flight is not None or want_events:
        header = _telemetry_header(args, experiment, config)
    if want_events:
        from repro.obs.sink import EventPipeline, JsonlSink, SqliteSink

        event_sinks = []
        if events_out:
            _require_parent_dir("--events-out", events_out)
            jsonl_sink = JsonlSink(events_out)
            jsonl_sink.emit(header)  # header is always the first line
            event_sinks.append(jsonl_sink)
        if store_path:
            from repro.obs.store import RunStore

            _require_parent_dir("--store", store_path)
            store = RunStore(store_path)
            run_id = store.register_run(
                name=getattr(args, "run_name", "") or experiment,
                fingerprint=header["run_fingerprint"],
                seed=args.seed,
                backend=args.backend,
                repro_version=header["repro_version"],
                config={
                    "experiment": experiment,
                    "seed": args.seed,
                    "backend": args.backend,
                    "rounds": config.num_rounds,
                    "steps_per_round": config.steps_per_round,
                },
            )
            event_sinks.append(SqliteSink(store, run_id))
        from repro.obs.rollup import FleetRollup

        alert_engine = None
        if alerts_spec:
            from repro.obs.alerts import AlertEngine, parse_alert_specs

            alert_engine = AlertEngine(parse_alert_specs(alerts_spec))
        rollup = FleetRollup(alerts=alert_engine)
        rollup.emit(header)  # same first row the JSONL sink sees
        event_sinks.append(rollup)
        events = EventPipeline(sinks=event_sinks)
        rollup.bind(events)
        if serve_port is not None:
            from repro.obs.exposition import MetricsServer

            server = MetricsServer(
                metrics=metrics, rollup=rollup, port=serve_port
            )
            server.start()
            print(f"[obs] serving metrics on {server.url}", file=sys.stderr)
    return _Sinks(
        metrics,
        tracer,
        flight,
        profiler,
        events=events,
        store=store,
        run_id=run_id,
        header=header,
        rollup=rollup,
        server=server,
    )


def _require_parent_dir(flag: str, path: str) -> None:
    # Fail before the run, not after: a bad path discovered only at
    # dump time would discard the entire run's telemetry.
    parent = os.path.dirname(os.path.abspath(path))
    if not os.path.isdir(parent):
        raise ConfigurationError(f"{flag} directory does not exist: {parent!r}")


def _write_sink_outputs(args, sinks: _Sinks) -> None:
    if sinks.profiler is not None:
        if sinks.metrics is not None:
            sinks.profiler.export_to(sinks.metrics)
        print(sinks.profiler.format_table(), file=sys.stderr)
    if args.metrics_out:
        _write_metrics_jsonl(
            args.metrics_out, sinks.metrics, sinks.tracer, sinks.header
        )
    if args.flight_out:
        lines = sinks.flight.to_jsonl_lines()
        with open(args.flight_out, "w") as handle:
            if sinks.header is not None:
                handle.write(json.dumps(sinks.header) + "\n")
            if lines:
                handle.write("\n".join(lines) + "\n")
        dropped = sinks.flight.records_dropped
        suffix = f" ({dropped} evicted)" if dropped else ""
        print(
            f"[telemetry] {len(lines)} flight records{suffix}"
            f" -> {args.flight_out}",
            file=sys.stderr,
        )
    if sinks.server is not None:
        sinks.server.stop()
    if sinks.events is not None:
        sinks.events.close()
        if getattr(args, "events_out", ""):
            print(
                f"[telemetry] {sinks.events.events_emitted} events"
                f" -> {args.events_out}",
                file=sys.stderr,
            )
    if sinks.rollup is not None:
        if sinks.flight is not None:
            sinks.rollup.ingest_flight(sinks.flight)
        if sinks.metrics is not None:
            sinks.rollup.ingest_metrics_state(sinks.metrics.dump_state())
        if sinks.store is not None:
            sinks.rollup.persist(sinks.store, sinks.run_id)
        if sinks.rollup.alerts_total:
            print(
                f"[obs] {sinks.rollup.alerts_total} alert(s) fired",
                file=sys.stderr,
            )
    if sinks.store is not None:
        summary = sinks.store.ingest_telemetry(
            sinks.run_id,
            tracer=sinks.tracer,
            flight=sinks.flight,
            metrics=sinks.metrics,
        )
        sinks.store.close()
        print(
            f"[store] run {sinks.run_id} finished in {args.store}"
            f" ({len(summary)} summary metrics)",
            file=sys.stderr,
        )


def _write_metrics_jsonl(
    path: str,
    metrics: MetricsRegistry,
    tracer: RoundTracer,
    header=None,
) -> None:
    """Header, one ``round_span`` line per round, one ``metrics_snapshot``."""
    lines = tracer.to_jsonl_lines()
    lines.append(
        json.dumps({"type": "metrics_snapshot", **metrics.snapshot()})
    )
    if header is not None:
        lines.insert(0, json.dumps(header))
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print(
        f"[telemetry] {len(lines) - 2} round spans + metrics snapshot -> {path}",
        file=sys.stderr,
    )


def _parse_scales(flag: str, raw: str) -> Optional[tuple]:
    """Parse a CSV device-count flag: dedupe, sort, reject counts < 1.

    Returns the validated tuple (empty input → empty tuple, which skips
    the section), or ``None`` after printing a clear error — the caller
    exits 2, the CLI's bad-arguments code.
    """
    parts = [part.strip() for part in raw.split(",") if part.strip()]
    try:
        values = [int(part) for part in parts]
    except ValueError:
        print(
            f"error: {flag} must be a comma-separated list of integers, "
            f"got {raw!r}",
            file=sys.stderr,
        )
        return None
    invalid = sorted({value for value in values if value < 1})
    if invalid:
        print(
            f"error: {flag} device counts must be >= 1, got "
            f"{', '.join(str(value) for value in invalid)}",
            file=sys.stderr,
        )
        return None
    return tuple(sorted(set(values)))


def _run_bench(args) -> int:
    """Run the speed benchmark suite; write the document + history."""
    from repro.experiments.bench import (
        format_summary,
        history_entry,
        run_speed_benchmark,
        write_benchmark,
    )

    _require_parent_dir("--output", args.output)
    if not args.no_history:
        _require_parent_dir("--history", args.history)
    backends = ("serial",) if args.no_process else ("serial", "process")
    fleet_scales = _parse_scales("--fleet-devices", args.fleet_devices)
    if fleet_scales is None:
        return 2
    hier_scales = _parse_scales("--hier-devices", args.hier_devices)
    if hier_scales is None:
        return 2
    document = run_speed_benchmark(
        seed=args.seed,
        rounds=args.rounds,
        steps_per_round=args.steps,
        num_devices=args.devices,
        workers=args.workers or None,
        backends=backends,
        fleet_backend=args.backend,
        fleet_scales=fleet_scales,
        hier_scales=hier_scales,
    )
    path = write_benchmark(document, args.output, mirror_root=True)
    print(format_summary(document))
    print(f"[bench] -> {path}", file=sys.stderr)
    if args.no_history:
        return 0
    from repro.obs.store import append_bench_history, load_bench_history

    entry = history_entry(document)
    prior = (
        load_bench_history(args.history)
        if os.path.isfile(args.history)
        else []
    )
    code = 0
    if args.gate:
        from repro.obs.regress import check_bench_gate

        gate = check_bench_gate(
            prior, entry["key_metrics"], max_drop=args.max_drop
        )
        if gate.ok:
            print(
                f"[bench] gate OK ({gate.compared} metrics vs baseline)",
                file=sys.stderr,
            )
        else:
            for flag in gate.regressions:
                print(f"[bench] GATE FAILED — {flag.describe()}", file=sys.stderr)
            code = 5
    append_bench_history(entry, args.history)
    print(
        f"[bench] history +1 -> {args.history} ({len(prior) + 1} entries)",
        file=sys.stderr,
    )
    return code


def _run_obs_report(args) -> int:
    """Render the offline run report from telemetry artefacts."""
    for path in filter(None, [args.flight_jsonl, args.metrics, args.events]):
        if not os.path.isfile(path):
            raise ConfigurationError(f"telemetry file does not exist: {path!r}")
    text = report_from_files(
        args.flight_jsonl,
        metrics_path=args.metrics or None,
        power_limit_w=args.power_limit,
        title=args.title,
        events_path=args.events or None,
    )
    if args.output:
        _require_parent_dir("--output", args.output)
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"[obs-report] report -> {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _run_obs_watch(args) -> int:
    """Tail an events stream (file or store) and render the fleet rollup."""
    from repro.obs.watch import watch

    if bool(args.events) == bool(args.store):
        raise ConfigurationError(
            "obs-watch needs exactly one source: an events JSONL "
            "or --store PATH --run ID"
        )
    handle = None
    if args.output:
        _require_parent_dir("--output", args.output)
        handle = open(args.output, "w")
    try:
        kwargs = dict(
            once=args.once,
            interval_s=args.interval,
            deterministic=args.once,
            max_wait_s=args.max_wait or None,
            out=handle,
        )
        if args.store:
            if not os.path.isfile(args.store):
                raise ConfigurationError(
                    f"run store does not exist: {args.store!r}"
                )
            if args.run is None:
                raise ConfigurationError("--store requires --run ID")
            from repro.obs.store import RunStore

            with RunStore(args.store) as store:
                watch(store=store, run_id=args.run, **kwargs)
        else:
            if args.once and not os.path.isfile(args.events):
                raise ConfigurationError(
                    f"events file does not exist: {args.events!r}"
                )
            watch(events_path=args.events, **kwargs)
    finally:
        if handle is not None:
            handle.close()
    if args.output:
        print(f"[obs-watch] snapshot -> {args.output}", file=sys.stderr)
    return 0


def _run_obs_diff(args) -> int:
    """Compare two runs and render the Markdown diff; 5 on regression."""
    from repro.obs.diff import (
        diff_runs,
        format_diff_markdown,
        format_reward_curves,
        run_metrics_from_files,
        run_metrics_from_store,
    )

    if args.store:
        from repro.obs.store import RunStore

        if not os.path.isfile(args.store):
            raise ConfigurationError(
                f"run store does not exist: {args.store!r}"
            )
        try:
            id_a, id_b = int(args.run_a), int(args.run_b)
        except ValueError as error:
            raise ConfigurationError(
                "with --store, run_a and run_b must be store run ids"
            ) from error
        with RunStore(args.store) as store:
            a = run_metrics_from_store(store, id_a)
            b = run_metrics_from_store(store, id_b)
    else:
        for path in filter(
            None, [args.run_a, args.run_b, args.flight_a, args.flight_b]
        ):
            if not os.path.isfile(path):
                raise ConfigurationError(
                    f"telemetry file does not exist: {path!r}"
                )
        a = run_metrics_from_files(
            args.run_a, flight_path=args.flight_a or None
        )
        b = run_metrics_from_files(
            args.run_b, flight_path=args.flight_b or None
        )
    diff = diff_runs(a, b, flag_timing=args.flag_timing)
    text = format_diff_markdown(diff, title=args.title)
    curves = format_reward_curves(a, b)
    if curves:
        text += "\n" + curves
    if args.output:
        _require_parent_dir("--output", args.output)
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"[obs-diff] comparison -> {args.output}", file=sys.stderr)
    else:
        print(text)
    for warning in diff.provenance_warnings:
        print(f"[obs-diff] warning: {warning}", file=sys.stderr)
    if args.fail_on_regression and diff.regressions:
        for row in diff.regressions:
            print(
                f"[obs-diff] REGRESSION — {row.metric}: {row.a:.6g}"
                f" -> {row.b:.6g} ({row.direction} is better)",
                file=sys.stderr,
            )
        return 5
    return 0


def _run_obs_history(args) -> int:
    """Tabulate stored runs (or the bench trajectory) + regression flags."""
    if bool(args.store) == bool(args.bench):
        raise ConfigurationError(
            "obs-history needs exactly one of --store or --bench"
        )
    if args.store:
        text = _history_from_store(args)
    else:
        text = _history_from_bench(args)
    if args.output:
        _require_parent_dir("--output", args.output)
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"[obs-history] -> {args.output}", file=sys.stderr)
    else:
        print(text)
    return 0


def _history_from_store(args) -> str:
    from repro.obs.diff import format_history_markdown
    from repro.obs.regress import detect_regressions
    from repro.obs.store import RunStore

    if not os.path.isfile(args.store):
        raise ConfigurationError(f"run store does not exist: {args.store!r}")
    with RunStore(args.store) as store:
        runs = store.runs()[-args.limit :]
    finished = [run for run in runs if run.get("summary")]
    flags = []
    if len(finished) >= 2:
        flags = detect_regressions(
            [run["summary"] for run in finished[:-1]],
            finished[-1]["summary"],
            z_threshold=args.z_threshold,
        )
    return format_history_markdown(
        runs, flags, title=f"Run history ({args.store})"
    )


def _history_from_bench(args) -> str:
    from repro.obs.store import load_bench_history

    if not os.path.isfile(args.bench):
        raise ConfigurationError(
            f"bench history does not exist: {args.bench!r}"
        )
    entries = load_bench_history(args.bench)[-args.limit :]
    lines = [f"# Bench history ({args.bench})", ""]
    lines.append(f"- entries: {len(entries)}")
    lines.append("")
    if entries:
        metrics = sorted(
            {
                metric
                for entry in entries
                for metric in (entry.get("key_metrics") or {})
            }
        )
        lines.append("| # | " + " | ".join(metrics) + " |")
        lines.append("| ---: |" + " ---: |" * len(metrics))
        for index, entry in enumerate(entries):
            key_metrics = entry.get("key_metrics") or {}
            cells = [
                f"{key_metrics[m]:.6g}" if m in key_metrics else "—"
                for m in metrics
            ]
            lines.append(f"| {index} | " + " | ".join(cells) + " |")
        lines.append("")
    return "\n".join(lines)


def _run_report(args) -> int:
    """Run the selected experiments, one output file per artefact."""
    import pathlib

    config = paper_config(args.seed) if args.full else smoke_config(args.seed)
    experiment_ids = args.experiments or [
        spec.experiment_id
        for spec in EXPERIMENTS.values()
        if spec.paper_artifact != "extension"
    ]
    output_dir = pathlib.Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    sinks = _build_sinks(args, "report", config)
    with telemetry(
        metrics=sinks.metrics,
        tracer=sinks.tracer,
        flight=sinks.flight,
        profiler=sinks.profiler,
        events=sinks.events,
    ), execution(args.backend, args.workers or None), _build_resilience_context(
        args
    ), _build_guard_context(args), _build_hier_context(
        args
    ), _build_controlplane_context(args):
        for experiment_id in experiment_ids:
            spec = get_experiment(experiment_id)
            print(f"running {experiment_id} ({spec.paper_artifact}) ...")
            text = spec.runner(config)
            path = output_dir / f"{experiment_id}.txt"
            path.write_text(text + "\n")
            print(f"  -> {path}")
    _write_sink_outputs(args, sinks)
    return _guard_exit_code()


if __name__ == "__main__":
    sys.exit(main())
