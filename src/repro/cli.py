"""Command-line interface.

``repro-power list`` shows the experiment catalogue;
``repro-power run <id> [--full] [--seed N]`` executes one experiment
and prints its table/series output. ``--full`` uses the paper's
100-round schedule; the default is the fast smoke schedule.

Observability flags (``run`` and ``report``): ``--log-level``/
``--log-json`` configure the ``repro.*`` structured loggers, and
``--metrics-out PATH`` attaches a :class:`~repro.obs.MetricsRegistry`
and :class:`~repro.obs.RoundTracer` to the run via the ambient
telemetry context, then writes one JSONL file — one ``round_span``
line per federated round followed by a final ``metrics_snapshot``
line.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.errors import ConfigurationError, ReproError
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    list_experiments,
    paper_config,
    smoke_config,
)
from repro.obs import MetricsRegistry, RoundTracer, setup_logging, telemetry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-power",
        description=(
            "Federated reinforcement learning for power-efficient DVFS "
            "(DATE 2025 reproduction)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment")
    run_parser.add_argument("experiment_id", help="experiment id (see `list`)")
    run_parser.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full 100-round schedule (slower)",
    )
    run_parser.add_argument(
        "--seed", type=int, default=2025, help="root random seed"
    )
    run_parser.add_argument(
        "--rounds",
        type=int,
        default=0,
        help="override the number of federated rounds (0 keeps the preset)",
    )
    run_parser.add_argument(
        "--steps",
        type=int,
        default=0,
        help="override the steps per round (0 keeps the preset)",
    )
    run_parser.add_argument(
        "--output",
        type=str,
        default="",
        help="also write the experiment output to this file",
    )
    _add_telemetry_flags(run_parser)

    report_parser = subparsers.add_parser(
        "report",
        help="run a set of experiments and write one file each to a directory",
    )
    report_parser.add_argument(
        "output_dir", help="directory for the generated artefacts"
    )
    report_parser.add_argument(
        "--experiments",
        nargs="*",
        default=[],
        help="experiment ids to include (default: every paper artefact)",
    )
    report_parser.add_argument(
        "--full", action="store_true", help="use the paper's full schedule"
    )
    report_parser.add_argument(
        "--seed", type=int, default=2025, help="root random seed"
    )
    _add_telemetry_flags(report_parser)
    return parser


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--log-level",
        type=str,
        default="",
        metavar="LEVEL",
        help="enable repro.* structured logging at LEVEL (debug, info, ...)",
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help="format log records as JSON lines (implies --log-level info)",
    )
    parser.add_argument(
        "--metrics-out",
        type=str,
        default="",
        metavar="PATH",
        help=(
            "attach a metrics registry and round tracer to the run and "
            "write round spans plus a final metrics snapshot to PATH as JSONL"
        ),
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # Piping into `head` and friends closes stdout early; that is
        # not an error worth a traceback.
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _dispatch(args) -> int:
    if args.command == "list":
        print(list_experiments())
        return 0
    _setup_logging_from_args(args)
    if args.command == "report":
        return _run_report(args)
    spec = get_experiment(args.experiment_id)
    config = paper_config(args.seed) if args.full else smoke_config(args.seed)
    if args.rounds or args.steps:
        config = config.scaled(
            rounds=args.rounds or config.num_rounds,
            steps_per_round=args.steps or config.steps_per_round,
        )
    metrics, tracer = _build_sinks(args)
    with telemetry(metrics=metrics, tracer=tracer):
        output = spec.runner(config)
    print(output)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(output + "\n")
    if args.metrics_out:
        _write_metrics_jsonl(args.metrics_out, metrics, tracer)
    return 0


def _setup_logging_from_args(args) -> None:
    if args.log_level or args.log_json:
        try:
            setup_logging(
                level=args.log_level or "INFO", json_output=args.log_json
            )
        except ValueError as error:
            raise ConfigurationError(str(error)) from error


def _build_sinks(args):
    if not args.metrics_out:
        return None, None
    # Fail before the run, not after: a bad path discovered only at
    # dump time would discard the entire run's telemetry.
    parent = os.path.dirname(os.path.abspath(args.metrics_out))
    if not os.path.isdir(parent):
        raise ConfigurationError(
            f"--metrics-out directory does not exist: {parent!r}"
        )
    return MetricsRegistry(), RoundTracer()


def _write_metrics_jsonl(
    path: str, metrics: MetricsRegistry, tracer: RoundTracer
) -> None:
    """One ``round_span`` line per round, then one ``metrics_snapshot``."""
    lines = tracer.to_jsonl_lines()
    lines.append(
        json.dumps({"type": "metrics_snapshot", **metrics.snapshot()})
    )
    with open(path, "w") as handle:
        handle.write("\n".join(lines) + "\n")
    print(
        f"[telemetry] {len(lines) - 1} round spans + metrics snapshot -> {path}",
        file=sys.stderr,
    )


def _run_report(args) -> int:
    """Run the selected experiments, one output file per artefact."""
    import pathlib

    config = paper_config(args.seed) if args.full else smoke_config(args.seed)
    experiment_ids = args.experiments or [
        spec.experiment_id
        for spec in EXPERIMENTS.values()
        if spec.paper_artifact != "extension"
    ]
    output_dir = pathlib.Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    metrics, tracer = _build_sinks(args)
    with telemetry(metrics=metrics, tracer=tracer):
        for experiment_id in experiment_ids:
            spec = get_experiment(experiment_id)
            print(f"running {experiment_id} ({spec.paper_artifact}) ...")
            text = spec.runner(config)
            path = output_dir / f"{experiment_id}.txt"
            path.write_text(text + "\n")
            print(f"  -> {path}")
    if args.metrics_out:
        _write_metrics_jsonl(args.metrics_out, metrics, tracer)
    return 0


if __name__ == "__main__":
    sys.exit(main())
