"""Policy checkpointing.

A deployed power controller must survive device reboots without
retraining; this module persists a
:class:`~repro.rl.agent.NeuralBanditAgent`'s policy network and
training progress to a single ``.npz`` file and restores it into a
compatible agent. The replay buffer is deliberately *not* persisted —
it holds the raw counter/power samples whose privacy the system
protects, so checkpoints are as shareable as federated payloads.
"""

from __future__ import annotations

import pathlib
from typing import Union

import numpy as np

from repro.errors import ConfigurationError, PolicyError
from repro.rl.agent import NeuralBanditAgent

_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def save_agent(agent: NeuralBanditAgent, path: PathLike) -> None:
    """Write the agent's policy and step counter to ``path`` (.npz)."""
    arrays = {
        f"parameter_{index}": parameter
        for index, parameter in enumerate(agent.get_parameters())
    }
    arrays["layer_sizes"] = np.asarray(agent.network.layer_sizes, dtype=np.int64)
    arrays["step_count"] = np.asarray([agent.step_count], dtype=np.int64)
    arrays["format_version"] = np.asarray([_FORMAT_VERSION], dtype=np.int64)
    np.savez(str(path), **arrays)


def load_agent(agent: NeuralBanditAgent, path: PathLike) -> NeuralBanditAgent:
    """Restore policy and step counter from ``path`` into ``agent``.

    The agent must have the same network architecture as the
    checkpoint; the optimiser state is reset (as after a federated
    model install). Returns the same agent for chaining.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"checkpoint {path} does not exist")
    with np.load(str(path)) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"checkpoint format {version} not supported "
                f"(expected {_FORMAT_VERSION})"
            )
        layer_sizes = tuple(int(s) for s in data["layer_sizes"])
        if layer_sizes != agent.network.layer_sizes:
            raise PolicyError(
                f"checkpoint architecture {layer_sizes} does not match the "
                f"agent's {agent.network.layer_sizes}"
            )
        count = len(agent.network.parameters)
        parameters = [data[f"parameter_{index}"] for index in range(count)]
        agent.set_parameters(parameters, reset_optimizer=True)
        agent.restore_progress(int(data["step_count"][0]))
    return agent
