"""Policy checkpointing.

A deployed power controller must survive device reboots without
retraining; this module persists a
:class:`~repro.rl.agent.NeuralBanditAgent`'s policy network and
training progress to a single ``.npz`` file and restores it into a
compatible agent. The replay buffer is deliberately *not* persisted —
it holds the raw counter/power samples whose privacy the system
protects, so checkpoints are as shareable as federated payloads.
"""

from __future__ import annotations

import copy
import pathlib
from typing import Any, Dict, Union

import numpy as np

from repro.errors import ConfigurationError, PolicyError
from repro.nn.optimizers import SGD, Adam
from repro.rl.agent import NeuralBanditAgent

_FORMAT_VERSION = 1

PathLike = Union[str, pathlib.Path]


def rng_state(generator: np.random.Generator) -> Dict[str, Any]:
    """Snapshot a generator's bit-stream position as a plain dict.

    The returned mapping is a deep copy, so advancing the generator
    afterwards does not mutate the snapshot. Restoring it with
    :func:`set_rng_state` resumes the stream at exactly the captured
    draw — the backbone of bit-identical crash recovery.
    """
    return copy.deepcopy(generator.bit_generator.state)


def set_rng_state(
    generator: np.random.Generator, state: Dict[str, Any]
) -> np.random.Generator:
    """Rewind ``generator`` to a snapshot taken by :func:`rng_state`."""
    if not isinstance(state, dict) or "bit_generator" not in state:
        raise ConfigurationError(
            f"not an RNG state snapshot: {type(state).__name__}"
        )
    expected = type(generator.bit_generator).__name__
    if state["bit_generator"] != expected:
        raise ConfigurationError(
            f"RNG snapshot is for {state['bit_generator']!r}, the generator "
            f"uses {expected!r}"
        )
    generator.bit_generator.state = copy.deepcopy(state)
    return generator


def optimizer_state(optimizer: Union[Adam, SGD]) -> Dict[str, Any]:
    """Snapshot an optimiser's internal state (moments/velocity/step).

    Unlike a federated model install — which deliberately resets the
    moments — crash recovery must restore them exactly, or the first
    post-resume update diverges from the uninterrupted run.
    """
    if isinstance(optimizer, Adam):
        return {
            "kind": "adam",
            "step_count": optimizer._step_count,
            "first_moment": [m.copy() for m in optimizer._first_moment],
            "second_moment": [v.copy() for v in optimizer._second_moment],
        }
    if isinstance(optimizer, SGD):
        return {
            "kind": "sgd",
            "velocity": [v.copy() for v in optimizer._velocity],
        }
    raise ConfigurationError(
        f"cannot snapshot optimiser of type {type(optimizer).__name__}"
    )


def set_optimizer_state(
    optimizer: Union[Adam, SGD], state: Dict[str, Any]
) -> None:
    """Restore a snapshot taken by :func:`optimizer_state`."""
    kind = state.get("kind") if isinstance(state, dict) else None
    if isinstance(optimizer, Adam):
        if kind != "adam":
            raise ConfigurationError(
                f"optimiser snapshot kind {kind!r} does not match Adam"
            )
        optimizer._step_count = int(state["step_count"])
        optimizer._first_moment = [np.array(m, copy=True) for m in state["first_moment"]]
        optimizer._second_moment = [np.array(v, copy=True) for v in state["second_moment"]]
        return
    if isinstance(optimizer, SGD):
        if kind != "sgd":
            raise ConfigurationError(
                f"optimiser snapshot kind {kind!r} does not match SGD"
            )
        optimizer._velocity = [np.array(v, copy=True) for v in state["velocity"]]
        return
    raise ConfigurationError(
        f"cannot restore optimiser of type {type(optimizer).__name__}"
    )


def save_agent(agent: NeuralBanditAgent, path: PathLike) -> None:
    """Write the agent's policy and step counter to ``path`` (.npz)."""
    arrays = {
        f"parameter_{index}": parameter
        for index, parameter in enumerate(agent.get_parameters())
    }
    arrays["layer_sizes"] = np.asarray(agent.network.layer_sizes, dtype=np.int64)
    arrays["step_count"] = np.asarray([agent.step_count], dtype=np.int64)
    arrays["format_version"] = np.asarray([_FORMAT_VERSION], dtype=np.int64)
    np.savez(str(path), **arrays)


def load_agent(agent: NeuralBanditAgent, path: PathLike) -> NeuralBanditAgent:
    """Restore policy and step counter from ``path`` into ``agent``.

    The agent must have the same network architecture as the
    checkpoint; the optimiser state is reset (as after a federated
    model install). Returns the same agent for chaining.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"checkpoint {path} does not exist")
    with np.load(str(path)) as data:
        version = int(data["format_version"][0])
        if version != _FORMAT_VERSION:
            raise ConfigurationError(
                f"checkpoint format {version} not supported "
                f"(expected {_FORMAT_VERSION})"
            )
        layer_sizes = tuple(int(s) for s in data["layer_sizes"])
        if layer_sizes != agent.network.layer_sizes:
            raise PolicyError(
                f"checkpoint architecture {layer_sizes} does not match the "
                f"agent's {agent.network.layer_sizes}"
            )
        count = len(agent.network.parameters)
        parameters = [data[f"parameter_{index}"] for index in range(count)]
        agent.set_parameters(parameters, reset_optimizer=True)
        agent.restore_progress(int(data["step_count"][0]))
    return agent
