"""Policy checkpointing.

A deployed power controller must survive device reboots without
retraining; this module persists a
:class:`~repro.rl.agent.NeuralBanditAgent`'s policy network and
training progress to a single ``.npz`` file and restores it into a
compatible agent. The replay buffer is deliberately *not* persisted —
it holds the raw counter/power samples whose privacy the system
protects, so checkpoints are as shareable as federated payloads.
"""

from __future__ import annotations

import copy
import hashlib
import pathlib
from typing import Any, Dict, List, Union

import numpy as np

from repro.errors import CheckpointError, ConfigurationError, PolicyError
from repro.nn.optimizers import SGD, Adam
from repro.rl.agent import NeuralBanditAgent

#: v2 seals the checkpoint with a content digest (see
#: :func:`_policy_digest`); v1 files are still readable, just unsealed.
_FORMAT_VERSION = 2

PathLike = Union[str, pathlib.Path]


def rng_state(generator: np.random.Generator) -> Dict[str, Any]:
    """Snapshot a generator's bit-stream position as a plain dict.

    The returned mapping is a deep copy, so advancing the generator
    afterwards does not mutate the snapshot. Restoring it with
    :func:`set_rng_state` resumes the stream at exactly the captured
    draw — the backbone of bit-identical crash recovery.
    """
    return copy.deepcopy(generator.bit_generator.state)


def set_rng_state(
    generator: np.random.Generator, state: Dict[str, Any]
) -> np.random.Generator:
    """Rewind ``generator`` to a snapshot taken by :func:`rng_state`."""
    if not isinstance(state, dict) or "bit_generator" not in state:
        raise ConfigurationError(
            f"not an RNG state snapshot: {type(state).__name__}"
        )
    expected = type(generator.bit_generator).__name__
    if state["bit_generator"] != expected:
        raise ConfigurationError(
            f"RNG snapshot is for {state['bit_generator']!r}, the generator "
            f"uses {expected!r}"
        )
    generator.bit_generator.state = copy.deepcopy(state)
    return generator


def optimizer_state(optimizer: Union[Adam, SGD]) -> Dict[str, Any]:
    """Snapshot an optimiser's internal state (moments/velocity/step).

    Unlike a federated model install — which deliberately resets the
    moments — crash recovery must restore them exactly, or the first
    post-resume update diverges from the uninterrupted run.
    """
    if isinstance(optimizer, Adam):
        return {
            "kind": "adam",
            "step_count": optimizer._step_count,
            "first_moment": [m.copy() for m in optimizer._first_moment],
            "second_moment": [v.copy() for v in optimizer._second_moment],
        }
    if isinstance(optimizer, SGD):
        return {
            "kind": "sgd",
            "velocity": [v.copy() for v in optimizer._velocity],
        }
    raise ConfigurationError(
        f"cannot snapshot optimiser of type {type(optimizer).__name__}"
    )


def set_optimizer_state(
    optimizer: Union[Adam, SGD], state: Dict[str, Any]
) -> None:
    """Restore a snapshot taken by :func:`optimizer_state`."""
    kind = state.get("kind") if isinstance(state, dict) else None
    if isinstance(optimizer, Adam):
        if kind != "adam":
            raise ConfigurationError(
                f"optimiser snapshot kind {kind!r} does not match Adam"
            )
        optimizer._step_count = int(state["step_count"])
        optimizer._first_moment = [np.array(m, copy=True) for m in state["first_moment"]]
        optimizer._second_moment = [np.array(v, copy=True) for v in state["second_moment"]]
        return
    if isinstance(optimizer, SGD):
        if kind != "sgd":
            raise ConfigurationError(
                f"optimiser snapshot kind {kind!r} does not match SGD"
            )
        optimizer._velocity = [np.array(v, copy=True) for v in state["velocity"]]
        return
    raise ConfigurationError(
        f"cannot restore optimiser of type {type(optimizer).__name__}"
    )


def _policy_digest(
    parameters: List[np.ndarray], layer_sizes: np.ndarray, step_count: np.ndarray
) -> np.ndarray:
    """SHA-256 over the checkpoint's semantic content, as a uint8 array."""
    digest = hashlib.sha256()
    for parameter in parameters:
        digest.update(np.ascontiguousarray(parameter).tobytes())
    digest.update(np.ascontiguousarray(layer_sizes).tobytes())
    digest.update(np.ascontiguousarray(step_count).tobytes())
    return np.frombuffer(digest.digest(), dtype=np.uint8)


def save_agent(agent: NeuralBanditAgent, path: PathLike) -> None:
    """Write the agent's policy and step counter to ``path`` (.npz).

    The file carries a SHA-256 content digest so :func:`load_agent`
    refuses corrupted checkpoints instead of silently installing a
    damaged policy.
    """
    parameters = agent.get_parameters()
    arrays = {
        f"parameter_{index}": parameter
        for index, parameter in enumerate(parameters)
    }
    arrays["layer_sizes"] = np.asarray(agent.network.layer_sizes, dtype=np.int64)
    arrays["step_count"] = np.asarray([agent.step_count], dtype=np.int64)
    arrays["format_version"] = np.asarray([_FORMAT_VERSION], dtype=np.int64)
    arrays["content_digest"] = _policy_digest(
        parameters, arrays["layer_sizes"], arrays["step_count"]
    )
    np.savez(str(path), **arrays)


def load_agent(agent: NeuralBanditAgent, path: PathLike) -> NeuralBanditAgent:
    """Restore policy and step counter from ``path`` into ``agent``.

    The agent must have the same network architecture as the
    checkpoint; the optimiser state is reset (as after a federated
    model install). A checkpoint whose container is unreadable or
    whose content digest does not match raises
    :class:`~repro.errors.CheckpointError`. Returns the same agent for
    chaining.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ConfigurationError(f"checkpoint {path} does not exist")
    try:
        handle = np.load(str(path))
    except Exception as error:  # zip container torn or truncated
        raise CheckpointError(
            f"checkpoint {path} is not a readable policy archive "
            f"(truncated or corrupted): {error!r}"
        ) from error
    with handle as data:
        try:
            version = int(data["format_version"][0])
        except Exception as error:
            raise CheckpointError(
                f"checkpoint {path} is damaged: {error!r}"
            ) from error
        if version not in (1, _FORMAT_VERSION):
            raise ConfigurationError(
                f"checkpoint format {version} not supported "
                f"(expected {_FORMAT_VERSION})"
            )
        try:
            layer_sizes = tuple(int(s) for s in data["layer_sizes"])
            count = len(agent.network.parameters)
            parameters = [data[f"parameter_{index}"] for index in range(count)]
            step_count = data["step_count"]
            stored_digest = (
                data["content_digest"] if version >= 2 else None
            )
        except CheckpointError:
            raise
        except Exception as error:
            raise CheckpointError(
                f"checkpoint {path} is damaged: {error!r}"
            ) from error
        if layer_sizes != agent.network.layer_sizes:
            raise PolicyError(
                f"checkpoint architecture {layer_sizes} does not match the "
                f"agent's {agent.network.layer_sizes}"
            )
        if stored_digest is not None:
            expected = _policy_digest(
                parameters,
                np.asarray(layer_sizes, dtype=np.int64),
                np.asarray(step_count, dtype=np.int64),
            )
            if not np.array_equal(
                np.asarray(stored_digest, dtype=np.uint8), expected
            ):
                raise CheckpointError(
                    f"checkpoint {path} failed its content-digest check — "
                    f"refusing to install a corrupted policy"
                )
        agent.set_parameters(parameters, reset_optimizer=True)
        agent.restore_progress(int(step_count[0]))
    return agent
