"""Small numeric helpers used across the RL and simulator code."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def softmax(values: np.ndarray, temperature: float = 1.0) -> np.ndarray:
    """Numerically stable softmax with a temperature parameter.

    Implements Eq. (3) of the paper: higher ``temperature`` flattens the
    distribution towards uniform, lower ``temperature`` sharpens it
    towards the argmax. The maximum is subtracted before exponentiation
    so large logits cannot overflow.
    """
    if temperature <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    scaled = np.asarray(values, dtype=np.float64) / temperature
    scaled = scaled - np.max(scaled)
    exps = np.exp(scaled)
    return exps / np.sum(exps)


def huber_loss(residual: np.ndarray, delta: float = 1.0) -> np.ndarray:
    """Element-wise Huber loss of a residual ``prediction - target``.

    Quadratic for ``|residual| <= delta`` and linear beyond, which keeps
    gradient magnitudes bounded when the reward signal contains the
    occasional extreme sample (e.g. the -1 floor of the power-violation
    penalty).
    """
    if delta <= 0.0:
        raise ValueError(f"delta must be positive, got {delta}")
    residual = np.asarray(residual, dtype=np.float64)
    abs_res = np.abs(residual)
    quadratic = 0.5 * residual**2
    linear = delta * (abs_res - 0.5 * delta)
    return np.where(abs_res <= delta, quadratic, linear)


def huber_gradient(residual: np.ndarray, delta: float = 1.0) -> np.ndarray:
    """Derivative of :func:`huber_loss` with respect to the residual."""
    if delta <= 0.0:
        raise ValueError(f"delta must be positive, got {delta}")
    residual = np.asarray(residual, dtype=np.float64)
    return np.clip(residual, -delta, delta)


def exponential_decay(
    initial: float, rate: float, step: int, minimum: float = 0.0
) -> float:
    """Exponentially decayed value ``max(minimum, initial * exp(-rate * step))``.

    Used for the softmax temperature (Table I: ``tau_max`` 0.9,
    ``tau_decay`` 0.0005, ``tau_min`` 0.01) and for the epsilon schedule
    of the Profit baseline.
    """
    if step < 0:
        raise ValueError(f"step must be non-negative, got {step}")
    return max(minimum, initial * float(np.exp(-rate * step)))


def clip(value: float, low: float, high: float) -> float:
    """Clamp a scalar into ``[low, high]``."""
    if low > high:
        raise ValueError(f"invalid interval [{low}, {high}]")
    return min(max(value, low), high)


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Trailing moving average with a warm-up (shorter prefix windows).

    Element ``i`` is the mean of ``values[max(0, i - window + 1) : i + 1]``,
    so the output has the same length as the input. Used to smooth
    per-round reward curves when printing figure series.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    array = np.asarray(values, dtype=np.float64)
    if array.ndim != 1:
        raise ValueError("moving_average expects a 1-D sequence")
    cumulative = np.cumsum(array)
    result = np.empty_like(array)
    for i in range(array.shape[0]):
        start = max(0, i - window + 1)
        total = cumulative[i] - (cumulative[start - 1] if start > 0 else 0.0)
        result[i] = total / (i - start + 1)
    return result
