"""Parameter (de)serialisation with byte accounting.

The paper's overhead analysis (Section IV-C) reports 2.8 kB of data per
model transfer between a device and the aggregation server. To reproduce
that number, federated messages in this library carry their payload as
the exact byte string produced here (little-endian ``float32``, the
on-the-wire format an embedded implementation would use), so the
transport can count real bytes instead of estimating.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import FederationError

_WIRE_DTYPE = np.dtype("<f4")


def parameters_to_bytes(parameters: Sequence[np.ndarray]) -> bytes:
    """Serialise a list of parameter arrays into a contiguous byte string.

    Shapes are not encoded — both ends of a federated exchange share the
    model architecture, exactly as in the paper's fixed-topology setup —
    so the payload is purely the ``float32`` parameter values.
    """
    if not parameters:
        raise FederationError("cannot serialise an empty parameter list")
    chunks = [np.ascontiguousarray(p, dtype=_WIRE_DTYPE).tobytes() for p in parameters]
    return b"".join(chunks)


def bytes_to_parameters(
    payload: bytes, shapes: Sequence[Tuple[int, ...]]
) -> List[np.ndarray]:
    """Inverse of :func:`parameters_to_bytes` given the known shapes."""
    expected = sum(int(np.prod(shape)) for shape in shapes) * _WIRE_DTYPE.itemsize
    if len(payload) != expected:
        raise FederationError(
            f"payload has {len(payload)} bytes but shapes {list(shapes)} "
            f"require {expected}"
        )
    flat = np.frombuffer(payload, dtype=_WIRE_DTYPE).astype(np.float64)
    parameters: List[np.ndarray] = []
    offset = 0
    for shape in shapes:
        size = int(np.prod(shape))
        parameters.append(flat[offset : offset + size].reshape(shape).copy())
        offset += size
    return parameters


def parameter_num_bytes(parameters: Sequence[np.ndarray]) -> int:
    """Number of bytes one model transfer occupies on the wire."""
    return sum(int(np.prod(p.shape)) for p in parameters) * _WIRE_DTYPE.itemsize


def parameter_count(parameters: Sequence[np.ndarray]) -> int:
    """Total number of scalar parameters across all arrays."""
    return sum(int(np.prod(p.shape)) for p in parameters)
