"""Deterministic random-number handling.

Every stochastic component of the library (sensors, workload phase
jitter, policy sampling, replay-buffer sampling, weight initialisation)
accepts either an integer seed or a ready-made
:class:`numpy.random.Generator`. Centralising the coercion here keeps
the convention uniform and makes whole experiments reproducible from a
single root seed.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a freshly-seeded generator (non-reproducible), an
    ``int`` yields a deterministic generator, and an existing generator
    is returned unchanged (no copy — the caller shares its stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generator(parent: np.random.Generator, index: int = 0) -> np.random.Generator:
    """Derive an independent child generator from ``parent``.

    The child stream is a deterministic function of the parent state and
    ``index``, so components seeded through :func:`spawn_generator` do
    not perturb each other's streams when one of them draws more or
    fewer samples. Used to give each simulated device, sensor and agent
    its own stream from one experiment-level root seed.
    """
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    seed_seq = np.random.SeedSequence(
        entropy=int(parent.integers(0, 2**63 - 1)), spawn_key=(index,)
    )
    return np.random.default_rng(seed_seq)


def generator_from_root(root_seed: Optional[int], *path: int) -> np.random.Generator:
    """Build a generator from a root seed and a structural path.

    ``path`` identifies the consumer (e.g. ``(device_index, 2)`` for the
    power sensor of device ``device_index``), so two consumers with
    different paths get independent streams even though they share the
    root seed, and re-running the experiment with the same root seed
    reproduces every stream exactly.
    """
    seed_seq = np.random.SeedSequence(entropy=root_seed, spawn_key=tuple(path))
    return np.random.default_rng(seed_seq)
