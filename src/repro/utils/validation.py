"""Argument validation helpers.

These raise :class:`repro.errors.ConfigurationError` so that a bad
hyper-parameter fails loudly at construction time with a message naming
the offending field, instead of producing NaNs ten thousand steps into a
federated run.
"""

from __future__ import annotations

import math
from typing import Any

from repro.errors import ConfigurationError


def require_positive(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number greater than zero."""
    _require_finite(name, value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def require_non_negative(name: str, value: float) -> float:
    """Validate that ``value`` is a finite number greater or equal zero."""
    _require_finite(name, value)
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return value


def require_in_range(
    name: str, value: float, low: float, high: float, inclusive: bool = True
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    _require_finite(name, value)
    if inclusive:
        ok = low <= value <= high
        bounds = f"[{low}, {high}]"
    else:
        ok = low < value < high
        bounds = f"({low}, {high})"
    if not ok:
        raise ConfigurationError(f"{name} must be in {bounds}, got {value}")
    return value


def require_probability(name: str, value: float) -> float:
    """Validate that ``value`` is a probability in ``[0, 1]``."""
    return require_in_range(name, value, 0.0, 1.0)


def _require_finite(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    if not math.isfinite(value):
        raise ConfigurationError(f"{name} must be finite, got {value}")
