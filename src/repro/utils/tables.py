"""Plain-text table formatting for benchmark and CLI output.

The benchmark harness regenerates the paper's tables and figure series
as text, so the "figures" are printed as aligned columns that can be
diffed between runs and pasted into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Floats are formatted with ``float_format``; everything else is
    rendered with ``str``. Column widths adapt to the widest cell.
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, bool):
                cells.append(str(cell))
            elif isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        if len(cells) != len(headers):
            raise ValueError(
                f"row {cells} has {len(cells)} cells, expected {len(headers)}"
            )
        rendered.append(cells)

    widths = [max(len(row[col]) for row in rendered) for col in range(len(headers))]
    separator = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(cell.ljust(w) for cell, w in zip(rendered[0], widths))
    lines.append(header_line)
    lines.append(separator)
    for row in rendered[1:]:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str, values: Sequence[float], per_line: int = 10, float_format: str = "{:+.3f}"
) -> str:
    """Render a numeric series (a figure curve) as wrapped text.

    Used to print per-round reward curves (Fig. 3) and frequency traces
    (Fig. 4) from the benchmark harness.
    """
    if per_line <= 0:
        raise ValueError(f"per_line must be positive, got {per_line}")
    lines = [f"{name} (n={len(values)}):"]
    for start in range(0, len(values), per_line):
        chunk = values[start : start + per_line]
        lines.append(
            f"  [{start:4d}] " + " ".join(float_format.format(v) for v in chunk)
        )
    return "\n".join(lines)
