"""Plain-text line plots.

The benchmark harness regenerates the paper's *figures*, and a numeric
series alone makes trends hard to eyeball. This renderer draws multiple
series on one character grid — dependency-free, terminal-friendly, and
diffable — so figure outputs in ``benchmarks/results/`` read like
figures.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.errors import ConfigurationError

_MARKERS = "*+ox#@%&"


def line_plot(
    series: Mapping[str, Sequence[float]],
    width: int = 72,
    height: int = 16,
    title: str = "",
    y_min: Optional[float] = None,
    y_max: Optional[float] = None,
) -> str:
    """Render named series as an ASCII line plot.

    Each series gets a marker character (in insertion order); where
    series overlap, the later one wins the cell. The x axis spans the
    longest series' index range; y limits default to the data range
    with a small margin.
    """
    if not series:
        raise ConfigurationError("need at least one series to plot")
    if len(series) > len(_MARKERS):
        raise ConfigurationError(
            f"at most {len(_MARKERS)} series supported, got {len(series)}"
        )
    if width < 10 or height < 4:
        raise ConfigurationError(
            f"plot must be at least 10x4 characters, got {width}x{height}"
        )
    lengths = [len(values) for values in series.values()]
    if any(length == 0 for length in lengths):
        raise ConfigurationError("every series must be non-empty")

    all_values = [v for values in series.values() for v in values]
    low = min(all_values) if y_min is None else y_min
    high = max(all_values) if y_max is None else y_max
    if high == low:
        high = low + 1.0
    margin = 0.05 * (high - low)
    if y_min is None:
        low -= margin
    if y_max is None:
        high += margin

    max_length = max(lengths)
    grid = [[" "] * width for _ in range(height)]

    def cell(x_index: int, value: float):
        column = (
            0
            if max_length == 1
            else round(x_index / (max_length - 1) * (width - 1))
        )
        fraction = (value - low) / (high - low)
        fraction = min(max(fraction, 0.0), 1.0)
        row = (height - 1) - round(fraction * (height - 1))
        return row, column

    for marker, (name, values) in zip(_MARKERS, series.items()):
        for x_index, value in enumerate(values):
            row, column = cell(x_index, value)
            grid[row][column] = marker

    label_width = max(len(f"{high:.2f}"), len(f"{low:.2f}"))
    lines = []
    if title:
        lines.append(title)
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = f"{high:.2f}"
        elif row_index == height - 1:
            label = f"{low:.2f}"
        elif row_index == height // 2:
            label = f"{(high + low) / 2:.2f}"
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  x: 0 .. {max_length - 1}"
    )
    legend = "  ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series.keys())
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)
