"""Shared utilities: RNG handling, numerics, validation, serialisation.

These helpers are intentionally free of any simulator or RL concepts so
they can be used from every other subpackage without import cycles.
"""

from repro.utils.math import (
    clip,
    exponential_decay,
    huber_gradient,
    huber_loss,
    moving_average,
    softmax,
)
from repro.utils.rng import as_generator, spawn_generator
from repro.utils.serialization import (
    bytes_to_parameters,
    parameter_num_bytes,
    parameters_to_bytes,
)
from repro.utils.tables import format_table
from repro.utils.validation import (
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
)

__all__ = [
    "as_generator",
    "bytes_to_parameters",
    "clip",
    "exponential_decay",
    "format_table",
    "huber_gradient",
    "huber_loss",
    "moving_average",
    "parameter_num_bytes",
    "parameters_to_bytes",
    "require_in_range",
    "require_non_negative",
    "require_positive",
    "require_probability",
    "softmax",
    "spawn_generator",
]
