"""Regression losses with analytic gradients.

The paper trains the policy network as a regression model (Eq. (2))
using the Huber loss, "which penalizes small errors quadratically and
larger errors linearly" (Section III-C). Mean squared error is provided
as the textbook alternative for the loss ablation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.math import huber_gradient, huber_loss


class HuberLoss:
    """Mean Huber loss over a batch of scalar predictions."""

    def __init__(self, delta: float = 1.0) -> None:
        if delta <= 0.0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss across the batch."""
        residual = self._residual(predictions, targets)
        return float(np.mean(huber_loss(residual, self.delta)))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """d(mean loss)/d(predictions), same shape as ``predictions``."""
        residual = self._residual(predictions, targets)
        return huber_gradient(residual, self.delta) / residual.size

    def value_and_gradient(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Loss and gradient from one shared residual computation.

        The agent's update step needs both; computing them together
        halves the residual/branch work versus calling :meth:`value`
        and :meth:`gradient` separately, with bit-identical results.
        """
        residual = self._residual(predictions, targets)
        value = float(np.mean(huber_loss(residual, self.delta)))
        gradient = huber_gradient(residual, self.delta) / residual.size
        return value, gradient

    @staticmethod
    def _residual(predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape}, "
                f"targets {targets.shape}"
            )
        return predictions - targets


class MeanSquaredErrorLoss:
    """Mean squared error, kept for the loss-function ablation."""

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        residual = HuberLoss._residual(predictions, targets)
        return float(np.mean(residual**2))

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        residual = HuberLoss._residual(predictions, targets)
        return 2.0 * residual / residual.size

    def value_and_gradient(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> Tuple[float, np.ndarray]:
        """Loss and gradient from one shared residual computation."""
        residual = HuberLoss._residual(predictions, targets)
        return (
            float(np.mean(residual**2)),
            2.0 * residual / residual.size,
        )
