"""Weight initialisation schemes.

Each initialiser takes an output shape and a random generator and
returns a ``float64`` array. He initialisation is the default for the
ReLU network of the paper; Xavier is provided for the linear output
layer and for experimentation.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def he_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He (Kaiming) uniform initialisation, suited to ReLU activations.

    Samples uniformly from ``[-limit, limit]`` with
    ``limit = sqrt(6 / fan_in)``.
    """
    fan_in = _fan_in(shape)
    limit = np.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Xavier (Glorot) uniform initialisation, suited to linear layers.

    Samples uniformly from ``[-limit, limit]`` with
    ``limit = sqrt(6 / (fan_in + fan_out))``.
    """
    fan_in = _fan_in(shape)
    fan_out = shape[-1] if len(shape) >= 2 else shape[0]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float64)


def zeros(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """All-zero initialisation (biases)."""
    del rng  # deterministic; accepted for interface uniformity
    return np.zeros(shape, dtype=np.float64)


def _fan_in(shape: Tuple[int, ...]) -> int:
    if not shape:
        raise ValueError("cannot initialise a zero-dimensional parameter")
    if len(shape) == 1:
        return shape[0]
    return int(np.prod(shape[:-1]))
