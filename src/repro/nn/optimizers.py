"""Gradient-descent optimisers.

Both optimisers mutate the parameter arrays in place so that layers,
network and federated client all keep referring to the same storage.
Adam (Kingma & Ba, 2015) is the paper's optimiser (Section III-C); SGD
is retained for the optimiser ablation and for tests whose expected
update is easy to compute by hand.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.errors import PolicyError
from repro.utils.validation import require_in_range, require_positive


class SGD:
    """Plain stochastic gradient descent with optional momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        self.learning_rate = require_positive("learning_rate", learning_rate)
        self.momentum = require_in_range("momentum", momentum, 0.0, 1.0)
        self._velocity: List[np.ndarray] = []

    def step(
        self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
    ) -> None:
        """Apply one in-place update ``p -= lr * v`` to every parameter."""
        _check_aligned(parameters, gradients)
        if not self._velocity:
            self._velocity = [np.zeros_like(p) for p in parameters]
        for param, grad, velocity in zip(parameters, gradients, self._velocity):
            velocity *= self.momentum
            velocity += grad
            param -= self.learning_rate * velocity

    def reset(self) -> None:
        """Drop the momentum state (e.g. after a federated model swap)."""
        self._velocity = []


class Adam:
    """Adam optimiser with bias-corrected first/second moment estimates."""

    def __init__(
        self,
        learning_rate: float = 0.005,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = require_positive("learning_rate", learning_rate)
        self.beta1 = require_in_range("beta1", beta1, 0.0, 1.0, inclusive=False)
        self.beta2 = require_in_range("beta2", beta2, 0.0, 1.0, inclusive=False)
        self.epsilon = require_positive("epsilon", epsilon)
        self._step_count = 0
        self._first_moment: List[np.ndarray] = []
        self._second_moment: List[np.ndarray] = []

    @property
    def step_count(self) -> int:
        """Number of updates applied so far."""
        return self._step_count

    def step(
        self, parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
    ) -> None:
        """Apply one in-place Adam update to every parameter."""
        _check_aligned(parameters, gradients)
        if not self._first_moment:
            self._first_moment = [np.zeros_like(p) for p in parameters]
            self._second_moment = [np.zeros_like(p) for p in parameters]
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for param, grad, m, v in zip(
            parameters, gradients, self._first_moment, self._second_moment
        ):
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)

    def reset(self) -> None:
        """Drop moment estimates and the step counter.

        Called when the federated client replaces its local model with
        the freshly-broadcast global model: the old moments describe a
        different parameter trajectory.
        """
        self._step_count = 0
        self._first_moment = []
        self._second_moment = []


def _check_aligned(
    parameters: Sequence[np.ndarray], gradients: Sequence[np.ndarray]
) -> None:
    if len(parameters) != len(gradients):
        raise PolicyError(
            f"{len(parameters)} parameters but {len(gradients)} gradients"
        )
    for index, (param, grad) in enumerate(zip(parameters, gradients)):
        if param.shape != grad.shape:
            raise PolicyError(
                f"parameter {index} has shape {param.shape} but its gradient "
                f"has shape {grad.shape}"
            )
