"""Stacked per-device networks for the batched execution backend.

The batched backend (:mod:`repro.parallel.batched`) runs the whole
fleet's learning as a handful of numpy calls per control step instead
of a Python-level loop per device. The enabling data layout lives
here: every device's :class:`~repro.nn.network.MLP` parameters are
stacked along a leading device axis — weights become ``(D, in, out)``
arrays, biases ``(D, out)`` — so one ``np.matmul`` over the stack
replaces ``D`` small GEMMs, and the matching :class:`StackedAdam`
applies every device's update in one pass over the stacked moments.

Bit-identity contract
---------------------
The batched backend promises results bit-identical to serial. That
promise leans on two properties verified here:

* numpy's batched ``matmul``/``exp``/axis reductions produce exactly
  the same doubles as the equivalent per-device 2-D calls (checked at
  runtime by :func:`stacked_ops_bitexact`, and asserted by the test
  suite on every platform the tests run on);
* anything that is *not* reliably bit-equal is kept in scalar Python
  form. The one known offender is exponentiation: ``beta ** t`` via
  Python ``pow`` can differ in the last ulp from ``np.power``; the
  serial :class:`~repro.nn.optimizers.Adam` uses Python ``pow``, so
  :class:`StackedAdam` computes its per-device bias corrections in a
  scalar loop rather than vectorising them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PolicyError
from repro.nn.network import MLP
from repro.nn.optimizers import Adam


class StackedMLP:
    """``D`` identically-shaped MLPs stored as one array stack.

    Layer ``l`` holds ``weights[l]`` of shape ``(D, in_l, out_l)`` and
    ``biases[l]`` of shape ``(D, out_l)`` — row ``d`` is device ``d``'s
    parameter storage, laid out exactly like the per-device
    ``Linear.weight``/``Linear.bias`` arrays so rows copy straight in
    and out of :class:`~repro.nn.network.MLP` instances.
    """

    def __init__(self, layer_sizes: Sequence[int], num_devices: int) -> None:
        sizes = tuple(int(s) for s in layer_sizes)
        if len(sizes) < 2:
            raise PolicyError(
                f"a stacked MLP needs at least input and output sizes, got {sizes}"
            )
        if num_devices <= 0:
            raise PolicyError(
                f"num_devices must be positive, got {num_devices}"
            )
        self.layer_sizes: Tuple[int, ...] = sizes
        self.num_devices = int(num_devices)
        self.weights: List[np.ndarray] = [
            np.zeros((num_devices, fan_in, fan_out), dtype=np.float64)
            for fan_in, fan_out in zip(sizes[:-1], sizes[1:])
        ]
        self.biases: List[np.ndarray] = [
            np.zeros((num_devices, fan_out), dtype=np.float64)
            for fan_out in sizes[1:]
        ]
        # Reused forward/backward intermediates. The training arrays
        # are multi-megabyte at fleet scale; allocating them fresh every
        # update cycle costs more in mmap/page-fault churn than the
        # actual GEMMs (measured ~3x on the whole forward chain).
        # Writing into reused buffers via ``out=`` produces identical
        # doubles.
        self._scratch: dict = {}

    def _buf(
        self, key: str, shape: Tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        buffer = self._scratch.get(key)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._scratch[key] = buffer
        return buffer

    @property
    def num_layers(self) -> int:
        return len(self.weights)

    # -- row <-> per-device network transfer ---------------------------
    @classmethod
    def from_networks(cls, networks: Sequence[MLP]) -> "StackedMLP":
        """Stack the parameters of homogeneous per-device networks."""
        if not networks:
            raise PolicyError("from_networks needs at least one network")
        sizes = networks[0].layer_sizes
        for network in networks:
            if network.layer_sizes != sizes:
                raise PolicyError(
                    f"heterogeneous layer sizes: {network.layer_sizes} vs {sizes}"
                )
        stack = cls(sizes, len(networks))
        for row, network in enumerate(networks):
            stack.load_row(row, network)
        return stack

    def load_row(self, row: int, network: MLP) -> None:
        """Copy one device network's parameters into stack row ``row``."""
        params = network.parameters
        for layer, (weight, bias) in enumerate(
            zip(params[0::2], params[1::2])
        ):
            self.weights[layer][row, :, :] = weight
            self.biases[layer][row, :] = bias

    def store_row(self, row: int, network: MLP) -> None:
        """Copy stack row ``row`` back into a device network (in place)."""
        params = network.parameters
        for layer in range(self.num_layers):
            np.copyto(params[2 * layer], self.weights[layer][row])
            np.copyto(params[2 * layer + 1], self.biases[layer][row])

    def set_row_parameters(
        self, row: int, parameters: Sequence[np.ndarray]
    ) -> None:
        """Install a serial-format parameter list into one row.

        Mirrors :meth:`MLP.set_parameters` validation (including its
        error type) so the batched backend reports installation
        failures exactly like a serial actor would.
        """
        if len(parameters) != 2 * self.num_layers:
            raise PolicyError(
                f"expected {2 * self.num_layers} parameter arrays, "
                f"got {len(parameters)}"
            )
        for layer in range(self.num_layers):
            weight = np.asarray(parameters[2 * layer], dtype=np.float64)
            bias = np.asarray(parameters[2 * layer + 1], dtype=np.float64)
            if weight.shape != self.weights[layer].shape[1:]:
                raise PolicyError(
                    f"parameter shape mismatch: "
                    f"{self.weights[layer].shape[1:]} vs {weight.shape}"
                )
            if bias.shape != self.biases[layer].shape[1:]:
                raise PolicyError(
                    f"parameter shape mismatch: "
                    f"{self.biases[layer].shape[1:]} vs {bias.shape}"
                )
            self.weights[layer][row, :, :] = weight
            self.biases[layer][row, :] = bias

    def get_row_parameters(self, row: int) -> List[np.ndarray]:
        """Deep copies of one row in serial parameter-list order."""
        out: List[np.ndarray] = []
        for layer in range(self.num_layers):
            out.append(self.weights[layer][row].copy())
            out.append(self.biases[layer][row].copy())
        return out

    # -- stacked compute ----------------------------------------------
    def predict(
        self, states: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Per-device single-state forward: ``(E, F)`` -> ``(E, A)``.

        Row ``i`` of ``states`` runs through the network of device
        ``rows[i]`` (all devices when ``rows`` is ``None``). Produces
        the same doubles as each device's ``predict_single``.
        """
        x = states[:, None, :]
        last = self.num_layers - 1
        for layer in range(self.num_layers):
            weight = self.weights[layer]
            bias = self.biases[layer]
            if rows is not None:
                weight = weight[rows]
                bias = bias[rows]
            x = np.matmul(
                x,
                weight,
                out=self._buf(
                    f"pz{layer}", (x.shape[0], 1, weight.shape[-1])
                ),
            )
            x += bias[:, None, :]
            if layer < last:
                np.maximum(x, 0.0, out=x)
        return x[:, 0, :]

    def forward(
        self, inputs: np.ndarray, rows: Optional[np.ndarray]
    ) -> Tuple[np.ndarray, list]:
        """Training forward over batches: ``(E, B, F)`` -> ``(E, B, A)``.

        Returns the output and the per-layer caches ``(x, z)`` needed
        by :meth:`backward` (layer input and pre-activation output).
        ``rows is None`` means "all devices, in row order" and skips
        the gather copies of the parameter stacks.
        """
        caches = []
        x = inputs
        last = self.num_layers - 1
        for layer in range(self.num_layers):
            weight = self.weights[layer]
            bias = self.biases[layer]
            if rows is not None:
                weight = weight[rows]
                bias = bias[rows]
            z_shape = (x.shape[0], x.shape[1], weight.shape[-1])
            z = np.matmul(x, weight, out=self._buf(f"fz{layer}", z_shape))
            z += bias[:, None, :]
            caches.append((x, z))
            if layer < last:
                x = np.maximum(z, 0.0, out=self._buf(f"fa{layer}", z_shape))
            else:
                x = z
        return x, caches

    def backward(
        self, grad_output: np.ndarray, caches: list, rows: Optional[np.ndarray]
    ) -> List[np.ndarray]:
        """Stacked backprop; returns gradients in serial parameter order.

        ``grad_output`` is ``(E, B, A)``; the result list alternates
        weight gradients ``(E, in, out)`` and bias gradients
        ``(E, out)`` exactly like ``MLP.gradients`` does per device.
        The transposed-matmul forms used here produce the same doubles
        as the serial layers' ``x.T @ g`` / ``g @ W.T`` 2-D calls
        (covered by :func:`stacked_ops_bitexact`).
        """
        grads: List[np.ndarray] = [
            np.empty(0) for _ in range(2 * self.num_layers)
        ]
        grad = grad_output
        devices = grad_output.shape[0]
        for layer in range(self.num_layers - 1, -1, -1):
            x, _ = caches[layer]
            grads[2 * layer] = np.matmul(
                x.swapaxes(1, 2),
                grad,
                out=self._buf(
                    f"bw{layer}", (devices, x.shape[2], grad.shape[2])
                ),
            )
            grads[2 * layer + 1] = grad.sum(
                axis=1, out=self._buf(f"bb{layer}", (devices, grad.shape[2]))
            )
            if layer > 0:
                weight = self.weights[layer]
                if rows is not None:
                    weight = weight[rows]
                # Input gradient through this layer's weights, then the
                # preceding ReLU's mask — the same `grad * (input > 0)`
                # the serial ReLU layer applies to its cached input.
                # The matmul output is scratch, so the mask multiply can
                # run in place without changing any double.
                z_prev = caches[layer - 1][1]
                grad = np.matmul(
                    grad,
                    weight.swapaxes(1, 2),
                    out=self._buf(f"bi{layer}", z_prev.shape),
                )
                grad *= np.greater(
                    z_prev,
                    0.0,
                    out=self._buf(f"bm{layer}", z_prev.shape, dtype=np.bool_),
                )
        return grads


class StackedAdam:
    """Adam over stacked parameters with independent per-device state.

    Moment arrays mirror the :class:`StackedMLP` layout — one leading
    device axis over each serial parameter array — and ``step_counts``
    holds every device's private update counter. A device's rows
    evolve exactly as its own serial :class:`~repro.nn.optimizers.Adam`
    would: the bias corrections ``1 - beta ** t`` are computed with
    Python ``pow`` per device (vectorised ``np.power`` can differ in
    the last ulp), while the element-wise moment updates vectorise
    safely across the stack.
    """

    def __init__(
        self,
        parameter_shapes: Sequence[Tuple[int, ...]],
        num_devices: int,
        learning_rate: float = 0.005,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        self.learning_rate = float(learning_rate)
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.epsilon = float(epsilon)
        self.num_devices = int(num_devices)
        self._shapes = [tuple(shape) for shape in parameter_shapes]
        self._first_moment = [
            np.zeros((num_devices, *shape), dtype=np.float64)
            for shape in self._shapes
        ]
        self._second_moment = [
            np.zeros((num_devices, *shape), dtype=np.float64)
            for shape in self._shapes
        ]
        self.step_counts = np.zeros(num_devices, dtype=np.int64)
        # Reused element-wise temporaries for the all-devices step (two
        # per parameter stack); same doubles, no per-cycle allocations.
        self._scratch: dict = {}

    def _buf(self, key: str, shape: Tuple[int, ...]) -> np.ndarray:
        buffer = self._scratch.get(key)
        if buffer is None or buffer.shape != shape:
            buffer = np.empty(shape, dtype=np.float64)
            self._scratch[key] = buffer
        return buffer

    @classmethod
    def from_optimizers(
        cls,
        optimizers: Sequence[Adam],
        parameter_shapes: Sequence[Tuple[int, ...]],
    ) -> "StackedAdam":
        """Stack per-device Adam instances (hyperparameters must match)."""
        if not optimizers:
            raise PolicyError("from_optimizers needs at least one optimizer")
        first = optimizers[0]
        stack = cls(
            parameter_shapes,
            len(optimizers),
            learning_rate=first.learning_rate,
            beta1=first.beta1,
            beta2=first.beta2,
            epsilon=first.epsilon,
        )
        for row, optimizer in enumerate(optimizers):
            stack.load_row(row, optimizer)
        return stack

    # -- row <-> per-device optimizer transfer -------------------------
    def load_row(self, row: int, optimizer: Adam) -> None:
        """Adopt one device's Adam state into stack row ``row``."""
        self.step_counts[row] = optimizer.step_count
        if optimizer._first_moment:
            for index in range(len(self._shapes)):
                self._first_moment[index][row] = optimizer._first_moment[index]
                self._second_moment[index][row] = optimizer._second_moment[index]
        else:
            for index in range(len(self._shapes)):
                self._first_moment[index][row].fill(0.0)
                self._second_moment[index][row].fill(0.0)

    def store_row(self, row: int, optimizer: Adam) -> None:
        """Write stack row ``row`` back into a per-device Adam.

        A row that never stepped (count 0) restores the serial lazy
        state — empty moment lists — so a later ``reset()``/``step()``
        sequence behaves exactly as it would have under serial.
        """
        count = int(self.step_counts[row])
        optimizer._step_count = count
        if count == 0:
            optimizer._first_moment = []
            optimizer._second_moment = []
        else:
            optimizer._first_moment = [
                self._first_moment[index][row].copy()
                for index in range(len(self._shapes))
            ]
            optimizer._second_moment = [
                self._second_moment[index][row].copy()
                for index in range(len(self._shapes))
            ]

    def reset_rows(self, rows: Sequence[int]) -> None:
        """Per-device ``Adam.reset()``: drop moments and counters."""
        index = np.asarray(rows, dtype=np.int64)
        self.step_counts[index] = 0
        for first, second in zip(self._first_moment, self._second_moment):
            first[index] = 0.0
            second[index] = 0.0

    # -- stacked update ------------------------------------------------
    def step_rows(
        self,
        rows: Optional[np.ndarray],
        parameter_stacks: Sequence[np.ndarray],
        gradients: Sequence[np.ndarray],
    ) -> None:
        """One Adam update for every device in ``rows`` at once.

        ``parameter_stacks`` are the full ``StackedMLP`` arrays (in
        serial parameter order: weight, bias, weight, bias, ...);
        ``gradients[i]`` holds the gathered rows' gradients with shape
        ``(E, *parameter_shape)``. ``rows is None`` means every device
        in row order, which lets the moment updates run in place on the
        stacked state instead of gather/scatter copies (same doubles —
        identical element-wise arithmetic on identical values).
        """
        if rows is None:
            self.step_counts += 1
            counts = self.step_counts.tolist()
        else:
            self.step_counts[rows] += 1
            counts = self.step_counts[rows].tolist()
        # Python pow per device: matches serial `beta ** step_count`
        # bit-for-bit, which np.power does not guarantee.
        bias1 = np.array(
            [1.0 - self.beta1**count for count in counts], dtype=np.float64
        )
        bias2 = np.array(
            [1.0 - self.beta2**count for count in counts], dtype=np.float64
        )
        for index, (stack, grad) in enumerate(zip(parameter_stacks, gradients)):
            shape = (grad.shape[0],) + (1,) * (grad.ndim - 1)
            if rows is None:
                # In-place on the stacked moments with reused
                # temporaries: the exact serial expressions
                # ``beta*m + (1-beta)*g`` and
                # ``lr * m_hat / (sqrt(v_hat) + eps)`` evaluated in the
                # same operand order, just without fresh allocations.
                m = self._first_moment[index]
                v = self._second_moment[index]
                t = self._buf(f"t{index}", grad.shape)
                u = self._buf(f"u{index}", grad.shape)
                m *= self.beta1
                np.multiply(grad, 1.0 - self.beta1, out=t)
                m += t
                v *= self.beta2
                np.power(grad, 2, out=t)
                t *= 1.0 - self.beta2
                v += t
                np.divide(m, bias1.reshape(shape), out=u)
                u *= self.learning_rate
                np.divide(v, bias2.reshape(shape), out=t)
                np.sqrt(t, out=t)
                t += self.epsilon
                np.divide(u, t, out=u)
                stack -= u
            else:
                m = self._first_moment[index][rows]
                v = self._second_moment[index][rows]
                m *= self.beta1
                m += (1.0 - self.beta1) * grad
                v *= self.beta2
                v += (1.0 - self.beta2) * grad**2
                m_hat = m / bias1.reshape(shape)
                v_hat = v / bias2.reshape(shape)
                update = (
                    self.learning_rate
                    * m_hat
                    / (np.sqrt(v_hat) + self.epsilon)
                )
                self._first_moment[index][rows] = m
                self._second_moment[index][rows] = v
                stack[rows] -= update


_BITEXACT_CACHE: Optional[bool] = None


def stacked_ops_bitexact() -> bool:
    """Whether this BLAS/numpy build keeps stacked ops bit-equal.

    Probes every stacked primitive the batched backend relies on
    against its per-device 2-D form: forward/backward ``matmul``
    (including the transposed variants), ``exp`` over a 2-D array,
    axis-1 ``max``/``sum``/``mean``/``cumsum`` and the 3-D axis-1
    ``sum`` used for bias gradients. The result is cached; the batched
    backend refuses to group devices when the probe fails, falling
    back to the serial per-device path so results stay correct (just
    not fast) on exotic BLAS builds.
    """
    global _BITEXACT_CACHE
    if _BITEXACT_CACHE is not None:
        return _BITEXACT_CACHE
    rng = np.random.default_rng(20260808)
    ok = True
    for batch in (1, 7):
        x = rng.normal(size=(5, batch, 6)) * 3.0
        w = rng.normal(size=(5, 6, 4))
        g = rng.normal(size=(5, batch, 4))
        stacked = np.matmul(x, w)
        weight_grad = np.matmul(x.swapaxes(1, 2), g)
        input_grad = np.matmul(g, w.swapaxes(1, 2))
        for row in range(x.shape[0]):
            ok &= bool((stacked[row] == x[row] @ w[row]).all())
            ok &= bool((weight_grad[row] == x[row].T @ g[row]).all())
            ok &= bool((input_grad[row] == g[row] @ w[row].T).all())
            ok &= bool((g.sum(axis=1)[row] == g[row].sum(axis=0)).all())
    values = rng.normal(size=(9, 15)) * 40.0
    ok &= bool((np.exp(values) == np.stack([np.exp(v) for v in values])).all())
    ok &= bool(
        (values.max(axis=1) == np.array([v.max() for v in values])).all()
    )
    ok &= bool(
        (values.sum(axis=1) == np.array([v.sum() for v in values])).all()
    )
    ok &= bool(
        (values.mean(axis=1) == np.array([v.mean() for v in values])).all()
    )
    ok &= bool(
        (
            np.cumsum(values, axis=1)
            == np.stack([np.cumsum(v) for v in values])
        ).all()
    )
    _BITEXACT_CACHE = ok
    return ok
