"""Multi-layer perceptron container.

The paper's policy network (Table I) is an MLP with one hidden layer of
32 ReLU neurons mapping the 5-feature processor state to one expected
reward per V/f level. :class:`MLP` generalises that to any stack of
dense layers so the ablation experiments can vary depth and width.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PolicyError
from repro.nn.initializers import he_uniform, xavier_uniform
from repro.nn.layers import Identity, Layer, Linear, ReLU
from repro.utils.rng import SeedLike, as_generator


class MLP:
    """Fully-connected network with ReLU hidden activations.

    Parameters
    ----------
    layer_sizes:
        Feature counts from input to output, e.g. ``(5, 32, 15)`` for
        the paper's network (5 state features, 32 hidden neurons, 15
        V/f levels).
    seed:
        Seed or generator for weight initialisation.
    """

    def __init__(self, layer_sizes: Sequence[int], seed: SeedLike = None) -> None:
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2:
            raise PolicyError(
                f"an MLP needs at least input and output sizes, got {sizes}"
            )
        if any(s <= 0 for s in sizes):
            raise PolicyError(f"layer sizes must be positive, got {sizes}")
        rng = as_generator(seed)
        self.layer_sizes: Tuple[int, ...] = tuple(sizes)
        self._layers: List[Layer] = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            is_output = index == len(sizes) - 2
            init = xavier_uniform if is_output else he_uniform
            self._layers.append(Linear(fan_in, fan_out, rng, weight_init=init))
            self._layers.append(Identity() if is_output else ReLU())
        # The layer stack is immutable after construction, so the
        # flattened parameter/gradient views and the single-step
        # buffers are built exactly once. The arrays themselves stay
        # live (set_parameters copies *into* them), so these caches
        # never go stale.
        self._parameters: List[np.ndarray] = []
        self._gradients: List[np.ndarray] = []
        for layer in self._layers:
            self._parameters.extend(layer.parameters)
            self._gradients.extend(layer.gradients)
        self._linears: List[Linear] = [
            layer for layer in self._layers if isinstance(layer, Linear)
        ]
        # (weights, bias, apply_relu, output buffer) per dense layer for
        # the fused single-state path; every buffer is preallocated so
        # predict_single performs zero heap allocations per call beyond
        # the final defensive copy.
        self._fused = [
            (
                layer.weight,
                layer.bias,
                index < len(self._linears) - 1,
                np.empty((1, layer.out_features), dtype=np.float64),
            )
            for index, layer in enumerate(self._linears)
        ]
        self._input_buffer = np.empty((1, sizes[0]), dtype=np.float64)

    @property
    def in_features(self) -> int:
        return self.layer_sizes[0]

    @property
    def out_features(self) -> int:
        return self.layer_sizes[-1]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run a batch ``(batch, in_features)`` through the network."""
        output = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        for layer in self._layers:
            output = layer.forward(output)
        return output

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass for a single state vector; returns a 1-D array."""
        return self.predict_single(inputs)

    def predict_single(self, inputs: np.ndarray) -> np.ndarray:
        """Fused single-state forward pass (the control hot path).

        Numerically identical to ``forward(inputs[None, :])[0]`` but
        runs through preallocated per-layer buffers with in-place bias
        add and ReLU, so the per-control-step ``act``/``act_greedy``
        calls allocate nothing per layer. Unlike :meth:`forward` it
        does not populate the layers' backward caches — training always
        goes through the batched :meth:`forward`/:meth:`backward` pair.
        """
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 1:
            raise PolicyError(
                f"predict expects a single state vector, got shape {inputs.shape}"
            )
        if inputs.shape[0] != self.layer_sizes[0]:
            raise PolicyError(
                f"expected {self.layer_sizes[0]} input features, "
                f"got {inputs.shape[0]}"
            )
        self._input_buffer[0, :] = inputs
        x = self._input_buffer
        for weight, bias, apply_relu, buffer in self._fused:
            np.matmul(x, weight, out=buffer)
            buffer += bias
            if apply_relu:
                np.maximum(buffer, 0.0, out=buffer)
            x = buffer
        # Copy out: the buffer is reused by the next call, and callers
        # (policies, analysis code) are allowed to keep the result.
        return x[0].copy()

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``dLoss/dOutput``; returns ``dLoss/dInput``.

        Parameter gradients accumulate in each layer until
        :meth:`zero_gradients` is called, enabling gradient-accumulation
        update schemes.
        """
        grad = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        for layer in reversed(self._layers):
            grad = layer.backward(grad)
        return grad

    @property
    def parameters(self) -> List[np.ndarray]:
        """Live views of every trainable array (optimisers mutate these).

        Cached at construction — the layer stack is immutable — so the
        per-update ``Adam.step``/``zero_gradients`` calls no longer
        rebuild Python lists on every property access.
        """
        return self._parameters

    @property
    def gradients(self) -> List[np.ndarray]:
        """Accumulated gradients aligned with :attr:`parameters` (cached)."""
        return self._gradients

    def zero_gradients(self) -> None:
        """Reset all accumulated gradients to zero."""
        for grad in self._gradients:
            grad.fill(0.0)

    def parameter_shapes(self) -> List[Tuple[int, ...]]:
        """Shapes of :attr:`parameters`, used for deserialisation."""
        return [p.shape for p in self.parameters]

    def get_parameters(self) -> List[np.ndarray]:
        """Deep copies of the parameters (safe to ship to a server)."""
        return [p.copy() for p in self.parameters]

    def set_parameters(self, new_parameters: Sequence[np.ndarray]) -> None:
        """Overwrite the network parameters in place.

        The storage identity of each array is preserved so optimiser
        state and layer references stay valid.
        """
        current = self.parameters
        if len(new_parameters) != len(current):
            raise PolicyError(
                f"expected {len(current)} parameter arrays, "
                f"got {len(new_parameters)}"
            )
        for target, source in zip(current, new_parameters):
            source = np.asarray(source, dtype=np.float64)
            if target.shape != source.shape:
                raise PolicyError(
                    f"parameter shape mismatch: {target.shape} vs {source.shape}"
                )
            np.copyto(target, source)

    def clone(self, seed: SeedLike = None) -> "MLP":
        """A new network with the same architecture and copied weights."""
        other = MLP(self.layer_sizes, seed=as_generator(seed))
        other.set_parameters(self.get_parameters())
        return other

    def num_parameters(self) -> int:
        """Total scalar parameter count (687 for the paper's network)."""
        return sum(int(np.prod(p.shape)) for p in self.parameters)
