"""Multi-layer perceptron container.

The paper's policy network (Table I) is an MLP with one hidden layer of
32 ReLU neurons mapping the 5-feature processor state to one expected
reward per V/f level. :class:`MLP` generalises that to any stack of
dense layers so the ablation experiments can vary depth and width.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import PolicyError
from repro.nn.initializers import he_uniform, xavier_uniform
from repro.nn.layers import Identity, Layer, Linear, ReLU
from repro.utils.rng import SeedLike, as_generator


class MLP:
    """Fully-connected network with ReLU hidden activations.

    Parameters
    ----------
    layer_sizes:
        Feature counts from input to output, e.g. ``(5, 32, 15)`` for
        the paper's network (5 state features, 32 hidden neurons, 15
        V/f levels).
    seed:
        Seed or generator for weight initialisation.
    """

    def __init__(self, layer_sizes: Sequence[int], seed: SeedLike = None) -> None:
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2:
            raise PolicyError(
                f"an MLP needs at least input and output sizes, got {sizes}"
            )
        if any(s <= 0 for s in sizes):
            raise PolicyError(f"layer sizes must be positive, got {sizes}")
        rng = as_generator(seed)
        self.layer_sizes: Tuple[int, ...] = tuple(sizes)
        self._layers: List[Layer] = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            is_output = index == len(sizes) - 2
            init = xavier_uniform if is_output else he_uniform
            self._layers.append(Linear(fan_in, fan_out, rng, weight_init=init))
            self._layers.append(Identity() if is_output else ReLU())

    @property
    def in_features(self) -> int:
        return self.layer_sizes[0]

    @property
    def out_features(self) -> int:
        return self.layer_sizes[-1]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Run a batch ``(batch, in_features)`` through the network."""
        output = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        for layer in self._layers:
            output = layer.forward(output)
        return output

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass for a single state vector; returns a 1-D array."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 1:
            raise PolicyError(
                f"predict expects a single state vector, got shape {inputs.shape}"
            )
        return self.forward(inputs[np.newaxis, :])[0]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``dLoss/dOutput``; returns ``dLoss/dInput``.

        Parameter gradients accumulate in each layer until
        :meth:`zero_gradients` is called, enabling gradient-accumulation
        update schemes.
        """
        grad = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        for layer in reversed(self._layers):
            grad = layer.backward(grad)
        return grad

    @property
    def parameters(self) -> List[np.ndarray]:
        """Live views of every trainable array (optimisers mutate these)."""
        params: List[np.ndarray] = []
        for layer in self._layers:
            params.extend(layer.parameters)
        return params

    @property
    def gradients(self) -> List[np.ndarray]:
        """Accumulated gradients aligned with :attr:`parameters`."""
        grads: List[np.ndarray] = []
        for layer in self._layers:
            grads.extend(layer.gradients)
        return grads

    def zero_gradients(self) -> None:
        """Reset all accumulated gradients to zero."""
        for layer in self._layers:
            layer.zero_gradients()

    def parameter_shapes(self) -> List[Tuple[int, ...]]:
        """Shapes of :attr:`parameters`, used for deserialisation."""
        return [p.shape for p in self.parameters]

    def get_parameters(self) -> List[np.ndarray]:
        """Deep copies of the parameters (safe to ship to a server)."""
        return [p.copy() for p in self.parameters]

    def set_parameters(self, new_parameters: Sequence[np.ndarray]) -> None:
        """Overwrite the network parameters in place.

        The storage identity of each array is preserved so optimiser
        state and layer references stay valid.
        """
        current = self.parameters
        if len(new_parameters) != len(current):
            raise PolicyError(
                f"expected {len(current)} parameter arrays, "
                f"got {len(new_parameters)}"
            )
        for target, source in zip(current, new_parameters):
            source = np.asarray(source, dtype=np.float64)
            if target.shape != source.shape:
                raise PolicyError(
                    f"parameter shape mismatch: {target.shape} vs {source.shape}"
                )
            np.copyto(target, source)

    def clone(self, seed: SeedLike = None) -> "MLP":
        """A new network with the same architecture and copied weights."""
        other = MLP(self.layer_sizes, seed=as_generator(seed))
        other.set_parameters(self.get_parameters())
        return other

    def num_parameters(self) -> int:
        """Total scalar parameter count (687 for the paper's network)."""
        return sum(int(np.prod(p.shape)) for p in self.parameters)
