"""Differentiable layers for the policy network.

Layers follow a simple forward/backward protocol operating on batches
shaped ``(batch, features)``:

* ``forward(x)`` computes the output and caches whatever the backward
  pass needs.
* ``backward(grad_output)`` consumes the gradient of the loss with
  respect to the layer output, accumulates parameter gradients into
  ``layer.gradients`` and returns the gradient with respect to the
  layer input.

Parameters and gradients are exposed as lists of arrays so that the
optimisers and the federated-averaging code can treat every layer
uniformly.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.errors import PolicyError
from repro.nn.initializers import he_uniform, zeros


class Layer:
    """Base class defining the forward/backward protocol."""

    @property
    def parameters(self) -> List[np.ndarray]:
        """Trainable arrays of this layer (empty for activations)."""
        return []

    @property
    def gradients(self) -> List[np.ndarray]:
        """Accumulated gradients, aligned with :attr:`parameters`."""
        return []

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def zero_gradients(self) -> None:
        for grad in self.gradients:
            grad.fill(0.0)


class Linear(Layer):
    """Fully-connected layer ``y = x @ W + b``.

    Weights are shaped ``(in_features, out_features)``; the bias is a
    vector of length ``out_features``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: np.random.Generator,
        weight_init: Callable[[Tuple[int, ...], np.random.Generator], np.ndarray] = he_uniform,
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise PolicyError(
                f"layer dimensions must be positive, got {in_features}x{out_features}"
            )
        self.in_features = in_features
        self.out_features = out_features
        self.weight = weight_init((in_features, out_features), rng)
        self.bias = zeros((out_features,), rng)
        self._weight_grad = np.zeros_like(self.weight)
        self._bias_grad = np.zeros_like(self.bias)
        self._last_input: Optional[np.ndarray] = None

    @property
    def parameters(self) -> List[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def gradients(self) -> List[np.ndarray]:
        return [self._weight_grad, self._bias_grad]

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.atleast_2d(np.asarray(inputs, dtype=np.float64))
        if inputs.shape[1] != self.in_features:
            raise PolicyError(
                f"expected {self.in_features} input features, got {inputs.shape[1]}"
            )
        self._last_input = inputs
        return inputs @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise PolicyError("backward called before forward")
        grad_output = np.atleast_2d(np.asarray(grad_output, dtype=np.float64))
        self._weight_grad += self._last_input.T @ grad_output
        self._bias_grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.T


class ReLU(Layer):
    """Rectified linear activation, the paper's hidden non-linearity."""

    def __init__(self) -> None:
        self._last_input: Optional[np.ndarray] = None

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        inputs = np.asarray(inputs, dtype=np.float64)
        self._last_input = inputs
        return np.maximum(inputs, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._last_input is None:
            raise PolicyError("backward called before forward")
        return np.asarray(grad_output, dtype=np.float64) * (self._last_input > 0.0)


class Identity(Layer):
    """No-op activation for the linear output head."""

    def forward(self, inputs: np.ndarray) -> np.ndarray:
        return np.asarray(inputs, dtype=np.float64)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return np.asarray(grad_output, dtype=np.float64)
