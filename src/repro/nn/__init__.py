"""Minimal from-scratch neural-network stack (numpy only).

Implements exactly what the paper's power controller needs — a small
multi-layer perceptron trained as a regression model with gradient
descent (Section III-A): dense layers, ReLU, Huber/MSE losses, SGD and
Adam optimisers, and deterministic weight initialisation. Parameters are
plain ``numpy`` arrays so federated averaging is a direct arithmetic
mean over them.
"""

from repro.nn.initializers import he_uniform, xavier_uniform, zeros
from repro.nn.layers import Identity, Linear, ReLU
from repro.nn.losses import HuberLoss, MeanSquaredErrorLoss
from repro.nn.network import MLP
from repro.nn.optimizers import SGD, Adam

__all__ = [
    "Adam",
    "HuberLoss",
    "Identity",
    "Linear",
    "MLP",
    "MeanSquaredErrorLoss",
    "ReLU",
    "SGD",
    "he_uniform",
    "xavier_uniform",
    "zeros",
]
