"""Power controllers.

Everything that can drive the DVFS knob of a
:class:`~repro.sim.device.DeviceEnvironment` lives here behind one
interface (:class:`~repro.control.base.PowerController`):

* :class:`~repro.control.neural.NeuralPowerController` — the paper's
  contribution (Algorithm 1 wired to the Eq. 4 reward).
* :class:`~repro.control.profit.ProfitController` and
  :class:`~repro.control.profit.CollabProfitController` — the tabular
  state-of-the-art baseline and its collaborative extension.
* :mod:`~repro.control.governors` — non-learning OS-style governors
  for context (performance, powersave, userspace, ondemand, and a
  reactive power-capping governor).

:class:`~repro.control.runtime.ControlSession` drives any controller
through the observe → act → reward loop, records traces, and measures
the controller's own decision latency for the overhead analysis.
"""

from repro.control.base import PowerController
from repro.control.governors import (
    ConservativeGovernor,
    OndemandGovernor,
    PerformanceGovernor,
    PowerCapGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
)
from repro.control.neural import NeuralPowerController, build_neural_controller
from repro.control.profit import (
    CollabProfitController,
    ProfitController,
    build_profit_controller,
)
from repro.control.runtime import ControlSession

__all__ = [
    "CollabProfitController",
    "ConservativeGovernor",
    "ControlSession",
    "NeuralPowerController",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowerCapGovernor",
    "PowerController",
    "PowersaveGovernor",
    "ProfitController",
    "UserspaceGovernor",
    "build_neural_controller",
    "build_profit_controller",
]
