"""Non-learning OS-style frequency governors.

The paper motivates learned control by noting that "the frequency
controllers implemented in modern operating systems mostly ignore
application-specific characteristics" (Section I). These
baselines make that concrete for the governor-comparison ablation:

* ``performance`` / ``powersave`` / ``userspace`` — the classic static
  Linux cpufreq policies.
* ``ondemand`` — load-driven stepping. Our single-core workload never
  idles, so its sampled load is saturated and it ramps to the maximum
  level, exactly as Linux's ondemand does on a busy core — and exactly
  why it blows through a 0.6 W budget on compute-dense phases.
* :class:`PowerCapGovernor` — a reactive feedback capper (in the
  spirit of RAPL-style limiting): step down when measured power
  exceeds the budget, step up when there is headroom. The strongest
  non-learning baseline, but purely reactive — it cannot anticipate
  workload phases the way the learned policies do.

All governors score intervals with the paper's Eq. 4 reward so traces
remain comparable with the learned controllers.
"""

from __future__ import annotations

from repro.control.base import PowerController
from repro.rl.rewards import PowerEfficiencyReward
from repro.sim.opp import OPPTable
from repro.sim.processor import ProcessorSnapshot
from repro.utils.validation import require_in_range, require_positive


class _GovernorBase(PowerController):
    """Shared reward plumbing for governors."""

    def __init__(self, opp_table: OPPTable, power_limit_w: float = 0.6) -> None:
        self.opp_table = opp_table
        self._reward = PowerEfficiencyReward(
            max_frequency_hz=opp_table.max_frequency_hz,
            power_limit_w=power_limit_w,
        )

    def compute_reward(self, snapshot: ProcessorSnapshot) -> float:
        return self._reward(snapshot.frequency_hz, snapshot.power_w)


class PerformanceGovernor(_GovernorBase):
    """Always the highest V/f level."""

    name = "performance"

    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        return self.opp_table.num_levels - 1


class PowersaveGovernor(_GovernorBase):
    """Always the lowest V/f level."""

    name = "powersave"

    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        return 0


class UserspaceGovernor(_GovernorBase):
    """A fixed, user-chosen V/f level."""

    name = "userspace"

    def __init__(
        self, opp_table: OPPTable, level: int, power_limit_w: float = 0.6
    ) -> None:
        super().__init__(opp_table, power_limit_w)
        opp_table[level]  # validates
        self.level = level

    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        return self.level


class OndemandGovernor(_GovernorBase):
    """Load-driven stepping (Linux ondemand).

    Load is the busy fraction of the sampling window. The simulated
    core executes instructions every cycle it is not memory-stalled and
    never idles, so load is pinned at 1.0; the governor consequently
    jumps to the top level and stays there (``up_threshold`` exceeded),
    demonstrating the power-obliviousness of utilisation-based DVFS.
    """

    name = "ondemand"

    def __init__(
        self,
        opp_table: OPPTable,
        power_limit_w: float = 0.6,
        up_threshold: float = 0.8,
        down_step: int = 1,
    ) -> None:
        super().__init__(opp_table, power_limit_w)
        self.up_threshold = require_in_range("up_threshold", up_threshold, 0.0, 1.0)
        if down_step < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"down_step must be >= 1, got {down_step}")
        self.down_step = down_step
        self._level = 0

    @staticmethod
    def _load(snapshot: ProcessorSnapshot) -> float:
        # The core retired instructions throughout the interval: busy.
        return 1.0 if snapshot.instructions > 0 else 0.0

    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        load = self._load(snapshot)
        if load > self.up_threshold:
            self._level = self.opp_table.num_levels - 1
        else:
            self._level = max(0, self._level - self.down_step)
        return self._level


class ConservativeGovernor(_GovernorBase):
    """Gradual load-driven stepping (Linux conservative).

    Like ``ondemand`` but moves one step at a time instead of jumping
    to the maximum. On our never-idle workload it still ramps to the
    top level — just linearly over ``K`` intervals — so it, too, ends
    up violating the budget on compute-dense phases; the ramp merely
    delays the violation.
    """

    name = "conservative"

    def __init__(
        self,
        opp_table: OPPTable,
        power_limit_w: float = 0.6,
        up_threshold: float = 0.8,
        down_threshold: float = 0.2,
        step: int = 1,
    ) -> None:
        super().__init__(opp_table, power_limit_w)
        self.up_threshold = require_in_range("up_threshold", up_threshold, 0.0, 1.0)
        self.down_threshold = require_in_range(
            "down_threshold", down_threshold, 0.0, up_threshold
        )
        if step < 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"step must be >= 1, got {step}")
        self.step = step
        self._level = 0

    @property
    def level(self) -> int:
        return self._level

    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        load = 1.0 if snapshot.instructions > 0 else 0.0
        if load > self.up_threshold:
            self._level = min(self.opp_table.num_levels - 1, self._level + self.step)
        elif load < self.down_threshold:
            self._level = max(0, self._level - self.step)
        return self._level


class PowerCapGovernor(_GovernorBase):
    """Reactive power capping: step against the measured power error."""

    name = "powercap"

    def __init__(
        self,
        opp_table: OPPTable,
        power_limit_w: float = 0.6,
        headroom_w: float = 0.05,
        start_level: int = 0,
    ) -> None:
        super().__init__(opp_table, power_limit_w)
        self.power_limit_w = require_positive("power_limit_w", power_limit_w)
        self.headroom_w = require_positive("headroom_w", headroom_w)
        opp_table[start_level]  # validates
        self._level = start_level

    @property
    def level(self) -> int:
        return self._level

    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        if snapshot.power_w > self.power_limit_w:
            self._level = max(0, self._level - 1)
        elif snapshot.power_w < self.power_limit_w - self.headroom_w:
            self._level = min(self.opp_table.num_levels - 1, self._level + 1)
        return self._level
