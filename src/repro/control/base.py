"""The power-controller interface.

Every controller — learning or not — implements the same three-phase
protocol per control interval, mirroring the loop of Algorithm 1:

1. :meth:`PowerController.select_action` — choose a V/f level from the
   last observed processor snapshot (exploring if training).
2. The caller applies the action and runs one interval, producing the
   *next* snapshot.
3. :meth:`PowerController.compute_reward` scores that next snapshot and
   :meth:`PowerController.learn` feeds the ``(s_t, a_t, r_t)`` triple
   back into the learner (a no-op for governors).

Keeping the loop outside the controller lets one driver
(:class:`~repro.control.runtime.ControlSession`) serve training,
evaluation and every baseline identically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.sim.processor import ProcessorSnapshot


class PowerController(ABC):
    """Abstract DVFS decision-maker."""

    #: Human-readable controller name for traces and result tables.
    name: str = "controller"

    @abstractmethod
    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        """Choose the V/f index for the next interval.

        ``explore=False`` requests pure exploitation (the evaluation
        protocol of Section IV-A).
        """

    @abstractmethod
    def compute_reward(self, snapshot: ProcessorSnapshot) -> float:
        """Score the interval that just completed under this action."""

    def learn(
        self, snapshot: ProcessorSnapshot, action: int, reward: float
    ) -> None:
        """Consume the ``(state, action, reward)`` feedback.

        ``snapshot`` is the observation *before* the action (``s_t``).
        Non-learning controllers inherit this no-op.
        """

    @property
    def is_learning(self) -> bool:
        """Whether :meth:`learn` does anything (False for governors)."""
        return type(self).learn is not PowerController.learn
