"""The control-loop driver.

:class:`ControlSession` runs any :class:`~repro.control.base.PowerController`
against a :class:`~repro.sim.device.DeviceEnvironment` for a number of
control intervals, producing :class:`~repro.sim.trace.StepRecord` rows.
The same driver serves federated training rounds (``train=True`` with
schedule switching), local-only training, evaluation passes
(``train=False`` on a pinned application, greedy policy) and governor
baselines.

It also measures the *controller's own* decision latency with a
wall-clock timer around ``select_action``/``learn`` — the quantity the
paper reports as 29 ms against the 500 ms control interval
(Section IV-C).
"""

from __future__ import annotations

import logging
import time
from typing import List, Optional

from repro.control.base import PowerController
from repro.errors import SimulationError
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.sim.device import DeviceEnvironment
from repro.sim.processor import ProcessorSnapshot
from repro.sim.trace import StepRecord, TraceRecorder

_LOG = get_logger("control")


class ControlSession:
    """One controller attached to one device environment."""

    def __init__(
        self,
        environment: DeviceEnvironment,
        controller: PowerController,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.environment = environment
        self.controller = controller
        self.trace = trace if trace is not None else TraceRecorder()
        self.metrics = metrics
        self._snapshot: Optional[ProcessorSnapshot] = None
        self._global_step = 0
        self._decision_time_s = 0.0
        self._decision_count = 0

    @property
    def started(self) -> bool:
        return self._snapshot is not None

    @property
    def global_step(self) -> int:
        """Control intervals executed across all calls."""
        return self._global_step

    @property
    def current_snapshot(self) -> Optional[ProcessorSnapshot]:
        return self._snapshot

    def start(self, application_name: Optional[str] = None) -> ProcessorSnapshot:
        """(Re)initialise the environment and warm up the counters."""
        self._snapshot = self.environment.reset(application_name)
        return self._snapshot

    def run_steps(
        self,
        num_steps: int,
        round_index: int = 0,
        train: bool = True,
        record: bool = True,
    ) -> List[StepRecord]:
        """Run ``num_steps`` control intervals.

        ``train=True`` explores and feeds rewards back into the
        controller; ``train=False`` exploits greedily and never
        updates, matching the paper's evaluation protocol.
        """
        if num_steps <= 0:
            raise SimulationError(f"num_steps must be positive, got {num_steps}")
        if self._snapshot is None:
            self.start()
        assert self._snapshot is not None

        decision_time_before = self._decision_time_s
        records: List[StepRecord] = []
        for _ in range(num_steps):
            before = self._snapshot

            decision_start = time.perf_counter()
            action = self.controller.select_action(before, explore=train)
            self._decision_time_s += time.perf_counter() - decision_start
            self._decision_count += 1

            after = self.environment.step(action)
            reward = self.controller.compute_reward(after)

            if train:
                learn_start = time.perf_counter()
                self.controller.learn(before, action, reward)
                self._decision_time_s += time.perf_counter() - learn_start

            record_row = StepRecord(
                step=self._global_step,
                device=self.environment.device.name,
                application=after.application,
                action_index=action,
                frequency_hz=after.frequency_hz,
                power_w=after.power_w,
                ipc=after.ipc,
                mpki=after.mpki,
                miss_rate=after.miss_rate,
                ips=after.ips,
                reward=reward,
                round_index=round_index,
                temperature_c=after.temperature_c,
            )
            records.append(record_row)
            if record:
                self.trace.record(record_row)

            self._snapshot = after
            self._global_step += 1

        # Metric emission happens once per call, not per step, so an
        # attached registry cannot slow the control loop itself down.
        if self.metrics is not None:
            self.metrics.inc("control.steps", num_steps)
            self.metrics.observe(
                "control.decision_latency_s",
                (self._decision_time_s - decision_time_before) / num_steps,
            )
            self.metrics.observe(
                "control.mean_step_reward",
                sum(record.reward for record in records) / num_steps,
            )
        if _LOG.isEnabledFor(logging.DEBUG):
            _LOG.debug(
                "ran control steps",
                extra={
                    "device": self.environment.device.name,
                    "steps": num_steps,
                    "round": round_index,
                    "train": train,
                    "global_step": self._global_step,
                },
            )
        return records

    def mean_decision_latency_s(self) -> float:
        """Average controller compute time per interval (Section IV-C)."""
        if self._decision_count == 0:
            raise SimulationError("no control steps executed yet")
        return self._decision_time_s / self._decision_count
