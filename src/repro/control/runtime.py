"""The control-loop driver.

:class:`ControlSession` runs any :class:`~repro.control.base.PowerController`
against a :class:`~repro.sim.device.DeviceEnvironment` for a number of
control intervals, producing :class:`~repro.sim.trace.StepRecord` rows.
The same driver serves federated training rounds (``train=True`` with
schedule switching), local-only training, evaluation passes
(``train=False`` on a pinned application, greedy policy) and governor
baselines.

It also measures the *controller's own* decision latency with a
wall-clock timer around ``select_action``/``learn`` — the quantity the
paper reports as 29 ms against the 500 ms control interval
(Section IV-C).

Observability: beyond the per-call :class:`MetricsRegistry` emission,
the session can carry a :class:`~repro.obs.flight.FlightRecorder`
(one structured record per control step — state features, chosen OPP,
exploration flag, reward, running ``P_crit`` violation count, thermal
state, agent loss on update steps) and a
:class:`~repro.obs.profile.ScopeProfiler` that attributes wall-time to
``control.act`` / ``control.learn`` / ``sim.step``. Both follow the
:mod:`repro.obs` contract: unattached, each costs one ``None`` check.
"""

from __future__ import annotations

import logging
import time
from typing import List, Optional

from repro.control.base import PowerController
from repro.errors import SimulationError
from repro.obs.flight import FlightRecord, FlightRecorder
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ScopeProfiler
from repro.sim.device import DeviceEnvironment
from repro.sim.processor import ProcessorSnapshot
from repro.sim.trace import StepRecord, TraceRecorder

_LOG = get_logger("control")


def infer_power_limit_w(controller: PowerController) -> Optional[float]:
    """Best-effort ``P_crit`` of a controller, or ``None``.

    Learning controllers carry it on their reward function
    (``controller.reward.power_limit_w``); governors expose it directly
    (``controller.power_limit_w``). Controllers without a power budget
    simply record no violations.
    """
    reward = getattr(controller, "reward", None)
    limit = getattr(reward, "power_limit_w", None)
    if limit is None:
        limit = getattr(controller, "power_limit_w", None)
    return float(limit) if limit is not None else None


class ControlSession:
    """One controller attached to one device environment."""

    def __init__(
        self,
        environment: DeviceEnvironment,
        controller: PowerController,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        flight: Optional[FlightRecorder] = None,
        profiler: Optional[ScopeProfiler] = None,
        power_limit_w: Optional[float] = None,
        events=None,
    ) -> None:
        self.environment = environment
        self.controller = controller
        self.trace = trace if trace is not None else TraceRecorder()
        self.metrics = metrics
        self.flight = flight
        self.profiler = profiler
        self.events = events
        self.power_limit_w = (
            power_limit_w
            if power_limit_w is not None
            else infer_power_limit_w(controller)
        )
        self._snapshot: Optional[ProcessorSnapshot] = None
        self._global_step = 0
        self._decision_time_s = 0.0
        self._decision_count = 0
        self._violation_count = 0
        # Guard transitions recorded before this session existed (e.g.
        # a controller restored from a checkpoint) are not re-emitted.
        self._transitions_emitted = getattr(
            controller, "transitions_total", 0
        )

    @property
    def started(self) -> bool:
        return self._snapshot is not None

    @property
    def global_step(self) -> int:
        """Control intervals executed across all calls."""
        return self._global_step

    @property
    def power_violation_count(self) -> int:
        """Intervals (so far) whose measured power exceeded ``P_crit``.

        Tracked only while a flight recorder is attached — the
        uninstrumented hot loop stays a single ``None`` check.
        """
        return self._violation_count

    @property
    def current_snapshot(self) -> Optional[ProcessorSnapshot]:
        return self._snapshot

    def start(self, application_name: Optional[str] = None) -> ProcessorSnapshot:
        """(Re)initialise the environment and warm up the counters."""
        self._snapshot = self.environment.reset(application_name)
        return self._snapshot

    def run_steps(
        self,
        num_steps: int,
        round_index: int = 0,
        train: bool = True,
        record: bool = True,
    ) -> List[StepRecord]:
        """Run ``num_steps`` control intervals.

        ``train=True`` explores and feeds rewards back into the
        controller; ``train=False`` exploits greedily and never
        updates, matching the paper's evaluation protocol.
        """
        if num_steps <= 0:
            raise SimulationError(f"num_steps must be positive, got {num_steps}")
        if self._snapshot is None:
            self.start()
        assert self._snapshot is not None

        if self.profiler is not None:
            with self.profiler.scope("control.run_steps"):
                records = self._run_steps(num_steps, round_index, train, record)
        else:
            records = self._run_steps(num_steps, round_index, train, record)

        # Metric emission happens once per call, not per step, so an
        # attached registry cannot slow the control loop itself down.
        if self.metrics is not None:
            self.metrics.inc("control.steps", num_steps)
            self.metrics.observe(
                "control.mean_step_reward",
                sum(record.reward for record in records) / num_steps,
            )
        if self.events is not None:
            self._emit_guard_transitions(round_index)
        if _LOG.isEnabledFor(logging.DEBUG):
            _LOG.debug(
                "ran control steps",
                extra={
                    "device": self.environment.device.name,
                    "steps": num_steps,
                    "round": round_index,
                    "train": train,
                    "global_step": self._global_step,
                },
            )
        return records

    def _run_steps(
        self, num_steps: int, round_index: int, train: bool, record: bool
    ) -> List[StepRecord]:
        decision_time_before = self._decision_time_s
        profiler = self.profiler
        flight = self.flight
        agent = getattr(self.controller, "agent", None)
        device_name = self.environment.device.name

        records: List[StepRecord] = []
        for _ in range(num_steps):
            before = self._snapshot
            assert before is not None

            decision_start = time.perf_counter()
            action = self.controller.select_action(before, explore=train)
            act_elapsed = time.perf_counter() - decision_start
            self._decision_time_s += act_elapsed
            self._decision_count += 1

            after = self.environment.step(action)
            reward = self.controller.compute_reward(after)

            learn_elapsed = 0.0
            updates_before = (
                getattr(agent, "update_count", 0) if flight is not None else 0
            )
            if train:
                learn_start = time.perf_counter()
                self.controller.learn(before, action, reward)
                learn_elapsed = time.perf_counter() - learn_start
                self._decision_time_s += learn_elapsed

            if profiler is not None:
                profiler.add("control.act", act_elapsed)
                if train:
                    profiler.add("control.learn", learn_elapsed)

            record_row = StepRecord(
                step=self._global_step,
                device=device_name,
                application=after.application,
                action_index=action,
                frequency_hz=after.frequency_hz,
                power_w=after.power_w,
                ipc=after.ipc,
                mpki=after.mpki,
                miss_rate=after.miss_rate,
                ips=after.ips,
                reward=reward,
                round_index=round_index,
                temperature_c=after.temperature_c,
            )
            records.append(record_row)
            if record:
                self.trace.record(record_row)

            if flight is not None:
                violated = (
                    self.power_limit_w is not None
                    and after.power_w > self.power_limit_w
                )
                if violated:
                    self._violation_count += 1
                loss: Optional[float] = None
                if agent is not None and getattr(agent, "update_count", 0) != updates_before:
                    loss = getattr(agent, "last_loss", None)
                flight.record(
                    FlightRecord(
                        device=device_name,
                        round_index=round_index,
                        step=self._global_step,
                        obs_frequency_hz=before.frequency_hz,
                        obs_power_w=before.power_w,
                        obs_ipc=before.ipc,
                        obs_mpki=before.mpki,
                        action_index=action,
                        action_frequency_hz=after.frequency_hz,
                        reward=reward,
                        greedy=getattr(agent, "last_action_greedy", not train),
                        violated=violated,
                        violations=self._violation_count,
                        temperature_c=after.temperature_c,
                        loss=loss,
                        fallback=bool(
                            getattr(
                                self.controller, "last_action_fallback", False
                            )
                        ),
                    )
                )

            self._snapshot = after
            self._global_step += 1

        if self.metrics is not None:
            self.metrics.observe(
                "control.decision_latency_s",
                (self._decision_time_s - decision_time_before) / num_steps,
            )
        return records

    def _emit_guard_transitions(self, round_index: int) -> None:
        """Stream new watchdog state transitions as telemetry events.

        Guarded controllers (:mod:`repro.guard.watchdog`) keep a
        bounded transition log plus a lifetime counter; the session
        drains the delta after each step batch and emits one
        ``guard_transition`` event per entry. Draining here — instead
        of handing the controller a sink — keeps guarded controllers
        picklable for checkpoints and works identically inside parallel
        worker actors.
        """
        total = getattr(self.controller, "transitions_total", None)
        if total is None:
            return
        new = total - self._transitions_emitted
        if new <= 0:
            return
        log = list(getattr(self.controller, "transitions", ()))
        device_name = self.environment.device.name
        for step, from_state, to_state, reason in log[-new:]:
            self.events.emit(
                {
                    "type": "guard_transition",
                    "device": device_name,
                    "round": round_index,
                    "step": step,
                    "from_state": from_state,
                    "to_state": to_state,
                    "reason": reason,
                }
            )
        self._transitions_emitted = total

    def mean_decision_latency_s(self) -> float:
        """Average controller compute time per interval (Section IV-C)."""
        if self._decision_count == 0:
            raise SimulationError("no control steps executed yet")
        return self._decision_time_s / self._decision_count
