"""The *Profit* baseline controller and its collaborative extension.

*Profit* (Chen et al. [6], as configured in Section IV-B) is a
table-based RL power controller: state ``(f, P, IPC, MPKI)``
discretised into bins, reward equal to the achieved IPS below the
power constraint and ``-5 * |P_crit - P|`` above it, epsilon-greedy
exploration decaying to 0.01, learning rate 0.1.

*CollabPolicy* (Tian et al. [11]) adds multi-device collaboration: each
device also holds a copy of a global per-state policy
``(pi*, r_bar, n)`` merged by the server
(:class:`~repro.federated.collab.CollabPolicyServer`). When exploiting,
the device uses whichever of local/global promises the higher average
reward for the current state.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.control.base import PowerController
from repro.federated.collab import GlobalPolicyEntry
from repro.rl.discretize import StateDiscretizer
from repro.rl.rewards import ProfitReward
from repro.rl.tabular_agent import StateStatistics, TabularBanditAgent
from repro.sim.opp import OPPTable
from repro.sim.processor import ProcessorSnapshot
from repro.utils.rng import SeedLike, as_generator, spawn_generator


class ProfitController(PowerController):
    """Single-device table-based power controller (Profit [6])."""

    name = "profit"

    def __init__(
        self,
        agent: TabularBanditAgent,
        discretizer: StateDiscretizer,
        reward: ProfitReward,
    ) -> None:
        self.agent = agent
        self.discretizer = discretizer
        self.reward = reward

    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        key = self.discretizer.key(snapshot)
        if explore:
            return self.agent.act(key)
        return self.agent.act_greedy(key)

    def compute_reward(self, snapshot: ProcessorSnapshot) -> float:
        return self.reward(snapshot.ips, snapshot.power_w)

    def learn(self, snapshot: ProcessorSnapshot, action: int, reward: float) -> None:
        self.agent.observe(self.discretizer.key(snapshot), action, reward)

    def digest(self) -> Dict[Hashable, StateStatistics]:
        """Per-state statistics for CollabPolicy aggregation.

        Only the digest leaves the device — like the neural system,
        no raw samples are shared.
        """
        return {
            key: self.agent.state_statistics(key)
            for key in self.agent.visited_states()
        }


class CollabProfitController(ProfitController):
    """Profit + the CollabPolicy global table (the paper's SOTA baseline).

    Exploitation consults the local value table when its average reward
    for the current state beats the global entry's, and the global best
    action otherwise; exploration stays epsilon-greedy on the local
    table.
    """

    name = "profit-collab"

    def __init__(
        self,
        agent: TabularBanditAgent,
        discretizer: StateDiscretizer,
        reward: ProfitReward,
        seed: SeedLike = None,
    ) -> None:
        super().__init__(agent, discretizer, reward)
        self._rng = as_generator(seed)
        self._global_table: Dict[Hashable, GlobalPolicyEntry] = {}

    def install_global_table(
        self, table: Dict[Hashable, GlobalPolicyEntry]
    ) -> None:
        """Receive the server's merged global policy for the next round."""
        self._global_table = dict(table)

    @property
    def global_table_size(self) -> int:
        return len(self._global_table)

    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        key = self.discretizer.key(snapshot)
        if explore and self._rng.random() < self.agent.epsilon:
            return int(self._rng.integers(0, self.agent.num_actions))
        return self._exploit(key)

    def _exploit(self, key: Hashable) -> int:
        local_stats = self.agent.state_statistics(key)
        global_entry = self._global_table.get(key)
        if global_entry is None:
            return self.agent.act_greedy(key)
        if local_stats is not None and (
            local_stats.average_reward >= global_entry.average_reward
        ):
            return self.agent.act_greedy(key)
        return global_entry.best_action


def build_profit_controller(
    opp_table: OPPTable,
    power_limit_w: float = 0.6,
    learning_rate: float = 0.1,
    collaborative: bool = False,
    epsilon_schedule=None,
    seed: SeedLike = None,
) -> ProfitController:
    """Assemble a Profit controller with the Section IV-B configuration."""
    root = as_generator(seed)
    agent = TabularBanditAgent(
        num_actions=opp_table.num_levels,
        learning_rate=learning_rate,
        epsilon_schedule=epsilon_schedule,
        seed=spawn_generator(root, 0),
    )
    discretizer = StateDiscretizer(num_frequency_levels=opp_table.num_levels)
    reward = ProfitReward(power_limit_w=power_limit_w)
    if collaborative:
        return CollabProfitController(
            agent, discretizer, reward, seed=spawn_generator(root, 1)
        )
    return ProfitController(agent, discretizer, reward)
