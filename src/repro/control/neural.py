"""The paper's neural power controller.

Binds the three pieces of Section III-A together: the state normaliser
(``s = (f, P, ipc, mr, mpki)``), the neural contextual-bandit agent
(Algorithm 1) and the power-efficiency reward (Eq. 4). This controller
is both the federated client's local learner and the local-only
baseline — the difference between those two settings is purely whether
a :class:`~repro.federated.client.FederatedClient` swaps its parameters
each round.
"""

from __future__ import annotations

from typing import Optional

from repro.control.base import PowerController
from repro.rl.agent import NeuralBanditAgent
from repro.rl.rewards import PowerEfficiencyReward
from repro.rl.state import StateNormalizer
from repro.sim.opp import OPPTable
from repro.sim.processor import ProcessorSnapshot
from repro.utils.rng import SeedLike


class NeuralPowerController(PowerController):
    """NN-based DVFS policy (the paper's contribution)."""

    name = "federated-neural"

    def __init__(
        self,
        agent: NeuralBanditAgent,
        normalizer: StateNormalizer,
        reward: PowerEfficiencyReward,
    ) -> None:
        self.agent = agent
        self.normalizer = normalizer
        self.reward = reward

    def select_action(self, snapshot: ProcessorSnapshot, explore: bool = True) -> int:
        state = self.normalizer.vectorize(snapshot)
        if explore:
            return self.agent.act(state)
        return self.agent.act_greedy(state)

    def compute_reward(self, snapshot: ProcessorSnapshot) -> float:
        """Eq. 4 on the *measured* frequency and power of the interval."""
        return self.reward(snapshot.frequency_hz, snapshot.power_w)

    def learn(self, snapshot: ProcessorSnapshot, action: int, reward: float) -> None:
        self.agent.observe(self.normalizer.vectorize(snapshot), action, reward)


def build_neural_controller(
    opp_table: OPPTable,
    power_limit_w: float = 0.6,
    offset_w: float = 0.05,
    learning_rate: float = 0.005,
    hidden_layers=(32,),
    batch_size: int = 128,
    update_interval: int = 20,
    replay_capacity: int = 4000,
    temperature_schedule=None,
    loss=None,
    seed: SeedLike = None,
) -> NeuralPowerController:
    """Assemble a controller with the paper's Table-I defaults."""
    agent = NeuralBanditAgent(
        num_actions=opp_table.num_levels,
        hidden_layers=hidden_layers,
        learning_rate=learning_rate,
        batch_size=batch_size,
        update_interval=update_interval,
        replay_capacity=replay_capacity,
        temperature_schedule=temperature_schedule,
        loss=loss,
        seed=seed,
    )
    normalizer = StateNormalizer(max_frequency_hz=opp_table.max_frequency_hz)
    reward = PowerEfficiencyReward(
        max_frequency_hz=opp_table.max_frequency_hz,
        power_limit_w=power_limit_w,
        offset_w=offset_w,
    )
    return NeuralPowerController(agent, normalizer, reward)
