"""Convergence statistics for per-round reward curves.

Quantifies the paper's qualitative Fig. 3 observations — "almost
constant at just below 0.5 starting from early rounds" — as two
numbers: the plateau round (how early) and the tail stability (how
constant).
"""

from __future__ import annotations

from statistics import fmean, pstdev
from typing import Sequence

from repro.errors import ConfigurationError


def plateau_round(
    series: Sequence[float], tolerance: float = 0.05, window: int = 3
) -> int:
    """First index from which the curve stays near its final level.

    "Near" means every subsequent ``window``-smoothed value lies within
    ``tolerance`` of the mean of the final ``window`` values. Returns
    ``len(series) - 1`` if the curve never settles.
    """
    if not series:
        raise ConfigurationError("series must be non-empty")
    if tolerance <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tolerance}")
    if window <= 0 or window > len(series):
        raise ConfigurationError(
            f"window must be in [1, {len(series)}], got {window}"
        )
    final_level = fmean(series[-window:])
    smoothed = [
        fmean(series[max(0, i - window + 1) : i + 1]) for i in range(len(series))
    ]
    for start in range(len(series)):
        if all(abs(v - final_level) <= tolerance for v in smoothed[start:]):
            return start
    return len(series) - 1


def tail_stability(series: Sequence[float], fraction: float = 0.25) -> float:
    """Standard deviation over the trailing ``fraction`` of the curve.

    Small values mean the policy's evaluation reward has stopped moving
    (the paper's "almost constant").
    """
    if not series:
        raise ConfigurationError("series must be non-empty")
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
    tail_length = max(1, int(len(series) * fraction))
    return pstdev(series[-tail_length:]) if tail_length > 1 else 0.0
