"""Model-based oracle DVFS policies and policy regret.

Because the simulator's performance and power models are analytic, the
*true* optimal V/f level for any workload phase under the Eq. 4 reward
is computable exactly — something impossible on real hardware. Two
oracles are provided:

* the **static oracle**: the single level maximising the
  time-weighted expected reward over an application's whole phase mix
  (what a perfect per-application table would choose);
* the **phase oracle**: the best level per phase (what a perfect
  phase-adaptive controller would choose; an upper bound for any
  policy acting on per-interval counters).

The gap between a learned policy's achieved evaluation reward and the
oracle's expected reward is its *regret* — the quality metric used by
the ``regret`` experiment to quantify how close the federated policy
gets to the achievable optimum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.rl.rewards import PowerEfficiencyReward
from repro.sim.opp import OPPTable
from repro.sim.perf_model import PerformanceModel
from repro.sim.power_model import PowerModel
from repro.sim.workload import ApplicationModel, Phase


@dataclass(frozen=True)
class OracleDecision:
    """The oracle's choice for one application (or phase)."""

    application: str
    level: int
    frequency_hz: float
    expected_power_w: float
    expected_reward: float
    expected_ips: float


class OracleAnalyzer:
    """Exact expected metrics per (phase, level) from the models."""

    def __init__(
        self,
        opp_table: OPPTable,
        performance_model: PerformanceModel,
        power_model: PowerModel,
        reward: PowerEfficiencyReward,
    ) -> None:
        self.opp_table = opp_table
        self.performance_model = performance_model
        self.power_model = power_model
        self.reward = reward

    def phase_metrics(self, phase: Phase, level: int):
        """(power, ips, reward) of running ``phase`` at ``level``."""
        op = self.opp_table[level]
        perf = self.performance_model.evaluate(phase, op.frequency_hz)
        power = self.power_model.total_power(op, phase.activity, perf.duty)
        reward = self.reward(op.frequency_hz, power)
        return power, perf.ips, reward

    def application_metrics(self, application: ApplicationModel, level: int):
        """Time-weighted (power, ips, reward) over the app's phase mix.

        Weighting is by wall-clock time share: a phase's contribution is
        proportional to the time spent in it at this level, exactly as
        per-interval control samples would average out.
        """
        total_time = 0.0
        energy = 0.0
        reward_time = 0.0
        for phase in application.phases:
            power, ips, reward = self.phase_metrics(phase, level)
            phase_time = phase.instructions / ips
            total_time += phase_time
            energy += power * phase_time
            reward_time += reward * phase_time
        ips = application.total_instructions / total_time
        return energy / total_time, ips, reward_time / total_time

    def static_oracle(self, application: ApplicationModel) -> OracleDecision:
        """The single best level for the whole application."""
        best: Optional[OracleDecision] = None
        for level in range(self.opp_table.num_levels):
            power, ips, reward = self.application_metrics(application, level)
            if best is None or reward > best.expected_reward:
                best = OracleDecision(
                    application=application.name,
                    level=level,
                    frequency_hz=self.opp_table[level].frequency_hz,
                    expected_power_w=power,
                    expected_reward=reward,
                    expected_ips=ips,
                )
        return best

    def phase_oracle(self, application: ApplicationModel) -> Dict[str, OracleDecision]:
        """The best level for each phase individually."""
        decisions: Dict[str, OracleDecision] = {}
        for phase in application.phases:
            best: Optional[OracleDecision] = None
            for level in range(self.opp_table.num_levels):
                power, ips, reward = self.phase_metrics(phase, level)
                if best is None or reward > best.expected_reward:
                    best = OracleDecision(
                        application=f"{application.name}/{phase.name}",
                        level=level,
                        frequency_hz=self.opp_table[level].frequency_hz,
                        expected_power_w=power,
                        expected_reward=reward,
                        expected_ips=ips,
                    )
            decisions[phase.name] = best
        return decisions

    def phase_oracle_reward(self, application: ApplicationModel) -> float:
        """Time-weighted expected reward of the per-phase oracle —
        the upper bound for any counter-driven controller."""
        decisions = self.phase_oracle(application)
        total_time = 0.0
        reward_time = 0.0
        for phase in application.phases:
            decision = decisions[phase.name]
            _, ips, reward = self.phase_metrics(phase, decision.level)
            phase_time = phase.instructions / ips
            total_time += phase_time
            reward_time += reward * phase_time
        return reward_time / total_time

    def regret(
        self, application: ApplicationModel, achieved_reward: float,
        per_phase: bool = True,
    ) -> float:
        """Oracle reward minus achieved reward (>= 0 for any policy,
        up to simulator noise)."""
        if per_phase:
            oracle = self.phase_oracle_reward(application)
        else:
            oracle = self.static_oracle(application).expected_reward
        return oracle - achieved_reward


def build_default_oracle(
    power_limit_w: float = 0.6, offset_w: float = 0.05
) -> OracleAnalyzer:
    """Oracle over the default Jetson-Nano models (the experiment setup)."""
    from repro.sim.opp import JETSON_NANO_OPP_TABLE

    return OracleAnalyzer(
        opp_table=JETSON_NANO_OPP_TABLE,
        performance_model=PerformanceModel(),
        power_model=PowerModel(),
        reward=PowerEfficiencyReward(
            max_frequency_hz=JETSON_NANO_OPP_TABLE.max_frequency_hz,
            power_limit_w=power_limit_w,
            offset_w=offset_w,
        ),
    )
