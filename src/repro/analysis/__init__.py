"""Offline analysis tools.

Utilities the paper's evaluation implies but never formalises:

* :mod:`repro.analysis.oracle` — the model-based oracle DVFS policy
  (the best static or per-phase V/f level under the power constraint,
  computable exactly because the simulator's physics are known) and
  per-application *regret* of a learned policy against it.
* :mod:`repro.analysis.convergence` — plateau detection and stability
  statistics for per-round reward curves (quantifies the paper's
  "almost constant ... starting from early rounds").
"""

from repro.analysis.convergence import plateau_round, tail_stability
from repro.analysis.oracle import (
    OracleAnalyzer,
    OracleDecision,
    build_default_oracle,
)

__all__ = [
    "OracleAnalyzer",
    "OracleDecision",
    "build_default_oracle",
    "plateau_round",
    "tail_stability",
]
