"""Payloads that cross the execution-backend boundary.

The parallel engine (:mod:`repro.parallel.engine`) keeps one persistent
*device actor* per simulated device — the actor owns that device's
:class:`~repro.sim.device.DeviceEnvironment`, controller and control
session across every federated round, exactly like a real edge board
owns its own state. Only the objects defined here travel between the
driver process and the actors:

* downstream: small frozen *task* records (step counts, model
  parameters to install, controller method names);
* upstream: *outcome* records carrying step traces, trained
  parameters and a :class:`TelemetryDump` of the worker's private
  observability sinks.

Everything is plain dataclasses over picklable values (numpy arrays,
:class:`~repro.sim.trace.StepRecord` /
:class:`~repro.obs.flight.FlightRecord` rows, dicts), so the identical
payloads serve the in-process thread backend and the multiprocessing
backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

#: A worker-side builder: ``builder(device_name=..., metrics=...,
#: profiler=..., **kwargs) -> ActorParts``. Must be a *top-level*
#: function so the spec pickles into a worker process; the metrics/
#: profiler arguments are the actor's private sinks, to be wired into
#: the device environment it constructs.
ActorBuilder = Callable[..., "ActorParts"]

#: Called as ``fault_injector(device_name, round_index)`` right before
#: a training task runs its steps; raising simulates a straggler.
FaultInjector = Callable[[str, int], None]


@dataclass
class ActorParts:
    """What a builder hands back for one device actor.

    ``environment``/``controller`` are mandatory; ``evaluator`` is a
    single-device :class:`~repro.experiments.evaluation.PolicyEvaluator`
    (required only when the driver dispatches :class:`EvalTask`);
    ``eval_controller`` is a parameter vessel for evaluating a shipped
    global model (federated evaluation) — when absent, evaluation runs
    against the actor's own training controller.
    """

    environment: Any
    controller: Any
    evaluator: Any = None
    eval_controller: Any = None
    fault_injector: Optional[FaultInjector] = None


@dataclass(frozen=True)
class WorkerSpec:
    """Everything needed to (re)build one device actor in a worker.

    The spec is the *only* thing shipped at worker start-up: builders
    reconstruct environment and controller from deterministic seed
    paths, so a process worker ends up with state bit-identical to what
    a serial run would hold for that device. Telemetry flags mirror the
    driver's attached sinks; the actor creates matching private
    collectors and ships their contents back inside each outcome.
    """

    device_name: str
    builder: ActorBuilder
    kwargs: Dict[str, Any] = field(default_factory=dict)
    collect_metrics: bool = False
    collect_profile: bool = False
    flight_capacity: Optional[int] = None
    flight_sample_every: int = 1
    #: Mirror of the driver's event pipeline: the actor records into a
    #: private bounded buffer and drains it into every dump.
    collect_events: bool = False


@dataclass(frozen=True)
class StepsTask:
    """Run training/evaluation control steps on the actor's session."""

    round_index: int
    num_steps: int
    train: bool = True
    #: Model parameters to install before stepping (the received global
    #: model); ``None`` keeps the actor's current parameters.
    parameters: Optional[List[Any]] = None
    reset_optimizer: bool = True
    #: Ship the post-training parameters back (federated upload path).
    return_parameters: bool = False


@dataclass(frozen=True)
class EvalTask:
    """Greedy-evaluate on this actor's device across all eval apps.

    With ``parameters`` set, the shipped global model is installed into
    the actor's ``eval_controller`` and evaluated; otherwise the
    actor's own training controller is evaluated (the local-only and
    collab baselines).
    """

    round_index: int
    parameters: Optional[List[Any]] = None


@dataclass(frozen=True)
class CallTask:
    """Invoke ``controller.<method>(*args)`` and return the result."""

    method: str
    args: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class FetchControllerTask:
    """Ship the actor's whole controller object back to the driver."""


@dataclass(frozen=True)
class FetchStateTask:
    """Ship the actor's full device state as an opaque checkpoint blob.

    The blob comes from :func:`repro.faults.capture_device_state` —
    environment, controller, session counters and the evaluation
    environment, with process-local telemetry sinks stripped.
    """


@dataclass(frozen=True)
class InstallStateTask:
    """Restore a checkpoint blob captured by :class:`FetchStateTask`."""

    blob: bytes


@dataclass
class TelemetryDump:
    """One task's worth of a worker's private observability state.

    ``flight_rows`` are the records retained since the previous dump;
    ``flight_seen``/``flight_violations`` are the worker's *running*
    per-device totals (authoritative — each device lives in exactly one
    worker). ``metrics_state`` and ``profile_rows`` are drained on
    every dump, so they hold per-task deltas that the driver merges
    additively. Histogram entries inside ``metrics_state`` ship as
    bounded digest cells rather than raw samples, so a dump's pickled
    size is O(1) in the number of steps the task observed (guarded by
    ``test_worker_metrics_payload_is_bounded``).
    """

    flight_rows: List[Any] = field(default_factory=list)
    flight_seen: Dict[str, int] = field(default_factory=dict)
    flight_violations: Dict[str, int] = field(default_factory=dict)
    flight_fallbacks: Dict[str, int] = field(default_factory=dict)
    metrics_state: Optional[Dict[str, Any]] = None
    profile_rows: Optional[List[tuple]] = None
    #: Telemetry events (plain dicts) drained from the actor's private
    #: buffer; the driver replays them through its pipeline in device
    #: order, which re-stamps the sequence numbers.
    event_rows: List[Dict[str, Any]] = field(default_factory=list)


@dataclass
class StepsOutcome:
    """Result of one :class:`StepsTask`.

    ``error`` carries the formatted traceback when the task raised
    (fault injection or a genuine failure) — the records list is then
    empty and ``parameters`` is ``None``, matching what a serial run
    would have produced for a straggler that failed before stepping.
    """

    device: str
    records: List[Any] = field(default_factory=list)
    parameters: Optional[List[Any]] = None
    error: Optional[str] = None
    duration_s: float = 0.0
    #: The session's lifetime mean decision latency after this task
    #: (``None`` until the first successful step).
    mean_decision_latency_s: Optional[float] = None
    telemetry: Optional[TelemetryDump] = None


@dataclass
class EvalOutcome:
    """Result of one :class:`EvalTask`: per-application evaluations."""

    device: str
    evaluations: List[Any] = field(default_factory=list)
    error: Optional[str] = None


@dataclass
class CallOutcome:
    """Result of a :class:`CallTask`/:class:`FetchControllerTask`."""

    device: str
    value: Any = None
    error: Optional[str] = None
