"""Ambient execution configuration.

Experiment runners share the uniform ``runner(config) -> str``
signature, so the CLI cannot thread ``--backend``/``--workers`` through
every figure and ablation module — the same problem the telemetry
sinks have, solved the same way (:mod:`repro.obs.context`): the CLI
*activates* an :class:`ExecutionConfig` here and the training drivers
pick it up as their default when no explicit ``backend``/``workers``
argument is passed. Explicit arguments always win.

The stack is thread-local so concurrent drivers cannot leak execution
settings into each other, and the default (empty stack) resolves to
the serial backend — existing callers see zero behaviour change.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.parallel.backend import BACKEND_NAMES

#: Backend used when nothing is configured anywhere.
DEFAULT_BACKEND = "serial"


@dataclass(frozen=True)
class ExecutionConfig:
    """One activated execution preference."""

    backend: str = DEFAULT_BACKEND
    workers: Optional[int] = None


class _ThreadLocalStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[ExecutionConfig] = []


_LOCAL = _ThreadLocalStack()


def _validate(backend: str, workers: Optional[int]) -> None:
    if backend not in BACKEND_NAMES:
        raise ConfigurationError(
            f"unknown execution backend {backend!r}; "
            f"available: {', '.join(BACKEND_NAMES)}"
        )
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")


def get_active_execution() -> Optional[ExecutionConfig]:
    """The innermost config activated on this thread, or ``None``."""
    stack = _LOCAL.stack
    return stack[-1] if stack else None


def resolve_execution(
    backend: Optional[str] = None, workers: Optional[int] = None
) -> Tuple[str, Optional[int]]:
    """Effective ``(backend, workers)`` for a driver call.

    Explicit arguments win; otherwise the ambient config applies;
    otherwise the serial default.
    """
    ambient = get_active_execution()
    if backend is None:
        backend = ambient.backend if ambient is not None else DEFAULT_BACKEND
    if workers is None and ambient is not None:
        workers = ambient.workers
    _validate(backend, workers)
    return backend, workers


@contextmanager
def execution(
    backend: str = DEFAULT_BACKEND, workers: Optional[int] = None
) -> Iterator[ExecutionConfig]:
    """``with execution("process", workers=4): ...`` — balanced push/pop."""
    _validate(backend, workers)
    config = ExecutionConfig(backend=backend, workers=workers)
    _LOCAL.stack.append(config)
    try:
        yield config
    finally:
        _LOCAL.stack.pop()
