"""Pluggable execution backends for the device fleet.

Four interchangeable implementations of one tiny contract — build the
per-device actors from :class:`~repro.parallel.payloads.WorkerSpec`
records, then ``run_tasks`` a ``{device_name: task}`` batch and return
``{device_name: outcome}``:

* ``serial`` — actors in-process, tasks executed one after another.
  The reference implementation the others must match bit-for-bit.
* ``thread`` — actors in-process, tasks fanned out on a thread pool.
  Python's GIL serialises the numpy-light control loop, so this is an
  API/equivalence backend more than a speed one, but it exercises the
  full actor path without pickling.
* ``process`` — one persistent child process per device (fork start
  method), tasks shipped over pipes. The device state never crosses
  the boundary after start-up, so per-round traffic is model
  parameters plus result summaries. This is the backend that turns
  multi-core machines into real local-train speedup.
* ``batched`` — actors in-process, but every eligible device's network,
  optimizer and replay stacked along a device axis so the whole fleet
  trains in single numpy calls (:mod:`~repro.parallel.batched`). The
  throughput backend for large ``D``; still bit-identical to serial.

``workers`` caps concurrency: the thread-pool size, or the number of
simultaneously in-flight process tasks (dispatch is pipelined through
a sliding window of that size).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, ExecutionError
from repro.obs.logging import get_logger
from repro.parallel.batched import BatchedFleet
from repro.parallel.payloads import CallOutcome, WorkerSpec
from repro.parallel.worker import WORKER_READY, DeviceActor, process_worker_main

_LOG = get_logger("parallel")

#: Recognised backend names, in documentation order.
BACKEND_NAMES = ("serial", "thread", "process", "batched")

#: Seconds to wait for a worker process to exit before terminating it.
_SHUTDOWN_TIMEOUT_S = 10.0


class SerialBackend:
    """In-process actors, tasks executed sequentially (the reference)."""

    name = "serial"

    def __init__(self, specs: Sequence[WorkerSpec]) -> None:
        self._actors = {spec.device_name: DeviceActor(spec) for spec in specs}

    def run_tasks(self, tasks: Dict[str, object]) -> Dict[str, object]:
        return {
            name: self._actors[name].handle(task) for name, task in tasks.items()
        }

    def close(self) -> None:
        self._actors.clear()


class ThreadBackend:
    """In-process actors, tasks fanned out on a thread pool.

    Actors use only their private sinks (never the thread-local ambient
    context), so results are independent of thread scheduling; outcomes
    are returned — and merged by the caller — in task order.
    """

    name = "thread"

    def __init__(
        self, specs: Sequence[WorkerSpec], workers: Optional[int] = None
    ) -> None:
        self._actors = {spec.device_name: DeviceActor(spec) for spec in specs}
        self._pool = ThreadPoolExecutor(
            max_workers=workers or max(1, len(self._actors)),
            thread_name_prefix="repro-device",
        )

    def run_tasks(self, tasks: Dict[str, object]) -> Dict[str, object]:
        futures = {
            name: self._pool.submit(self._actors[name].handle, task)
            for name, task in tasks.items()
        }
        return {name: futures[name].result() for name in tasks}

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        self._actors.clear()


class ProcessBackend:
    """One persistent child process per device, tasks over pipes.

    Uses the ``fork`` start method so specs (and any closure-free
    builder kwargs) transfer cheaply and test-defined fault injectors
    resolve without re-imports. Each worker answers exactly one outcome
    per task; dispatch keeps at most ``workers`` tasks in flight, but
    pipelines through the window (each completed reply immediately
    funds the next submission) instead of running send-all/recv-all
    waves with a barrier between them.
    """

    name = "process"

    def __init__(
        self, specs: Sequence[WorkerSpec], workers: Optional[int] = None
    ) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigurationError(
                "the process backend requires the fork start method "
                "(POSIX); use backend='thread' on this platform"
            )
        context = multiprocessing.get_context("fork")
        self._device_names: List[str] = [spec.device_name for spec in specs]
        self._max_inflight = workers or max(1, len(self._device_names))
        self._connections = {}
        self._processes = {}
        for spec in specs:
            parent_end, child_end = context.Pipe()
            process = context.Process(
                target=process_worker_main,
                args=(child_end, spec),
                name=f"repro-device-{spec.device_name}",
                daemon=True,
            )
            process.start()
            child_end.close()
            self._connections[spec.device_name] = parent_end
            self._processes[spec.device_name] = process
        for name in self._device_names:
            handshake = self._connections[name].recv()
            if not (
                isinstance(handshake, CallOutcome)
                and handshake.error is None
                and handshake.value == WORKER_READY
            ):
                detail = getattr(handshake, "error", repr(handshake))
                self.close()
                raise ExecutionError(
                    f"worker for device {name!r} failed to start:\n{detail}"
                )
        _LOG.info(
            "process backend started",
            extra={
                "devices": len(self._device_names),
                "max_inflight": self._max_inflight,
            },
        )

    def run_tasks(self, tasks: Dict[str, object]) -> Dict[str, object]:
        names = list(tasks)
        outcomes: Dict[str, object] = {}
        # Prime the window: one upfront pipe write per worker, no
        # per-task round-trips. Replies are collected in task order and
        # each one immediately releases the next pending submission, so
        # a slow device never stalls dispatch behind a wave barrier.
        next_to_send = min(self._max_inflight, len(names))
        for name in names[:next_to_send]:
            self._connections[name].send(tasks[name])
        for name in names:
            try:
                outcomes[name] = self._connections[name].recv()
            except EOFError:
                raise ExecutionError(
                    f"worker process for device {name!r} died "
                    f"(exit code {self._processes[name].exitcode})"
                ) from None
            if next_to_send < len(names):
                pending = names[next_to_send]
                self._connections[pending].send(tasks[pending])
                next_to_send += 1
        return outcomes

    def close(self) -> None:
        for connection in self._connections.values():
            try:
                connection.send(None)
            except (BrokenPipeError, OSError):
                pass
        for process in self._processes.values():
            process.join(timeout=_SHUTDOWN_TIMEOUT_S)
            if process.is_alive():
                process.terminate()
                process.join(timeout=_SHUTDOWN_TIMEOUT_S)
        for connection in self._connections.values():
            connection.close()
        self._connections.clear()
        self._processes.clear()


def create_backend(
    backend: str, specs: Sequence[WorkerSpec], workers: Optional[int] = None
):
    """Instantiate a backend by name (serial/thread/process/batched)."""
    if workers is not None and workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if backend == "serial":
        return SerialBackend(specs)
    if backend == "thread":
        return ThreadBackend(specs, workers=workers)
    if backend == "process":
        return ProcessBackend(specs, workers=workers)
    if backend == "batched":
        return BatchedFleet(specs, workers=workers)
    raise ConfigurationError(
        f"unknown execution backend {backend!r}; "
        f"available: {', '.join(BACKEND_NAMES)}"
    )
