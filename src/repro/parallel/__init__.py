"""Parallel federated execution engine.

Public surface of the pluggable execution layer: worker payloads
(:mod:`~repro.parallel.payloads`), the device actor
(:mod:`~repro.parallel.worker`), the four backends
(:mod:`~repro.parallel.backend` and :mod:`~repro.parallel.batched`),
the fleet engine
(:mod:`~repro.parallel.engine`) and the ambient ``--backend/--workers``
context (:mod:`~repro.parallel.context`).
"""

from repro.parallel.backend import (
    BACKEND_NAMES,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    create_backend,
)
from repro.parallel.batched import BatchedFleet
from repro.parallel.context import (
    DEFAULT_BACKEND,
    ExecutionConfig,
    execution,
    get_active_execution,
    resolve_execution,
)
from repro.parallel.engine import DeviceFleet, FleetTrainExecutor
from repro.parallel.payloads import (
    ActorParts,
    CallOutcome,
    CallTask,
    EvalOutcome,
    EvalTask,
    FetchControllerTask,
    StepsOutcome,
    StepsTask,
    TelemetryDump,
    WorkerSpec,
)
from repro.parallel.worker import DeviceActor

__all__ = [
    "ActorParts",
    "BACKEND_NAMES",
    "BatchedFleet",
    "CallOutcome",
    "CallTask",
    "DEFAULT_BACKEND",
    "DeviceActor",
    "DeviceFleet",
    "EvalOutcome",
    "EvalTask",
    "ExecutionConfig",
    "execution",
    "FetchControllerTask",
    "FleetTrainExecutor",
    "get_active_execution",
    "ProcessBackend",
    "resolve_execution",
    "SerialBackend",
    "StepsOutcome",
    "StepsTask",
    "TelemetryDump",
    "ThreadBackend",
    "WorkerSpec",
    "create_backend",
]
