"""The device fleet: persistent actors behind a pluggable backend.

:class:`DeviceFleet` is what the training drivers talk to. It owns one
:class:`~repro.parallel.worker.DeviceActor` per device (via the chosen
backend), dispatches round-synchronous task batches, and folds each
outcome's telemetry back into the driver's sinks **in deterministic
device order** — so the shared training trace, flight recorder, metrics
registry and profiler end up with exactly the content a serial run
produces, regardless of how the work was scheduled.

:class:`FleetTrainExecutor` adapts the fleet to the orchestrator's
``executor`` hook (:func:`repro.federated.orchestrator.run_federated_training`):
it reads the freshly received global parameters out of the driver-side
mirror agents, fans the local-training phase out across the fleet, and
installs each survivor's trained parameters back into its mirror so the
existing upload/aggregate path (and its byte accounting) runs
unchanged.
"""

from __future__ import annotations

from statistics import fmean
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ExecutionError
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ScopeProfiler
from repro.parallel.backend import create_backend
from repro.parallel.payloads import (
    CallTask,
    EvalTask,
    FetchControllerTask,
    FetchStateTask,
    InstallStateTask,
    StepsOutcome,
    StepsTask,
    WorkerSpec,
)
from repro.sim.trace import TraceRecorder


class DeviceFleet:
    """Round-synchronous task dispatch over per-device actors."""

    def __init__(
        self,
        specs: Sequence[WorkerSpec],
        backend: str = "thread",
        workers: Optional[int] = None,
        trace: Optional[TraceRecorder] = None,
        metrics: Optional[MetricsRegistry] = None,
        flight: Optional[FlightRecorder] = None,
        profiler: Optional[ScopeProfiler] = None,
        events=None,
    ) -> None:
        self.device_names: List[str] = [spec.device_name for spec in specs]
        self.backend_name = backend
        self.trace = trace
        self.metrics = metrics
        self.flight = flight
        self.profiler = profiler
        self.events = events
        self._latency_by_device: Dict[str, float] = {}
        self._backend = create_backend(backend, specs, workers=workers)

    # -- training ------------------------------------------------------
    def run_round(
        self,
        round_index: int,
        device_names: Sequence[str],
        num_steps: int,
        train: bool = True,
        parameters_by_device: Optional[Mapping[str, Any]] = None,
        return_parameters: bool = False,
        raise_on_error: bool = True,
    ) -> Dict[str, StepsOutcome]:
        """One round of local control steps across ``device_names``.

        Outcomes merge into the driver's sinks in the given device
        order (the serial interleaving). With ``raise_on_error=False``
        failed tasks come back with ``outcome.error`` set instead of
        raising — the straggler-tolerant federated path.
        """
        tasks = {
            name: StepsTask(
                round_index=round_index,
                num_steps=num_steps,
                train=train,
                parameters=(
                    parameters_by_device.get(name)
                    if parameters_by_device is not None
                    else None
                ),
                return_parameters=return_parameters,
            )
            for name in device_names
        }
        outcomes = self._backend.run_tasks(tasks)
        for name in device_names:
            outcome = outcomes[name]
            self._merge_outcome(outcome)
            if raise_on_error and outcome.error is not None:
                raise ExecutionError(
                    f"device {name!r} failed in round {round_index}:\n"
                    f"{outcome.error}"
                )
        return outcomes

    def _merge_outcome(self, outcome: StepsOutcome) -> None:
        if self.trace is not None and outcome.records:
            self.trace.extend(outcome.records)
        if outcome.mean_decision_latency_s is not None:
            self._latency_by_device[outcome.device] = (
                outcome.mean_decision_latency_s
            )
        dump = outcome.telemetry
        if dump is None:
            return
        if self.flight is not None and (dump.flight_rows or dump.flight_seen):
            self.flight.merge_worker_state(
                dump.flight_rows,
                dump.flight_seen,
                dump.flight_violations,
                getattr(dump, "flight_fallbacks", None),
            )
        if self.metrics is not None and dump.metrics_state is not None:
            self.metrics.merge_state(dump.metrics_state)
        if self.profiler is not None and dump.profile_rows:
            self.profiler.merge_rows(dump.profile_rows)
        event_rows = getattr(dump, "event_rows", None)
        if self.events is not None and event_rows:
            # Replaying in device order re-stamps seq numbers, so the
            # merged stream equals the serial interleaving exactly.
            self.events.emit_many(event_rows)

    # -- evaluation ----------------------------------------------------
    def evaluate_round(
        self,
        round_index: int,
        device_names: Sequence[str],
        parameters: Optional[Any] = None,
    ) -> List[Any]:
        """Fan the device×application evaluation grid out per device.

        Applications run sequentially inside each actor (preserving its
        evaluation environments' RNG continuity); the flattened rows
        come back in device order — the exact list a serial
        ``PolicyEvaluator.evaluate`` call builds.
        """
        tasks = {
            name: EvalTask(round_index=round_index, parameters=parameters)
            for name in device_names
        }
        outcomes = self._backend.run_tasks(tasks)
        rows: List[Any] = []
        for name in device_names:
            outcome = outcomes[name]
            if outcome.error is not None:
                raise ExecutionError(
                    f"evaluation failed on device {name!r} in round "
                    f"{round_index}:\n{outcome.error}"
                )
            rows.extend(outcome.evaluations)
        return rows

    # -- controller access ---------------------------------------------
    def call_all(
        self,
        method: str,
        *args: Any,
        device_names: Optional[Sequence[str]] = None,
    ) -> Dict[str, Any]:
        """``controller.<method>(*args)`` on every device, in order."""
        names = list(device_names) if device_names is not None else self.device_names
        tasks = {name: CallTask(method=method, args=args) for name in names}
        outcomes = self._backend.run_tasks(tasks)
        values: Dict[str, Any] = {}
        for name in names:
            outcome = outcomes[name]
            if outcome.error is not None:
                raise ExecutionError(
                    f"controller call {method!r} failed on device "
                    f"{name!r}:\n{outcome.error}"
                )
            values[name] = outcome.value
        return values

    def fetch_controllers(self) -> Dict[str, Any]:
        """The actors' live controller objects, keyed by device.

        For the process backend the controllers are pickled back whole
        (network, optimizer state, replay buffer, RNG streams), so the
        returned objects equal what a serial run holds at the same
        point.
        """
        tasks = {name: FetchControllerTask() for name in self.device_names}
        outcomes = self._backend.run_tasks(tasks)
        controllers: Dict[str, Any] = {}
        for name in self.device_names:
            outcome = outcomes[name]
            if outcome.error is not None:
                raise ExecutionError(
                    f"failed to fetch controller from device {name!r}:\n"
                    f"{outcome.error}"
                )
            controllers[name] = outcome.value
        return controllers

    # -- checkpoint state ----------------------------------------------
    def fetch_states(self) -> Dict[str, bytes]:
        """Every actor's device state as opaque checkpoint blobs.

        The blobs are backend-independent
        (:func:`repro.faults.capture_device_state` pickles with the
        telemetry sinks stripped), so a run checkpointed under one
        backend resumes under any other.
        """
        tasks = {name: FetchStateTask() for name in self.device_names}
        outcomes = self._backend.run_tasks(tasks)
        blobs: Dict[str, bytes] = {}
        for name in self.device_names:
            outcome = outcomes[name]
            if outcome.error is not None:
                raise ExecutionError(
                    f"failed to capture state from device {name!r}:\n"
                    f"{outcome.error}"
                )
            blobs[name] = outcome.value
        return blobs

    def install_states(self, blobs: Mapping[str, bytes]) -> None:
        """Restore checkpoint blobs into their actors (resume path)."""
        names = [name for name in self.device_names if name in blobs]
        missing = [name for name in self.device_names if name not in blobs]
        if missing:
            raise ExecutionError(
                f"checkpoint has no state for devices {missing}"
            )
        tasks = {name: InstallStateTask(blob=blobs[name]) for name in names}
        outcomes = self._backend.run_tasks(tasks)
        for name in names:
            outcome = outcomes[name]
            if outcome.error is not None:
                raise ExecutionError(
                    f"failed to restore state on device {name!r}:\n"
                    f"{outcome.error}"
                )

    # -- summaries -----------------------------------------------------
    def mean_decision_latency_s(self) -> float:
        """Fleet mean of the devices' lifetime decision latencies.

        Summed in spec (device) order so the float result matches the
        serial drivers' ``fmean`` over their session dicts exactly.
        """
        values = [
            self._latency_by_device[name]
            for name in self.device_names
            if name in self._latency_by_device
        ]
        if not values:
            raise ExecutionError("no device has executed control steps yet")
        return fmean(values)

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        self._backend.close()

    def __enter__(self) -> "DeviceFleet":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class FleetTrainExecutor:
    """Adapter between the orchestrator's local-train phase and a fleet.

    ``agents_by_client`` are the driver-side mirror agents — the ones
    the :class:`~repro.federated.client.FederatedClient` endpoints
    decode broadcasts into and encode uploads from. Before dispatch the
    executor reads each participating mirror's (freshly received)
    parameters; after the round it installs each survivor's trained
    parameters back, so the untouched upload path serialises exactly
    the bytes a serial run would.
    """

    def __init__(
        self,
        fleet: DeviceFleet,
        agents_by_client: Mapping[str, Any],
        num_steps: int,
    ) -> None:
        self._fleet = fleet
        self._agents = agents_by_client
        self._num_steps = num_steps

    def run_local_train(
        self, round_index: int, participating: Sequence[str]
    ) -> Dict[str, StepsOutcome]:
        parameters = {
            client_id: self._agents[client_id].get_parameters()
            for client_id in participating
        }
        outcomes = self._fleet.run_round(
            round_index,
            list(participating),
            self._num_steps,
            train=True,
            parameters_by_device=parameters,
            return_parameters=True,
            raise_on_error=False,
        )
        for client_id in participating:
            outcome = outcomes[client_id]
            if outcome.error is None and outcome.parameters is not None:
                self._agents[client_id].set_parameters(
                    outcome.parameters, reset_optimizer=True
                )
        return outcomes
