"""The ``batched`` execution backend: one numpy program for the fleet.

Serial/thread/process all run each device's control loop as its own
Python-level loop — ~100µs of interpreter work per device-step. The
:class:`BatchedFleet` backend instead advances every device in
lockstep: per control step it

* builds all devices' normalised state vectors,
* runs one stacked forward pass (:class:`~repro.nn.batched.StackedMLP`)
  for all action-value predictions,
* vectorises softmax exploration across the device axis,
* steps each device's (cheap, stateful) simulator,
* appends all transitions to a columnar
  :class:`~repro.rl.replay.StackedReplayStore`, and
* trains every device whose update is due through one stacked
  forward/Huber/backward/Adam pass.

RNG contract (the reason this stays bit-identical to serial)
------------------------------------------------------------
Each device keeps its *own* generators, consumed in the exact pattern
serial code uses:

* action sampling draws exactly one ``random()`` from the device's
  softmax RNG per training step and reproduces
  ``Generator.choice(n, p=...)`` arithmetic (normalised inclusive
  cumsum, ``searchsorted``-right) vectorised across devices;
* replay sampling calls each device's buffer RNG with the same
  ``choice(size, batch_size, replace=size < batch_size)`` arguments
  ``ReplayBuffer.sample`` uses;
* simulator RNGs advance inside the per-device ``environment.step``
  calls, untouched by batching.

Floating-point equality holds because every stacked op the backend
uses is verified bit-equal to its per-device form at runtime
(:func:`~repro.nn.batched.stacked_ops_bitexact`); if that probe ever
fails on an exotic BLAS build, the backend silently degrades to the
serial per-device path rather than produce drifting results.

Eligibility and fallback
------------------------
Only devices running the paper's stock stack — a
:class:`~repro.control.neural.NeuralPowerController` over a
:class:`~repro.rl.agent.NeuralBanditAgent` with plain
MLP/Adam/ReplayBuffer/HuberLoss/exponential-temperature pieces, with
hyperparameters matching the first such device — join the stacked
group. Everything else (guarded controllers, profit baselines,
prioritized replay, heterogeneous configs) is handled by its own
:class:`~repro.parallel.worker.DeviceActor` exactly as under the
serial backend. Any non-training task batch (evaluation, controller
calls, checkpoints) first syncs the stacked state back into the
per-device objects, so those paths — and everything downstream of
them — see state bit-identical to a serial run's.
"""

from __future__ import annotations

import time
import traceback
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.control.neural import NeuralPowerController
from repro.control.runtime import ControlSession
from repro.errors import SimulationError
from repro.nn.batched import StackedAdam, StackedMLP, stacked_ops_bitexact
from repro.nn.losses import HuberLoss
from repro.nn.network import MLP
from repro.nn.optimizers import Adam
from repro.obs.flight import FlightRecord
from repro.obs.logging import get_logger
from repro.parallel.payloads import StepsOutcome, StepsTask, WorkerSpec
from repro.parallel.worker import DeviceActor
from repro.rl.agent import NeuralBanditAgent
from repro.rl.policies import SoftmaxPolicy
from repro.rl.replay import ReplayBuffer, StackedReplayStore
from repro.rl.rewards import PowerEfficiencyReward
from repro.rl.schedules import ExponentialDecaySchedule
from repro.rl.state import NUM_STATE_FEATURES, StateNormalizer
from repro.sim.trace import StepRecord

_LOG = get_logger("parallel.batched")


def _actor_eligible(actor: DeviceActor) -> bool:
    """Whether an actor runs the exact stack the group vectorises.

    Checks are by concrete type (``type() is``), not ``isinstance`` —
    a subclass may override any method the group bypasses, so it must
    take the serial fallback path.
    """
    controller = actor.controller
    if type(controller) is not NeuralPowerController:
        return False
    if type(actor.session) is not ControlSession:
        return False
    agent = controller.agent
    return (
        type(agent) is NeuralBanditAgent
        and type(agent.network) is MLP
        and type(agent.optimizer) is Adam
        and type(agent.replay) is ReplayBuffer
        and type(agent.loss) is HuberLoss
        and type(agent.temperature_schedule) is ExponentialDecaySchedule
        and type(agent._softmax) is SoftmaxPolicy
        and type(controller.normalizer) is StateNormalizer
        and agent.num_features == NUM_STATE_FEATURES
        # value() must stay strictly positive or serial would raise
        # inside softmax — keep that error path on the serial side.
        and agent.temperature_schedule.minimum > 0.0
    )


def _agents_compatible(agent: NeuralBanditAgent, reference: NeuralBanditAgent) -> bool:
    """Whether two eligible agents can share one stacked group."""
    schedule, ref_schedule = agent.temperature_schedule, reference.temperature_schedule
    optimizer, ref_optimizer = agent.optimizer, reference.optimizer
    return (
        agent.network.layer_sizes == reference.network.layer_sizes
        and agent.num_actions == reference.num_actions
        and agent.batch_size == reference.batch_size
        and agent.update_interval == reference.update_interval
        and agent.replay.capacity == reference.replay.capacity
        and agent.loss.delta == reference.loss.delta
        and optimizer.learning_rate == ref_optimizer.learning_rate
        and optimizer.beta1 == ref_optimizer.beta1
        and optimizer.beta2 == ref_optimizer.beta2
        and optimizer.epsilon == ref_optimizer.epsilon
        and schedule.initial == ref_schedule.initial
        and schedule.rate == ref_schedule.rate
        and schedule.minimum == ref_schedule.minimum
    )


class _StackedGroup:
    """The vectorised state of every grouped device.

    On construction the group *adopts* each actor's live state —
    network parameters, Adam moments, replay contents, agent/session
    counters — into stacked arrays and becomes authoritative for them.
    :meth:`sync_back` writes everything into the per-device objects
    again; the owning :class:`BatchedFleet` calls it (and drops the
    group) before any non-training task runs.
    """

    def __init__(self, actors: Sequence[DeviceActor]) -> None:
        self._actors = list(actors)
        self.rows: Dict[str, int] = {
            actor.device_name: row for row, actor in enumerate(self._actors)
        }
        agents = [actor.controller.agent for actor in self._actors]
        reference = agents[0]
        self.num_devices = len(agents)
        self._network = StackedMLP.from_networks([a.network for a in agents])
        # Serial parameter order (weight, bias, weight, bias, ...).
        self._param_stacks: List[np.ndarray] = [
            array
            for pair in zip(self._network.weights, self._network.biases)
            for array in pair
        ]
        self._optimizer = StackedAdam.from_optimizers(
            [a.optimizer for a in agents],
            [p.shape for p in reference.network.parameters],
        )
        self._replay = StackedReplayStore(
            self.num_devices, reference.replay.capacity, reference.num_features
        )
        for row, agent in enumerate(agents):
            self._replay.adopt_row(row, agent.replay)
        self._batch_size = reference.batch_size
        self._update_interval = reference.update_interval
        self._huber_delta = reference.loss.delta
        self._schedule = reference.temperature_schedule
        self._temperature_cache: Dict[int, float] = {}

        # Adopted per-device counters (plain Python scalars: the hot
        # loop reads/writes them per device, where ndarray scalar
        # boxing would dominate).
        self._step_counts = [agent._step_count for agent in agents]
        self._update_counts = [agent._update_count for agent in agents]
        self._last_losses = [agent._last_loss for agent in agents]
        self._last_greedy = [agent._last_action_greedy for agent in agents]
        self._global_steps = [a.session._global_step for a in self._actors]
        self._decision_times = [a.session._decision_time_s for a in self._actors]
        self._decision_counts = [a.session._decision_count for a in self._actors]
        self._violation_counts = [a.session._violation_count for a in self._actors]
        self._snapshots = [a.session._snapshot for a in self._actors]

        # Cached per-row plumbing.
        self._device_names = [a.device_name for a in self._actors]
        self._environments = [a.environment for a in self._actors]
        self._env_steps = [a.environment.step for a in self._actors]
        self._reward_fns = [a.controller.reward for a in self._actors]
        # When every device runs the stock Eq.-4 reward, the fast path
        # inlines its (pure-float) piecewise arithmetic instead of
        # paying a method call per device-step.
        self._reward_inline = all(
            type(fn) is PowerEfficiencyReward for fn in self._reward_fns
        )
        self._reward_params = [
            (fn.max_frequency_hz, fn.power_limit_w, fn.offset_w)
            if type(fn) is PowerEfficiencyReward
            else None
            for fn in self._reward_fns
        ]
        self._softmax_gens = [a._softmax._rng for a in agents]
        self._softmax_draws = [a._softmax._rng.random for a in agents]
        self._replay_rngs = [a.replay._rng for a in agents]
        self._power_limits = [a.session.power_limit_w for a in self._actors]
        self._flights = [a.flight for a in self._actors]
        self._norm_scales = [
            (
                a.controller.normalizer.max_frequency_hz,
                a.controller.normalizer.power_scale_w,
                a.controller.normalizer.ipc_scale,
                a.controller.normalizer.mpki_scale,
            )
            for a in self._actors
        ]
        # Divisor matrix matching StateNormalizer.vectorize: dividing
        # the raw (freq, power, ipc, miss_rate, mpki) row element-wise
        # by this row yields the same doubles as the serial per-scalar
        # divisions (miss_rate's divisor is exactly 1.0).
        self._scale_matrix = np.array(
            [
                (max_f, power_scale, ipc_scale, 1.0, mpki_scale)
                for max_f, power_scale, ipc_scale, mpki_scale in self._norm_scales
            ],
            dtype=np.float64,
        )
        self._all_rows_list = list(range(self.num_devices))
        self._arange_rows = np.arange(self.num_devices, dtype=np.int64)
        self._any_flight = any(f is not None for f in self._flights)
        self._rewards_buffer = np.empty(self.num_devices, dtype=np.float64)
        self._grad_out_buffer: Optional[np.ndarray] = None

    # -- state hand-back ----------------------------------------------
    def sync_back(self) -> None:
        """Write all stacked state back into the per-device objects."""
        for row, actor in enumerate(self._actors):
            agent = actor.controller.agent
            self._network.store_row(row, agent.network)
            self._optimizer.store_row(row, agent.optimizer)
            self._replay.export_row(row, agent.replay)
            agent._step_count = self._step_counts[row]
            agent._update_count = self._update_counts[row]
            agent._last_loss = self._last_losses[row]
            agent._last_action_greedy = self._last_greedy[row]
            session = actor.session
            session._snapshot = self._snapshots[row]
            session._global_step = self._global_steps[row]
            session._decision_time_s = self._decision_times[row]
            session._decision_count = self._decision_counts[row]
            session._violation_count = self._violation_counts[row]

    # -- the lockstep loop --------------------------------------------
    def run_steps(
        self,
        tasks: Dict[str, StepsTask],
        round_index: int,
        num_steps: int,
        train: bool,
    ) -> Dict[str, StepsOutcome]:
        batch_start = time.perf_counter()
        errors: Dict[int, str] = {}
        records: Dict[int, List[StepRecord]] = {}
        active: List[int] = []
        latency_starts: Dict[int, float] = {}
        open_scopes = []

        # Per-task prologue, in task (device) order — install shipped
        # parameters, fire fault injectors, start unstarted sessions.
        for name, task in tasks.items():
            row = self.rows[name]
            actor = self._actors[row]
            latency_starts[row] = self._decision_times[row]
            if actor.profiler is not None:
                # Keep the serial scope open for the whole batch so the
                # per-step control.act/control.learn/sim.step emissions
                # nest under control.run_steps exactly as serial nests
                # them.
                scope = actor.profiler.scope("control.run_steps")
                scope.__enter__()
                open_scopes.append(scope)
            try:
                if task.parameters is not None:
                    self._network.set_row_parameters(row, task.parameters)
                    if task.reset_optimizer:
                        self._optimizer.reset_rows([row])
                if actor.fault_injector is not None:
                    actor.fault_injector(name, round_index)
                if num_steps <= 0:
                    raise SimulationError(
                        f"num_steps must be positive, got {num_steps}"
                    )
                if self._snapshots[row] is None:
                    self._snapshots[row] = self._environments[row].reset(None)
            except Exception:
                errors[row] = traceback.format_exc()
                continue
            records[row] = []
            active.append(row)

        profiled = any(actor.profiler is not None for actor in self._actors)
        if profiled or self._any_flight:
            self._lockstep_instrumented(
                active, records, errors, round_index, num_steps, train, profiled
            )
        else:
            self._lockstep_fast(
                active, records, errors, round_index, num_steps, train
            )

        for scope in open_scopes:
            scope.__exit__(None, None, None)

        # Per-task epilogue: metric emission (success only, serial call
        # order) and outcome assembly.
        total_elapsed = time.perf_counter() - batch_start
        duration_share = total_elapsed / max(1, len(tasks))
        outcomes: Dict[str, StepsOutcome] = {}
        for name, task in tasks.items():
            row = self.rows[name]
            actor = self._actors[row]
            error = errors.get(row)
            task_records = records.get(row, []) if error is None else []
            if error is None and actor.metrics is not None:
                actor.metrics.observe(
                    "control.decision_latency_s",
                    (self._decision_times[row] - latency_starts[row])
                    / num_steps,
                )
                actor.metrics.inc("control.steps", num_steps)
                actor.metrics.observe(
                    "control.mean_step_reward",
                    sum(record.reward for record in task_records) / num_steps,
                )
            parameters = None
            if error is None and task.return_parameters:
                parameters = self._network.get_row_parameters(row)
            latency: Optional[float] = None
            if self._decision_counts[row] > 0:
                latency = self._decision_times[row] / self._decision_counts[row]
            outcomes[name] = StepsOutcome(
                device=name,
                records=task_records,
                parameters=parameters,
                error=error,
                duration_s=duration_share,
                mean_decision_latency_s=latency,
                telemetry=actor._dump_telemetry(),
            )
        return outcomes

    def _lockstep_fast(
        self,
        active: List[int],
        records: Dict[int, List[StepRecord]],
        errors: Dict[int, str],
        round_index: int,
        num_steps: int,
        train: bool,
    ) -> None:
        """Hot path: no profiler and no flight recorder attached.

        One pass per step — act, step the simulators, build trace
        records and train — with the per-step telemetry emission of the
        instrumented path compiled out. Produces byte-identical
        records, replay contents, parameters and RNG streams; only
        timing *attribution* differs (decision time is apportioned once
        per batch instead of per step, which the equivalence contract
        never compares because timings are machine noise anyway).
        """
        live = list(active)
        if not live:
            return
        all_rows_list = self._all_rows_list
        env_steps = self._env_steps
        reward_fns = self._reward_fns
        reward_inline = self._reward_inline
        reward_params = self._reward_params
        snapshots = self._snapshots
        scale_matrix = self._scale_matrix
        step_counts = self._step_counts
        global_steps = self._global_steps
        decision_counts = self._decision_counts
        device_names = self._device_names
        last_greedy = self._last_greedy
        cache = self._temperature_cache
        schedule_value = self._schedule.value
        interval = self._update_interval
        num_devices = self.num_devices
        predict = self._network.predict
        rewards_buffer = self._rewards_buffer
        record_new = StepRecord.__new__
        record_cls = StepRecord
        acts = [0] * num_devices

        if train:
            # Pre-draw each live device's softmax uniforms in one batch
            # (``Generator.random(n)`` consumes the stream exactly like
            # n scalar calls). A device that errors out mid-batch must
            # not have consumed draws past its failure point, so its
            # generator state is restored and replayed afterwards.
            draw_states = {
                row: self._softmax_gens[row].bit_generator.state
                for row in live
            }
            pre_draws = np.empty((len(live), num_steps), dtype=np.float64)
            for position, row in enumerate(live):
                pre_draws[position] = self._softmax_draws[row](num_steps)
            position_of = {row: position for row, position in
                           zip(live, range(len(live)))}
            initial_live = list(live)
            live_positions: Optional[np.ndarray] = None
            consumed_at_death: Dict[int, int] = {}
            draws_done = 0

        loop_start = time.perf_counter()
        for _ in range(num_steps):
            if not live:
                break
            count = len(live)
            full = live == all_rows_list
            raw: List[float] = []
            extend = raw.extend
            for row in live:
                snap = snapshots[row]
                extend(
                    (
                        snap.frequency_hz,
                        snap.power_w,
                        snap.ipc,
                        snap.miss_rate,
                        snap.mpki,
                    )
                )
            states = np.asarray(raw, dtype=np.float64).reshape(
                count, NUM_STATE_FEATURES
            )
            if full:
                rows_arg = None
                np.divide(states, scale_matrix, out=states)
            else:
                rows_arg = np.asarray(live, dtype=np.int64)
                np.divide(states, scale_matrix[rows_arg], out=states)
            values = predict(states, rows_arg)

            if not np.isfinite(values).all():
                # Serial raises inside Generator.choice before drawing;
                # mirror that — error the offending devices without
                # consuming their softmax streams.
                finite = np.isfinite(values).all(axis=1)
                bad = [live[i] for i in range(count) if not finite[i]]
                for row in bad:
                    try:
                        raise ValueError("probabilities do not sum to 1")
                    except ValueError:
                        errors[row] = traceback.format_exc()
                    records[row] = []
                    if train:
                        consumed_at_death[row] = draws_done
                live = [row for row in live if row not in bad]
                if train:
                    live_positions = None
                if not live:
                    break
                keep = np.flatnonzero(finite)
                states = states[keep]
                values = values[keep]
                count = len(live)
                full = live == all_rows_list
                rows_arg = None if full else np.asarray(live, dtype=np.int64)

            if train:
                # All devices advance in lockstep, so their step counts
                # are normally identical — one temperature covers the
                # whole fleet. Heterogeneous counts (after a partial
                # failure) fall back to per-device lookups.
                first_count = step_counts[live[0]]
                if full:
                    aligned = step_counts.count(first_count) == num_devices
                else:
                    aligned = all(
                        step_counts[row] == first_count for row in live
                    )
                if aligned:
                    tau = cache.get(first_count)
                    if tau is None:
                        tau = schedule_value(first_count)
                        cache[first_count] = tau
                    scaled = values / tau
                else:
                    temperatures = np.empty(count, dtype=np.float64)
                    for position, row in enumerate(live):
                        steps = step_counts[row]
                        tau = cache.get(steps)
                        if tau is None:
                            tau = schedule_value(steps)
                            cache[steps] = tau
                        temperatures[position] = tau
                    scaled = values / temperatures[:, None]
                # Vectorised softmax + Generator.choice(p=...) internals:
                # same scalar ops per row as repro.utils.math.softmax
                # followed by numpy's normalised-cumsum inversion.
                scaled -= scaled.max(axis=1, keepdims=True)
                np.exp(scaled, out=scaled)
                probabilities = scaled / scaled.sum(axis=1)[:, None]
                cdf = probabilities.cumsum(axis=1)
                cdf /= cdf[:, -1].copy()[:, None]
                if live == initial_live:
                    uniforms = pre_draws[:, draws_done]
                else:
                    if live_positions is None:
                        live_positions = np.asarray(
                            [position_of[row] for row in live],
                            dtype=np.int64,
                        )
                    uniforms = pre_draws[live_positions, draws_done]
                draws_done += 1
                actions = (cdf <= uniforms[:, None]).sum(axis=1)
                greedy_list = (actions == values.argmax(axis=1)).tolist()
            else:
                aligned = False
                actions = values.argmax(axis=1)
                greedy_list = None
            actions_list = actions.tolist()

            if train and aligned:
                advanced = first_count + 1
                all_due = advanced % interval == 0
            else:
                advanced = 0
                all_due = False

            failed: List[int] = []
            due: List[int] = []
            update_failed = False
            for position, row in enumerate(live):
                decision_counts[row] += 1
                acts[row] += 1
                try:
                    after = env_steps[row](actions_list[position])
                    if reward_inline:
                        performance = after.frequency_hz / reward_params[row][0]
                        power = after.power_w
                        p_crit = reward_params[row][1]
                        k = reward_params[row][2]
                        if power <= p_crit:
                            reward = performance
                        elif power <= p_crit + k:
                            reward = performance * (p_crit + k - power) / k
                        elif power <= p_crit + 2.0 * k:
                            reward = (p_crit + k - power) / k
                        else:
                            reward = -1.0
                    else:
                        reward = reward_fns[row](
                            after.frequency_hz, after.power_w
                        )
                except Exception:
                    errors[row] = traceback.format_exc()
                    records[row] = []
                    failed.append(position)
                    if train:
                        consumed_at_death[row] = draws_done
                    continue
                rewards_buffer[position] = reward
                # Frozen-dataclass construction via __init__ costs ~3x
                # this (13 object.__setattr__ calls); populating the
                # instance dict directly builds an equal record.
                record = record_new(record_cls)
                record.__dict__.update(
                    step=global_steps[row],
                    device=device_names[row],
                    application=after.application,
                    action_index=actions_list[position],
                    frequency_hz=after.frequency_hz,
                    power_w=after.power_w,
                    ipc=after.ipc,
                    mpki=after.mpki,
                    miss_rate=after.miss_rate,
                    ips=after.ips,
                    reward=reward,
                    round_index=round_index,
                    temperature_c=after.temperature_c,
                )
                records[row].append(record)
                snapshots[row] = after
                global_steps[row] += 1
                if train:
                    if aligned:
                        step_counts[row] = advanced
                        if all_due:
                            due.append(row)
                    else:
                        new_count = step_counts[row] + 1
                        step_counts[row] = new_count
                        if new_count % interval == 0:
                            due.append(row)
                    last_greedy[row] = greedy_list[position]
                else:
                    last_greedy[row] = True

            if train and len(failed) != count:
                if failed:
                    failed_set = set(failed)
                    keep = np.asarray(
                        [p for p in range(count) if p not in failed_set],
                        dtype=np.int64,
                    )
                    learn_rows = (
                        np.asarray(live, dtype=np.int64)
                        if rows_arg is None
                        else rows_arg
                    )[keep]
                    self._replay.append_rows(
                        learn_rows,
                        states[keep],
                        actions[keep],
                        rewards_buffer[keep],
                    )
                else:
                    learn_rows = (
                        self._arange_rows if rows_arg is None else rows_arg
                    )
                    self._replay.append_rows(
                        learn_rows, states, actions, rewards_buffer[:count]
                    )
                if due:
                    try:
                        self._update_rows(due)
                    except Exception:
                        failure = traceback.format_exc()
                        for row in due:
                            errors[row] = failure
                            records[row] = []
                            if train:
                                consumed_at_death[row] = draws_done
                        update_failed = True
            if failed or update_failed:
                live = [row for row in live if row not in errors]
                if train:
                    live_positions = None

        loop_elapsed = time.perf_counter() - loop_start

        if train and consumed_at_death:
            # Rewind over-consumed softmax streams: a dead device's
            # generator must sit exactly where serial would have left
            # it (one draw per training step it survived to).
            for row, used in consumed_at_death.items():
                generator = self._softmax_gens[row]
                generator.bit_generator.state = draw_states[row]
                if used:
                    generator.random(used)

        total_acts = sum(acts)
        if total_acts:
            share = loop_elapsed / total_acts
            for row, acted in enumerate(acts):
                if acted:
                    self._decision_times[row] += share * acted

    def _lockstep_instrumented(
        self,
        active: List[int],
        records: Dict[int, List[StepRecord]],
        errors: Dict[int, str],
        round_index: int,
        num_steps: int,
        train: bool,
        profiled: bool,
    ) -> None:
        """Lockstep loop with per-step telemetry (profiler/flight).

        Functionally identical to :meth:`_lockstep_fast`; additionally
        emits ``control.act``/``control.learn`` profiler samples and
        flight records per step, exactly like a serial session, which
        costs a second per-device pass per step.
        """
        live = list(active)
        env_steps = self._env_steps
        reward_fns = self._reward_fns
        snapshots = self._snapshots
        norm_scales = self._norm_scales
        step_counts = self._step_counts
        draws = self._softmax_draws
        cache = self._temperature_cache
        schedule_value = self._schedule.value
        interval = self._update_interval
        all_rows_list = self._all_rows_list

        for _ in range(num_steps):
            if not live:
                break
            step_start = time.perf_counter()
            count = len(live)
            states = np.empty((count, NUM_STATE_FEATURES), dtype=np.float64)
            for position, row in enumerate(live):
                snap = snapshots[row]
                max_f, power_scale, ipc_scale, mpki_scale = norm_scales[row]
                target = states[position]
                target[0] = snap.frequency_hz / max_f
                target[1] = snap.power_w / power_scale
                target[2] = snap.ipc / ipc_scale
                target[3] = snap.miss_rate
                target[4] = snap.mpki / mpki_scale
            rows_arg = None if live == all_rows_list else np.asarray(live)
            values = self._network.predict(states, rows_arg)

            if not np.isfinite(values).all():
                # Serial raises inside Generator.choice before drawing;
                # mirror that — error the offending devices without
                # consuming their softmax streams.
                finite = np.isfinite(values).all(axis=1)
                bad = [live[i] for i in range(count) if not finite[i]]
                for row in bad:
                    try:
                        raise ValueError("probabilities do not sum to 1")
                    except ValueError:
                        errors[row] = traceback.format_exc()
                    records[row] = []
                live = [row for row in live if row not in bad]
                if not live:
                    break
                keep = np.flatnonzero(finite)
                states = states[keep]
                values = values[keep]
                count = len(live)
                rows_arg = (
                    None if live == all_rows_list else np.asarray(live)
                )

            if train:
                temperatures = np.empty(count, dtype=np.float64)
                for position, row in enumerate(live):
                    steps = step_counts[row]
                    tau = cache.get(steps)
                    if tau is None:
                        tau = schedule_value(steps)
                        cache[steps] = tau
                    temperatures[position] = tau
                # Vectorised softmax + Generator.choice(p=...) internals:
                # same scalar ops per row as repro.utils.math.softmax
                # followed by numpy's normalised-cumsum inversion.
                scaled = values / temperatures[:, None]
                scaled -= scaled.max(axis=1, keepdims=True)
                np.exp(scaled, out=scaled)
                probabilities = scaled / scaled.sum(axis=1)[:, None]
                cdf = probabilities.cumsum(axis=1)
                cdf /= cdf[:, -1].copy()[:, None]
                uniforms = np.empty(count, dtype=np.float64)
                for position, row in enumerate(live):
                    uniforms[position] = draws[row]()
                actions = (cdf <= uniforms[:, None]).sum(axis=1)
                greedy_flags = (actions == values.argmax(axis=1)).tolist()
            else:
                actions = values.argmax(axis=1)
                greedy_flags = None
            actions_list = actions.tolist()

            act_elapsed = time.perf_counter() - step_start

            # Per-device simulator stepping + rewards (stateful Python
            # models — the intentionally serial part of the step).
            afters: List[object] = [None] * count
            rewards_list: List[float] = [0.0] * count
            survivors: List[int] = []
            for position, row in enumerate(live):
                self._decision_counts[row] += 1
                try:
                    after = env_steps[row](actions_list[position])
                    rewards_list[position] = reward_fns[row](
                        after.frequency_hz, after.power_w
                    )
                except Exception:
                    errors[row] = traceback.format_exc()
                    records[row] = []
                    continue
                afters[position] = after
                survivors.append(position)

            due: List[int] = []
            if train and survivors:
                if len(survivors) == count:
                    learn_rows = np.asarray(live, dtype=np.int64)
                    learn_states = states
                    learn_actions = actions
                    learn_rewards = np.asarray(rewards_list, dtype=np.float64)
                else:
                    keep = np.asarray(survivors, dtype=np.int64)
                    learn_rows = np.asarray(live, dtype=np.int64)[keep]
                    learn_states = states[keep]
                    learn_actions = actions[keep]
                    learn_rewards = np.asarray(
                        [rewards_list[i] for i in survivors], dtype=np.float64
                    )
                self._replay.append_rows(
                    learn_rows, learn_states, learn_actions, learn_rewards
                )
                for position in survivors:
                    row = live[position]
                    advanced = step_counts[row] + 1
                    step_counts[row] = advanced
                    if advanced % interval == 0:
                        due.append(row)
                if due:
                    try:
                        self._update_rows(due)
                    except Exception:
                        failure = traceback.format_exc()
                        for row in due:
                            errors[row] = failure
                            records[row] = []
                        due = []
                        survivors = [
                            position
                            for position in survivors
                            if live[position] not in errors
                        ]

            step_elapsed = time.perf_counter() - step_start
            learn_share = (
                (step_elapsed - act_elapsed) / count if count else 0.0
            )
            act_share = act_elapsed / count if count else 0.0
            due_set = set(due)

            next_live: List[int] = []
            for position in survivors:
                row = live[position]
                after = afters[position]
                reward = rewards_list[position]
                self._decision_times[row] += act_share + (
                    learn_share if train else 0.0
                )
                if profiled:
                    profiler = self._actors[row].profiler
                    if profiler is not None:
                        profiler.add("control.act", act_share)
                        if train:
                            profiler.add("control.learn", learn_share)
                global_step = self._global_steps[row]
                records[row].append(
                    StepRecord(
                        step=global_step,
                        device=self._device_names[row],
                        application=after.application,
                        action_index=actions_list[position],
                        frequency_hz=after.frequency_hz,
                        power_w=after.power_w,
                        ipc=after.ipc,
                        mpki=after.mpki,
                        miss_rate=after.miss_rate,
                        ips=after.ips,
                        reward=reward,
                        round_index=round_index,
                        temperature_c=after.temperature_c,
                    )
                )
                flight = self._flights[row]
                if flight is not None:
                    before = snapshots[row]
                    limit = self._power_limits[row]
                    violated = limit is not None and after.power_w > limit
                    if violated:
                        self._violation_counts[row] += 1
                    updated = train and row in due_set
                    flight.record(
                        FlightRecord(
                            device=self._device_names[row],
                            round_index=round_index,
                            step=global_step,
                            obs_frequency_hz=before.frequency_hz,
                            obs_power_w=before.power_w,
                            obs_ipc=before.ipc,
                            obs_mpki=before.mpki,
                            action_index=actions_list[position],
                            action_frequency_hz=after.frequency_hz,
                            reward=reward,
                            greedy=(
                                greedy_flags[position] if train else True
                            ),
                            violated=violated,
                            violations=self._violation_counts[row],
                            temperature_c=after.temperature_c,
                            loss=self._last_losses[row] if updated else None,
                            fallback=False,
                        )
                    )
                snapshots[row] = after
                self._global_steps[row] = global_step + 1
                self._last_greedy[row] = (
                    greedy_flags[position] if train else True
                )
                next_live.append(row)
            live = next_live

    def _update_rows(self, due: List[int]) -> None:
        """One stacked gradient step for every device in ``due``.

        Reproduces ``NeuralBanditAgent.update`` per row: sample from
        the device's replay (its own RNG), forward the batch, Huber
        residual on the taken actions only, backprop, Adam. When every
        device is due at once (the common phase-aligned case) the
        parameter/moment math runs in place on the stacks — same
        doubles, none of the gather/scatter copies.
        """
        rngs = [self._replay_rngs[row] for row in due]
        states, actions, rewards = self._replay.sample_rows(
            due, rngs, self._batch_size
        )
        rows = (
            None
            if due == self._all_rows_list
            else np.asarray(due, dtype=np.int64)
        )
        predictions, caches = self._network.forward(states, rows)
        taken = np.take_along_axis(predictions, actions[:, :, None], axis=2)[
            :, :, 0
        ]
        residual = taken - rewards
        delta = self._huber_delta
        abs_residual = np.abs(residual)
        elementwise = np.where(
            abs_residual <= delta,
            0.5 * residual**2,
            delta * (abs_residual - 0.5 * delta),
        )
        loss_rows = np.mean(elementwise, axis=1)
        residual_grad = np.clip(residual, -delta, delta) / residual.shape[1]
        if rows is None:
            grad_output = self._grad_out_buffer
            if grad_output is None or grad_output.shape != predictions.shape:
                grad_output = np.empty_like(predictions)
                self._grad_out_buffer = grad_output
            grad_output.fill(0.0)
        else:
            grad_output = np.zeros_like(predictions)
        np.put_along_axis(
            grad_output, actions[:, :, None], residual_grad[:, :, None], axis=2
        )
        gradients = self._network.backward(grad_output, caches, rows)
        self._optimizer.step_rows(rows, self._param_stacks, gradients)
        for position, row in enumerate(due):
            self._update_counts[row] += 1
            self._last_losses[row] = float(loss_rows[position])


def _build_group(actors: Sequence[DeviceActor]) -> Optional[_StackedGroup]:
    """Group every compatible actor; ``None`` when batching cannot help."""
    if not stacked_ops_bitexact():
        _LOG.warning(
            "stacked numpy ops are not bit-exact on this build; "
            "batched backend falls back to per-device execution"
        )
        return None
    eligible = [actor for actor in actors if _actor_eligible(actor)]
    if not eligible:
        return None
    reference = eligible[0].controller.agent
    matched = [
        actor
        for actor in eligible
        if _agents_compatible(actor.controller.agent, reference)
    ]
    if len(matched) < 2:
        return None
    return _StackedGroup(matched)


class BatchedFleet:
    """Backend running all eligible devices as one stacked computation.

    Interface-compatible with the serial/thread/process backends:
    builds one :class:`DeviceActor` per spec (same construction order,
    hence identical seed paths), answers ``run_tasks`` batches. Pure
    training batches go through the vectorised lockstep loop; anything
    else syncs the stacked state back and runs on the per-device
    actors, which keeps evaluation, checkpointing, guard probes and
    controller fetches bit-identical to serial.
    """

    name = "batched"

    def __init__(
        self, specs: Sequence[WorkerSpec], workers: Optional[int] = None
    ) -> None:
        # ``workers`` is accepted for interface parity; lockstep
        # vectorisation has no worker count.
        del workers
        self._actors = {spec.device_name: DeviceActor(spec) for spec in specs}
        self._group: Optional[_StackedGroup] = None
        self._group_built = False

    def run_tasks(self, tasks: Dict[str, object]) -> Dict[str, object]:
        if tasks and all(isinstance(task, StepsTask) for task in tasks.values()):
            return self._run_steps_batch(tasks)
        self._release_group()
        return {
            name: self._actors[name].handle(task) for name, task in tasks.items()
        }

    def _run_steps_batch(self, tasks: Dict[str, StepsTask]) -> Dict[str, object]:
        group = self._ensure_group()
        outcomes: Dict[str, object] = {}
        grouped: Dict[Tuple[int, int, bool], Dict[str, StepsTask]] = {}
        for name, task in tasks.items():
            if group is not None and name in group.rows:
                key = (task.round_index, task.num_steps, task.train)
                grouped.setdefault(key, {})[name] = task
            else:
                # Ineligible devices take the exact serial path.
                outcomes[name] = self._actors[name].handle(task)
        for (round_index, num_steps, train), subset in grouped.items():
            outcomes.update(
                group.run_steps(subset, round_index, num_steps, train)
            )
        return outcomes

    def _ensure_group(self) -> Optional[_StackedGroup]:
        if not self._group_built:
            self._group = _build_group(list(self._actors.values()))
            self._group_built = True
            if self._group is not None:
                _LOG.info(
                    "stacked group formed",
                    extra={
                        "devices": len(self._actors),
                        "grouped": self._group.num_devices,
                    },
                )
        return self._group

    def _release_group(self) -> None:
        """Sync stacked state back and force a rebuild on next training.

        Dropping (rather than keeping) the group is deliberate: a
        controller call, evaluation or state install may mutate or
        replace the per-device objects, so adopted state could go
        stale. Rebuilding re-adopts and re-checks eligibility.
        """
        if self._group is not None:
            self._group.sync_back()
            self._group = None
        self._group_built = False

    def close(self) -> None:
        self._group = None
        self._group_built = False
        self._actors.clear()
