"""Device actors: the worker half of the parallel execution engine.

A :class:`DeviceActor` is one simulated edge device living inside a
worker (a thread of the driver process or a dedicated child process).
It is built once from a picklable :class:`~repro.parallel.payloads.WorkerSpec`
and then serves tasks for the whole run — its environment, controller,
replay buffer and RNG streams persist across federated rounds, so only
model parameters and result summaries ever cross the boundary.

Telemetry: the actor records into *private* sinks (its own
:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.profile.ScopeProfiler` and
:class:`~repro.obs.flight.FlightRecorder`, created only when the
driver has the matching sink attached) and drains them into a
:class:`~repro.parallel.payloads.TelemetryDump` after every steps task.
The driver merges dumps in deterministic device order, reproducing the
exact stream a serial run emits. Nothing here touches the ambient
:mod:`repro.obs.context` — thread workers must not see the driver's
thread-local sinks, and fork-started process workers must not use an
inherited copy of them.
"""

from __future__ import annotations

import time
import traceback
from typing import Optional

from repro.control.runtime import ControlSession
from repro.errors import SimulationError
from repro.obs.flight import FlightRecorder
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ScopeProfiler
from repro.obs.sink import EventBuffer
from repro.parallel.payloads import (
    CallOutcome,
    CallTask,
    EvalOutcome,
    EvalTask,
    FetchControllerTask,
    FetchStateTask,
    InstallStateTask,
    StepsOutcome,
    StepsTask,
    TelemetryDump,
    WorkerSpec,
)

#: Handshake value a process worker sends once its actor is built.
WORKER_READY = "ready"


class DeviceActor:
    """One device's persistent state plus its task dispatcher."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.device_name = spec.device_name
        self.metrics: Optional[MetricsRegistry] = (
            MetricsRegistry() if spec.collect_metrics else None
        )
        self.profiler: Optional[ScopeProfiler] = (
            ScopeProfiler() if spec.collect_profile else None
        )
        self.flight: Optional[FlightRecorder] = (
            FlightRecorder(
                capacity=spec.flight_capacity,
                sample_every=spec.flight_sample_every,
            )
            if spec.flight_capacity is not None
            else None
        )
        self.events: Optional[EventBuffer] = (
            EventBuffer() if spec.collect_events else None
        )
        parts = spec.builder(
            device_name=spec.device_name,
            metrics=self.metrics,
            profiler=self.profiler,
            **spec.kwargs,
        )
        self.environment = parts.environment
        self.controller = parts.controller
        self.evaluator = parts.evaluator
        self.eval_controller = parts.eval_controller
        self.fault_injector = parts.fault_injector
        self.session = ControlSession(
            self.environment,
            self.controller,
            metrics=self.metrics,
            flight=self.flight,
            profiler=self.profiler,
            events=self.events,
        )

    # -- dispatch ------------------------------------------------------
    def handle(self, task):
        """Execute one task; never raises (errors ride in the outcome)."""
        if isinstance(task, StepsTask):
            return self._run_steps(task)
        if isinstance(task, EvalTask):
            return self._evaluate(task)
        if isinstance(task, CallTask):
            return self._call(task)
        if isinstance(task, FetchControllerTask):
            return CallOutcome(self.device_name, value=self.controller)
        if isinstance(task, FetchStateTask):
            return self._fetch_state()
        if isinstance(task, InstallStateTask):
            return self._install_state(task)
        return CallOutcome(
            self.device_name, error=f"unknown task type {type(task).__name__}"
        )

    # -- task handlers -------------------------------------------------
    def _run_steps(self, task: StepsTask) -> StepsOutcome:
        start = time.perf_counter()
        error: Optional[str] = None
        records = []
        try:
            if task.parameters is not None:
                self.controller.agent.set_parameters(
                    task.parameters, reset_optimizer=task.reset_optimizer
                )
            if self.fault_injector is not None:
                self.fault_injector(self.device_name, task.round_index)
            records = self.session.run_steps(
                task.num_steps,
                round_index=task.round_index,
                train=task.train,
                record=False,
            )
        except Exception:
            error = traceback.format_exc()
            records = []
        parameters = None
        if error is None and task.return_parameters:
            parameters = self.controller.agent.get_parameters()
        try:
            latency: Optional[float] = self.session.mean_decision_latency_s()
        except SimulationError:
            latency = None
        return StepsOutcome(
            device=self.device_name,
            records=records,
            parameters=parameters,
            error=error,
            duration_s=time.perf_counter() - start,
            mean_decision_latency_s=latency,
            telemetry=self._dump_telemetry(),
        )

    def _evaluate(self, task: EvalTask) -> EvalOutcome:
        try:
            if self.evaluator is None:
                raise SimulationError(
                    f"actor {self.device_name!r} was built without an evaluator"
                )
            if task.parameters is not None:
                target = self.eval_controller
                target.agent.set_parameters(task.parameters)
            else:
                target = self.controller
            rows = self.evaluator.evaluate_device(
                self.device_name, target, task.round_index
            )
            return EvalOutcome(self.device_name, evaluations=rows)
        except Exception:
            return EvalOutcome(self.device_name, error=traceback.format_exc())

    def _call(self, task: CallTask) -> CallOutcome:
        try:
            value = getattr(self.controller, task.method)(*task.args)
            return CallOutcome(self.device_name, value=value)
        except Exception:
            return CallOutcome(self.device_name, error=traceback.format_exc())

    # -- checkpoint state ----------------------------------------------
    def _fetch_state(self) -> CallOutcome:
        try:
            # Imported lazily: most runs never checkpoint.
            from repro.faults.recovery import capture_device_state

            eval_environment = (
                self.evaluator.get_environment(self.device_name)
                if self.evaluator is not None
                else None
            )
            blob = capture_device_state(
                self.environment,
                self.controller,
                self.session,
                eval_environment=eval_environment,
            )
            return CallOutcome(self.device_name, value=blob)
        except Exception:
            return CallOutcome(self.device_name, error=traceback.format_exc())

    def _install_state(self, task: InstallStateTask) -> CallOutcome:
        try:
            from repro.faults.recovery import (
                restore_device_state,
                restore_session_state,
            )

            payload = restore_device_state(
                task.blob, metrics=self.metrics, profiler=self.profiler
            )
            self.environment = payload["environment"]
            self.controller = payload["controller"]
            self.session = ControlSession(
                self.environment,
                self.controller,
                metrics=self.metrics,
                flight=self.flight,
                profiler=self.profiler,
                events=self.events,
            )
            restore_session_state(self.session, payload["session"])
            if (
                payload.get("eval_environment") is not None
                and self.evaluator is not None
            ):
                self.evaluator.set_environment(
                    self.device_name, payload["eval_environment"]
                )
            return CallOutcome(self.device_name, value="installed")
        except Exception:
            return CallOutcome(self.device_name, error=traceback.format_exc())

    # -- telemetry -----------------------------------------------------
    def _dump_telemetry(self) -> Optional[TelemetryDump]:
        if (
            self.metrics is None
            and self.profiler is None
            and self.flight is None
            and self.events is None
        ):
            return None
        dump = TelemetryDump()
        if self.flight is not None:
            rows, seen, violations, fallbacks = self.flight.dump_worker_state()
            dump.flight_rows = rows
            dump.flight_seen = seen
            dump.flight_violations = violations
            dump.flight_fallbacks = fallbacks
        if self.metrics is not None:
            dump.metrics_state = self.metrics.dump_state()
            self.metrics.reset()
        if self.profiler is not None:
            dump.profile_rows = self.profiler.dump_rows()
            self.profiler.reset()
        if self.events is not None:
            dump.event_rows = self.events.drain()
        return dump


def process_worker_main(connection, spec: WorkerSpec) -> None:
    """Task loop of one child process (one device, whole run).

    Sends a ready/error handshake after construction, then answers one
    outcome per received task until the ``None`` shutdown sentinel (or
    a closed pipe) arrives.
    """
    try:
        actor = DeviceActor(spec)
    except Exception:
        try:
            connection.send(
                CallOutcome(spec.device_name, error=traceback.format_exc())
            )
        finally:
            connection.close()
        return
    connection.send(CallOutcome(spec.device_name, value=WORKER_READY))
    while True:
        try:
            task = connection.recv()
        except EOFError:
            break
        if task is None:
            break
        try:
            outcome = actor.handle(task)
        except Exception:
            outcome = CallOutcome(
                spec.device_name, error=traceback.format_exc()
            )
        connection.send(outcome)
    connection.close()
