"""Synthetic SPLASH-2 application models.

The paper's workload is twelve single-threaded applications from the
SPLASH-2 benchmark suite (Woo et al., ISCA 1995) running on a Jetson
Nano. The RL agent never inspects application code — it only observes
performance counters — so an application is modelled as a looping
sequence of *phases*, each characterised by:

``cpi_core``
    Cycles per instruction assuming a perfect memory hierarchy (the
    compute component; lower means more instruction-level parallelism).
``mpki``
    Last-level-cache misses per kilo-instruction. Misses cost fixed
    wall-clock time, so at higher frequency they consume more cycles —
    this is what makes memory-bound phases insensitive to DVFS.
``apki``
    Last-level-cache accesses per kilo-instruction; the observable miss
    rate is ``mpki / apki``.
``activity``
    Switching-activity factor scaling dynamic power while the pipeline
    is busy. Compute-dense code toggles more logic per cycle.
``instructions``
    Retired instructions per pass through the phase, sizing how long
    the phase lasts relative to the 500 ms control interval.

The numeric characteristics below follow the published SPLASH-2
characterisation qualitatively: ``radix`` and ``ocean`` are strongly
memory-bound (high MPKI, low activity), the ``water`` codes and ``lu``
are compute-bound (high ILP, tiny working sets), and the remaining
applications fall in between. Under the paper's 0.6 W budget this
yields the behaviour the experiments rely on: memory-bound applications
are power-safe even at 1479 MHz, while compute-bound ones must be
throttled to mid-table frequencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Phase:
    """One execution phase of an application (see module docstring)."""

    name: str
    instructions: float
    cpi_core: float
    mpki: float
    apki: float
    activity: float

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ConfigurationError(
                f"phase {self.name!r}: instructions must be positive"
            )
        if self.cpi_core <= 0:
            raise ConfigurationError(
                f"phase {self.name!r}: cpi_core must be positive"
            )
        if self.mpki < 0:
            raise ConfigurationError(f"phase {self.name!r}: mpki must be >= 0")
        if self.apki <= 0:
            raise ConfigurationError(f"phase {self.name!r}: apki must be positive")
        if self.mpki > self.apki:
            raise ConfigurationError(
                f"phase {self.name!r}: mpki ({self.mpki}) cannot exceed "
                f"apki ({self.apki})"
            )
        if self.activity <= 0:
            raise ConfigurationError(
                f"phase {self.name!r}: activity must be positive"
            )

    @property
    def miss_rate(self) -> float:
        """LLC miss rate (misses / accesses), one of the state features."""
        return self.mpki / self.apki


class ApplicationModel:
    """An application as a looping sequence of phases.

    The processor consumes phase instructions as it executes; once the
    final phase completes the application wraps to the first phase
    (SPLASH-2 kernels iterate over timesteps), so an application can be
    run for an arbitrary number of control intervals.
    """

    def __init__(self, name: str, phases: Sequence[Phase]) -> None:
        if not phases:
            raise ConfigurationError(f"application {name!r} needs at least 1 phase")
        self.name = name
        self.phases: Tuple[Phase, ...] = tuple(phases)

    @property
    def total_instructions(self) -> float:
        """Instructions in one full iteration — the unit of "one run"
        used for execution-time metrics (Table III / Fig. 5)."""
        return sum(phase.instructions for phase in self.phases)

    def phase_at(self, position: int) -> Phase:
        """Phase at a (wrapping) position index."""
        return self.phases[position % len(self.phases)]

    def __repr__(self) -> str:
        return f"ApplicationModel({self.name!r}, {len(self.phases)} phases)"


def _phases(*rows: Tuple[str, float, float, float, float, float]) -> List[Phase]:
    return [
        Phase(name, instructions, cpi_core, mpki, apki, activity)
        for name, instructions, cpi_core, mpki, apki, activity in rows
    ]


_GIGA = 1.0e9

#: Phase tables for the twelve SPLASH-2 applications of the evaluation.
_SPLASH2_PHASES: Dict[str, List[Phase]] = {
    "fft": _phases(
        ("butterfly", 12.0 * _GIGA, 0.80, 1.0, 40.0, 1.00),
        ("transpose", 8.0 * _GIGA, 0.95, 14.0, 55.0, 0.80),
    ),
    "lu": _phases(
        ("factor", 16.0 * _GIGA, 0.75, 1.2, 35.0, 1.05),
        ("pivot", 4.0 * _GIGA, 1.00, 3.0, 45.0, 0.90),
    ),
    "raytrace": _phases(
        ("trace", 14.0 * _GIGA, 1.30, 7.5, 50.0, 0.80),
        ("shade", 6.0 * _GIGA, 1.05, 3.0, 38.0, 0.92),
    ),
    "volrend": _phases(
        ("render", 15.0 * _GIGA, 1.00, 1.8, 30.0, 0.95),
        ("rotate", 5.0 * _GIGA, 0.90, 5.0, 42.0, 0.85),
    ),
    "water-ns": _phases(
        ("forces", 17.0 * _GIGA, 0.85, 0.4, 18.0, 1.10),
        ("update", 3.0 * _GIGA, 0.95, 1.5, 25.0, 0.95),
    ),
    "water-sp": _phases(
        ("forces", 16.0 * _GIGA, 0.88, 0.6, 20.0, 1.08),
        ("boxes", 4.0 * _GIGA, 1.00, 2.5, 30.0, 0.90),
    ),
    "ocean": _phases(
        ("stencil", 13.0 * _GIGA, 0.90, 20.0, 70.0, 0.75),
        ("multigrid", 7.0 * _GIGA, 0.95, 15.0, 60.0, 0.78),
    ),
    "radix": _phases(
        ("histogram", 6.0 * _GIGA, 0.75, 18.0, 65.0, 0.75),
        ("permute", 14.0 * _GIGA, 0.70, 26.0, 80.0, 0.70),
    ),
    "fmm": _phases(
        ("interactions", 15.0 * _GIGA, 0.90, 1.0, 25.0, 1.00),
        ("treebuild", 5.0 * _GIGA, 1.20, 6.0, 45.0, 0.82),
    ),
    "radiosity": _phases(
        ("visibility", 12.0 * _GIGA, 1.05, 2.2, 32.0, 0.92),
        ("refine", 8.0 * _GIGA, 1.15, 4.5, 40.0, 0.86),
    ),
    "barnes": _phases(
        ("treewalk", 14.0 * _GIGA, 1.15, 6.0, 48.0, 0.85),
        ("forces", 6.0 * _GIGA, 0.90, 2.0, 28.0, 1.00),
    ),
    "cholesky": _phases(
        ("supernode", 13.0 * _GIGA, 0.85, 4.5, 42.0, 0.95),
        ("scatter", 7.0 * _GIGA, 1.00, 9.0, 52.0, 0.82),
    ),
}

#: Names of the twelve evaluation applications, in the paper's order
#: of first mention (Table II, scenarios 1-3).
SPLASH2_APPLICATION_NAMES: Tuple[str, ...] = (
    "fft",
    "lu",
    "raytrace",
    "volrend",
    "water-ns",
    "water-sp",
    "ocean",
    "radix",
    "fmm",
    "radiosity",
    "barnes",
    "cholesky",
)


def splash2_application(name: str, problem_scale: float = 1.0) -> ApplicationModel:
    """Build one named SPLASH-2 application model.

    ``problem_scale`` multiplies every phase's instruction count —
    SPLASH-2 kernels take input-size parameters, and a larger input
    runs proportionally longer without changing the per-instruction
    compute/memory character (cache behaviour is modelled at the
    steady-state working set, which these kernels reach quickly).
    A fresh :class:`ApplicationModel` is returned on every call so
    callers can mutate execution state independently.
    """
    if name not in _SPLASH2_PHASES:
        raise ConfigurationError(
            f"unknown SPLASH-2 application {name!r}; "
            f"available: {', '.join(SPLASH2_APPLICATION_NAMES)}"
        )
    if problem_scale <= 0:
        raise ConfigurationError(
            f"problem_scale must be positive, got {problem_scale}"
        )
    phases = _SPLASH2_PHASES[name]
    if problem_scale != 1.0:
        phases = [
            Phase(
                name=phase.name,
                instructions=phase.instructions * problem_scale,
                cpi_core=phase.cpi_core,
                mpki=phase.mpki,
                apki=phase.apki,
                activity=phase.activity,
            )
            for phase in phases
        ]
    return ApplicationModel(name, phases)


def splash2_suite() -> Dict[str, ApplicationModel]:
    """All twelve applications keyed by name."""
    return {name: splash2_application(name) for name in SPLASH2_APPLICATION_NAMES}
