"""Steppable processor simulator.

:class:`SimulatedProcessor` composes the OPP table, performance model,
power model and sensors into the object a power controller interacts
with: set a V/f level, let the workload run for one control interval,
read back the counters. Execution is phase-accurate — an interval may
span several workload phases, and all reported counters are
time-weighted over exactly the segments that ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SimulationError
from repro.sim.opp import OPPTable, OperatingPoint
from repro.sim.perf_model import PerformanceModel
from repro.sim.power_model import PowerModel
from repro.sim.sensors import CounterSampler, PowerSensor
from repro.sim.thermal import ThermalModel
from repro.sim.workload import ApplicationModel, Phase
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class ProcessorSnapshot:
    """Counters observed over one completed control interval.

    ``power_w``, ``ipc``, ``mpki`` and ``miss_rate`` carry sensor noise
    (they are what the agent sees); the ``true_*`` twins are the
    simulator's ground truth, used by evaluation metrics that a real
    testbed would obtain from external instrumentation.
    """

    time_s: float
    frequency_index: int
    frequency_hz: float
    power_w: float
    ipc: float
    mpki: float
    miss_rate: float
    ips: float
    instructions: float
    application: str
    phase: str
    true_power_w: float
    true_ips: float
    temperature_c: Optional[float] = None


class SimulatedProcessor:
    """One simulated Cortex-A57 core with DVFS.

    Parameters
    ----------
    opp_table:
        The discrete V/f levels (defaults are injected by
        :func:`repro.sim.device.build_default_device`).
    performance_model, power_model:
        The analytic models; see their modules.
    power_sensor, counter_sampler:
        Optional measurement-noise models. ``None`` disables noise.
    thermal_model:
        Optional RC thermal node; when present, die temperature evolves
        with dissipated power and (if the power model couples leakage
        to temperature) feeds back into static power.
    workload_jitter:
        Relative magnitude of per-interval log-normal jitter applied to
        the active phase's CPI and MPKI — real phases are not perfectly
        stationary.
    transition_overhead_s:
        Wall-clock stall after a V/f change (PLL relock + voltage ramp).
        During the stall the core retires no instructions and draws the
        clock-gated power floor. The paper's footnote 1 notes real
        switches take microseconds; the default of zero matches its
        idealisation, and the ``ablation_transition`` experiment
        explores larger values.
    """

    def __init__(
        self,
        opp_table: OPPTable,
        performance_model: PerformanceModel,
        power_model: PowerModel,
        power_sensor: Optional[PowerSensor] = None,
        counter_sampler: Optional[CounterSampler] = None,
        thermal_model: Optional[ThermalModel] = None,
        workload_jitter: float = 0.05,
        transition_overhead_s: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        self.opp_table = opp_table
        self.performance_model = performance_model
        self.power_model = power_model
        self.power_sensor = power_sensor
        self.counter_sampler = counter_sampler
        self.thermal_model = thermal_model
        self.workload_jitter = require_non_negative("workload_jitter", workload_jitter)
        self.transition_overhead_s = require_non_negative(
            "transition_overhead_s", transition_overhead_s
        )
        self._rng = as_generator(seed)
        self._pending_transition = False
        self._frequency_index = 0
        self._application: Optional[ApplicationModel] = None
        self._phase_position = 0
        self._phase_remaining_instructions = 0.0
        self._time_s = 0.0
        self._total_instructions = 0.0

    @property
    def frequency_index(self) -> int:
        return self._frequency_index

    @property
    def operating_point(self) -> OperatingPoint:
        return self.opp_table[self._frequency_index]

    @property
    def application(self) -> Optional[ApplicationModel]:
        return self._application

    @property
    def time_s(self) -> float:
        """Simulated wall-clock time elapsed so far."""
        return self._time_s

    @property
    def total_instructions(self) -> float:
        """Instructions retired since construction."""
        return self._total_instructions

    def load_application(self, application: ApplicationModel) -> None:
        """Switch the core to ``application``, starting at its first phase."""
        self._application = application
        self._phase_position = 0
        self._phase_remaining_instructions = application.phases[0].instructions

    def set_frequency_index(self, index: int) -> None:
        """Apply a V/f level; raises for indices outside the OPP table.

        An actual level *change* marks a pending transition whose
        stall (if configured) is charged at the start of the next step.
        """
        self.opp_table[index]  # validates the index
        if index != self._frequency_index:
            self._pending_transition = True
        self._frequency_index = index

    def set_frequency(self, frequency_hz: float) -> None:
        """Apply the level nearest to ``frequency_hz`` (cpufreq-style)."""
        self.set_frequency_index(self.opp_table.nearest_index(frequency_hz))

    def step(self, duration_s: float) -> ProcessorSnapshot:
        """Run the loaded application for ``duration_s`` at the current level.

        Returns time-weighted counters over the interval. Crossing phase
        boundaries inside the interval is handled exactly: each phase
        segment contributes in proportion to the wall-clock time it ran.
        """
        require_positive("duration_s", duration_s)
        if self._application is None:
            raise SimulationError("no application loaded; call load_application first")

        op = self.operating_point
        temperature = (
            self.thermal_model.temperature_c if self.thermal_model is not None else None
        )
        jitter = self._draw_jitter()

        remaining_s = duration_s
        instructions = 0.0
        energy_j = 0.0
        ipc_time = 0.0
        mpki_time = 0.0
        miss_rate_time = 0.0
        dominant_phase = self._current_phase()
        dominant_phase_time = 0.0

        if self._pending_transition and self.transition_overhead_s > 0.0:
            stall_s = min(self.transition_overhead_s, remaining_s)
            stall_phase = self._jittered_phase(self._current_phase(), jitter)
            stall_power = self.power_model.total_power(
                op, stall_phase.activity, 0.0, temperature_c=temperature
            )
            energy_j += stall_power * stall_s
            remaining_s -= stall_s
        self._pending_transition = False

        while remaining_s > 1e-12:
            phase = self._current_phase()
            effective = self._jittered_phase(phase, jitter)
            perf = self.performance_model.evaluate(effective, op.frequency_hz)
            power = self.power_model.total_power(
                op, effective.activity, perf.duty, temperature_c=temperature
            )

            time_to_finish_phase = self._phase_remaining_instructions / perf.ips
            segment_s = min(remaining_s, time_to_finish_phase)
            segment_instructions = perf.ips * segment_s

            instructions += segment_instructions
            energy_j += power * segment_s
            ipc_time += perf.ipc * segment_s
            mpki_time += effective.mpki * segment_s
            miss_rate_time += effective.miss_rate * segment_s
            if segment_s > dominant_phase_time:
                dominant_phase = phase
                dominant_phase_time = segment_s

            self._phase_remaining_instructions -= segment_instructions
            remaining_s -= segment_s
            if self._phase_remaining_instructions <= 1e-6:
                self._advance_phase()

        self._time_s += duration_s
        self._total_instructions += instructions

        true_power = energy_j / duration_s
        true_ips = instructions / duration_s
        if self.thermal_model is not None:
            temperature = self.thermal_model.update(true_power, duration_s)

        measured_power = (
            self.power_sensor.measure(true_power)
            if self.power_sensor is not None
            else true_power
        )
        ipc = ipc_time / duration_s
        mpki = mpki_time / duration_s
        miss_rate = miss_rate_time / duration_s
        if self.counter_sampler is not None:
            ipc = self.counter_sampler.measure(ipc)
            mpki = self.counter_sampler.measure(mpki)
            miss_rate = min(self.counter_sampler.measure(miss_rate), 1.0)

        return ProcessorSnapshot(
            time_s=self._time_s,
            frequency_index=self._frequency_index,
            frequency_hz=op.frequency_hz,
            power_w=measured_power,
            ipc=ipc,
            mpki=mpki,
            miss_rate=miss_rate,
            ips=true_ips,
            instructions=instructions,
            application=self._application.name,
            phase=dominant_phase.name,
            true_power_w=true_power,
            true_ips=true_ips,
            temperature_c=temperature,
        )

    def _current_phase(self) -> Phase:
        assert self._application is not None
        return self._application.phase_at(self._phase_position)

    def _advance_phase(self) -> None:
        assert self._application is not None
        self._phase_position += 1
        self._phase_remaining_instructions = self._application.phase_at(
            self._phase_position
        ).instructions

    def _draw_jitter(self) -> tuple:
        """Per-interval multiplicative jitter for (CPI, MPKI)."""
        if self.workload_jitter == 0.0:
            return (1.0, 1.0)
        return (
            float(np.exp(self._rng.normal(0.0, self.workload_jitter))),
            float(np.exp(self._rng.normal(0.0, self.workload_jitter))),
        )

    @staticmethod
    def _jittered_phase(phase: Phase, jitter: tuple) -> Phase:
        cpi_mult, mpki_mult = jitter
        if cpi_mult == 1.0 and mpki_mult == 1.0:
            return phase
        return Phase(
            name=phase.name,
            instructions=phase.instructions,
            cpi_core=phase.cpi_core * cpi_mult,
            mpki=min(phase.mpki * mpki_mult, phase.apki),
            apki=phase.apki,
            activity=phase.activity,
        )
