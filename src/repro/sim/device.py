"""Edge devices: a processor plus an application schedule.

The paper's setting (Section IV-A): each device repeatedly executes a
small set of assigned applications, switching between them at
unpredictable times — "devices often execute a few frequent workloads
while occasionally encountering new ones". :class:`AppSchedule` models
that non-uniform arrival process; :class:`EdgeDevice` binds it to a
:class:`~repro.sim.processor.SimulatedProcessor`; and
:class:`DeviceEnvironment` exposes the gym-style ``reset``/``step``
interface the RL agents consume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.sim.opp import JETSON_NANO_OPP_TABLE, OPPTable
from repro.sim.perf_model import PerformanceModel
from repro.sim.power_model import PowerModel
from repro.sim.processor import ProcessorSnapshot, SimulatedProcessor
from repro.sim.sensors import CounterSampler, PowerSensor
from repro.sim.workload import ApplicationModel, splash2_application
from repro.utils.rng import SeedLike, as_generator, spawn_generator
from repro.utils.validation import require_positive


class AppSchedule:
    """Random application arrivals with a mean dwell time.

    Each control step, the running application is swapped with
    probability ``1 / mean_dwell_steps`` for one drawn uniformly from
    the assigned set (a memoryless switch process, so dwell times are
    geometric). With a single assigned application the schedule
    degenerates to running it forever — exactly what the evaluation
    protocol needs.
    """

    def __init__(self, application_names: Sequence[str], mean_dwell_steps: int = 40) -> None:
        if not application_names:
            raise ConfigurationError("a schedule needs at least one application")
        if mean_dwell_steps < 1:
            raise ConfigurationError(
                f"mean_dwell_steps must be >= 1, got {mean_dwell_steps}"
            )
        self.application_names: List[str] = list(application_names)
        self.mean_dwell_steps = mean_dwell_steps

    def initial_application(self, rng) -> str:
        """Uniformly drawn starting application."""
        return self.application_names[int(rng.integers(0, len(self.application_names)))]

    def next_application(self, current: str, rng) -> str:
        """Application for the next step (may equal ``current``)."""
        if len(self.application_names) == 1:
            return self.application_names[0]
        if rng.random() < 1.0 / self.mean_dwell_steps:
            return self.application_names[int(rng.integers(0, len(self.application_names)))]
        return current


class EdgeDevice:
    """One named device: processor + schedule + private RNG streams."""

    def __init__(
        self,
        name: str,
        processor: SimulatedProcessor,
        schedule: AppSchedule,
        applications: Optional[Dict[str, ApplicationModel]] = None,
        seed: SeedLike = None,
    ) -> None:
        self.name = name
        self.processor = processor
        self.schedule = schedule
        self._rng = as_generator(seed)
        self._applications: Dict[str, ApplicationModel] = dict(applications or {})
        for app_name in schedule.application_names:
            if app_name not in self._applications:
                self._applications[app_name] = splash2_application(app_name)
        self._current_application: Optional[str] = None

    @property
    def current_application(self) -> Optional[str]:
        return self._current_application

    @property
    def opp_table(self) -> OPPTable:
        return self.processor.opp_table

    def application(self, name: str) -> ApplicationModel:
        """The model registered under ``name`` (loads SPLASH-2 on demand)."""
        if name not in self._applications:
            self._applications[name] = splash2_application(name)
        return self._applications[name]

    def reset(self, application_name: Optional[str] = None) -> None:
        """Load ``application_name`` (or a schedule draw) onto the core."""
        name = application_name or self.schedule.initial_application(self._rng)
        self._load(name)

    def advance_schedule(self) -> str:
        """Possibly switch the running application; returns its name."""
        if self._current_application is None:
            raise SimulationError("device not reset; call reset() first")
        upcoming = self.schedule.next_application(self._current_application, self._rng)
        if upcoming != self._current_application:
            self._load(upcoming)
        return upcoming

    def step(self, action_index: int, duration_s: float) -> ProcessorSnapshot:
        """Apply a V/f level and run the current application for one interval."""
        if self._current_application is None:
            raise SimulationError("device not reset; call reset() first")
        self.processor.set_frequency_index(action_index)
        return self.processor.step(duration_s)

    def _load(self, name: str) -> None:
        self.processor.load_application(self.application(name))
        self._current_application = name


class DeviceEnvironment:
    """Gym-style wrapper used by agents and controllers.

    ``reset`` loads an application and performs one warm-up interval at
    the lowest V/f level so the first observation contains valid
    counters (a real controller also starts from whatever the previous
    interval measured). ``step`` applies an action, optionally lets the
    schedule switch applications, runs one control interval, and
    returns the resulting snapshot — from which the caller computes the
    reward (Eq. 4 needs exactly ``f_{t+1}`` and ``P_{t+1}``).

    ``metrics``/``profiler`` are optional :mod:`repro.obs` sinks:
    attached, each interval lands in the ``sim.step`` profile scope and
    application switches tick ``sim.app_switches``; unattached, both
    cost one ``None`` check per step.
    """

    def __init__(
        self,
        device: EdgeDevice,
        control_interval_s: float = 0.5,
        schedule_switching: bool = True,
        metrics=None,
        profiler=None,
    ) -> None:
        self.device = device
        self.control_interval_s = require_positive(
            "control_interval_s", control_interval_s
        )
        self.schedule_switching = schedule_switching
        self.metrics = metrics
        self.profiler = profiler

    @property
    def num_actions(self) -> int:
        return self.device.opp_table.num_levels

    def reset(self, application_name: Optional[str] = None) -> ProcessorSnapshot:
        """Load an application and return the warm-up observation."""
        self.device.reset(application_name)
        if self.metrics is not None:
            self.metrics.inc("sim.resets")
        return self.device.step(0, self.control_interval_s)

    def step(self, action_index: int) -> ProcessorSnapshot:
        """One control interval under ``action_index``."""
        if self.profiler is not None:
            with self.profiler.scope("sim.step"):
                return self._step(action_index)
        return self._step(action_index)

    def _step(self, action_index: int) -> ProcessorSnapshot:
        if self.schedule_switching:
            running = self.device.current_application
            upcoming = self.device.advance_schedule()
            if self.metrics is not None and upcoming != running:
                self.metrics.inc("sim.app_switches")
        return self.device.step(action_index, self.control_interval_s)


def build_default_device(
    name: str,
    application_names: Sequence[str],
    seed: SeedLike = None,
    mean_dwell_steps: int = 40,
    opp_table: Optional[OPPTable] = None,
    power_noise_std_w: float = 0.01,
    counter_noise_relative_std: float = 0.02,
    workload_jitter: float = 0.05,
    applications: Optional[Dict[str, ApplicationModel]] = None,
) -> EdgeDevice:
    """Assemble a Jetson-Nano-like :class:`EdgeDevice`.

    All stochastic components receive independent streams spawned from
    ``seed``, so a fleet of devices built from distinct seeds is fully
    reproducible. ``applications`` registers custom models (e.g.
    generated ones) under their names; unlisted names fall back to the
    SPLASH-2 suite.
    """
    root = as_generator(seed)
    processor = SimulatedProcessor(
        opp_table=opp_table or JETSON_NANO_OPP_TABLE,
        performance_model=PerformanceModel(),
        power_model=PowerModel(),
        power_sensor=PowerSensor(noise_std_w=power_noise_std_w, seed=spawn_generator(root, 0)),
        counter_sampler=CounterSampler(
            relative_std=counter_noise_relative_std, seed=spawn_generator(root, 1)
        ),
        workload_jitter=workload_jitter,
        seed=spawn_generator(root, 2),
    )
    schedule = AppSchedule(application_names, mean_dwell_steps=mean_dwell_steps)
    return EdgeDevice(
        name,
        processor,
        schedule,
        applications=applications,
        seed=spawn_generator(root, 3),
    )
