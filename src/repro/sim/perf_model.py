"""Analytic performance model.

Maps an application phase and an operating frequency to the performance
counters the power controller observes. The central mechanism is the
classic two-component CPI decomposition:

``CPI(f) = CPI_core + MPKI/1000 · t_miss · f``

A last-level-cache miss stalls the core for a fixed *wall-clock* DRAM
latency ``t_miss``, so its cost in cycles grows linearly with frequency.
Consequences the agent must learn:

* compute-bound phases (low MPKI): IPS ≈ f / CPI_core scales with DVFS;
* memory-bound phases (high MPKI): IPS saturates at
  ``1000 / (MPKI · t_miss)`` — raising the frequency buys almost no
  performance while still costing power.

The *duty* factor (fraction of cycles the pipeline is busy rather than
stalled) feeds the power model: a stalled core clock-gates most of its
logic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, SimulationError
from repro.sim.workload import Phase


@dataclass(frozen=True)
class PhasePerformance:
    """Performance of one phase at one frequency."""

    frequency_hz: float
    ips: float
    ipc: float
    cpi: float
    duty: float
    mpki: float
    miss_rate: float


class PerformanceModel:
    """Two-component CPI model with fixed-latency memory.

    Parameters
    ----------
    miss_penalty_s:
        Wall-clock stall per last-level-cache miss. The default of
        80 ns reflects LPDDR4 access latency on Jetson-class hardware.
    """

    def __init__(self, miss_penalty_s: float = 80e-9) -> None:
        if miss_penalty_s <= 0:
            raise ConfigurationError(
                f"miss_penalty_s must be positive, got {miss_penalty_s}"
            )
        self.miss_penalty_s = miss_penalty_s

    def memory_cycles_per_instruction(self, phase: Phase, frequency_hz: float) -> float:
        """Stall cycles per instruction at ``frequency_hz``."""
        if frequency_hz <= 0:
            raise SimulationError(
                f"frequency must be positive, got {frequency_hz}"
            )
        return phase.mpki / 1000.0 * self.miss_penalty_s * frequency_hz

    def evaluate(self, phase: Phase, frequency_hz: float) -> PhasePerformance:
        """Performance counters for ``phase`` at ``frequency_hz``."""
        memory_cpi = self.memory_cycles_per_instruction(phase, frequency_hz)
        cpi = phase.cpi_core + memory_cpi
        ipc = 1.0 / cpi
        ips = frequency_hz / cpi
        duty = phase.cpi_core / cpi
        return PhasePerformance(
            frequency_hz=frequency_hz,
            ips=ips,
            ipc=ipc,
            cpi=cpi,
            duty=duty,
            mpki=phase.mpki,
            miss_rate=phase.miss_rate,
        )

    def saturation_ips(self, phase: Phase) -> float:
        """Upper bound of IPS as frequency goes to infinity.

        Finite only for phases with memory traffic; compute-only phases
        scale indefinitely in this model.
        """
        # Guard the product, not mpki alone: a subnormal mpki can
        # underflow the multiplication to exactly zero.
        denominator = phase.mpki * self.miss_penalty_s
        if denominator == 0.0:
            return float("inf")
        return 1000.0 / denominator
