"""Operating-performance-point (OPP) tables.

Modern processors expose a set of discrete frequency levels; selecting a
frequency automatically applies the corresponding voltage (footnote 1 of
the paper). The agent's action space is exactly this table
(``A = {V/f_1 ... V/f_K}``, Section III-A).

:data:`JETSON_NANO_OPP_TABLE` reproduces the 15 CPU frequency levels of
the NVIDIA Jetson Nano used in the paper's evaluation (102 MHz to
1479 MHz, shared across the four Cortex-A57 cores). The voltages follow
the near-linear V/f relationship of its DVFS rail, from 0.80 V at the
lowest to 1.23 V at the highest level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError

MHZ = 1.0e6
GHZ = 1.0e9


@dataclass(frozen=True)
class OperatingPoint:
    """One V/f level: an index, a frequency in Hz and a voltage in V."""

    index: int
    frequency_hz: float
    voltage_v: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ConfigurationError(f"OPP index must be >= 0, got {self.index}")
        if self.frequency_hz <= 0:
            raise ConfigurationError(
                f"OPP frequency must be positive, got {self.frequency_hz}"
            )
        if self.voltage_v <= 0:
            raise ConfigurationError(
                f"OPP voltage must be positive, got {self.voltage_v}"
            )


class OPPTable:
    """Ordered collection of operating points.

    Points must be strictly increasing in both frequency and voltage,
    mirroring a real DVFS rail where higher frequencies require at least
    as much voltage.
    """

    def __init__(self, points: Sequence[OperatingPoint]) -> None:
        if len(points) < 2:
            raise ConfigurationError(
                f"an OPP table needs at least 2 levels, got {len(points)}"
            )
        for position, point in enumerate(points):
            if point.index != position:
                raise ConfigurationError(
                    f"OPP at position {position} carries index {point.index}; "
                    "indices must be consecutive from 0"
                )
        frequencies = [p.frequency_hz for p in points]
        voltages = [p.voltage_v for p in points]
        if any(b <= a for a, b in zip(frequencies, frequencies[1:])):
            raise ConfigurationError("OPP frequencies must be strictly increasing")
        if any(b < a for a, b in zip(voltages, voltages[1:])):
            raise ConfigurationError("OPP voltages must be non-decreasing")
        self._points: Tuple[OperatingPoint, ...] = tuple(points)

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[OperatingPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> OperatingPoint:
        if not 0 <= index < len(self._points):
            raise SimulationError(
                f"OPP index {index} out of range [0, {len(self._points) - 1}]"
            )
        return self._points[index]

    @property
    def num_levels(self) -> int:
        """Number of V/f levels ``K`` (the agent's action count)."""
        return len(self._points)

    @property
    def min_frequency_hz(self) -> float:
        return self._points[0].frequency_hz

    @property
    def max_frequency_hz(self) -> float:
        """``f_max``, the normaliser of the paper's reward (Eq. 4)."""
        return self._points[-1].frequency_hz

    @property
    def frequencies_hz(self) -> List[float]:
        return [p.frequency_hz for p in self._points]

    @property
    def voltages_v(self) -> List[float]:
        return [p.voltage_v for p in self._points]

    def nearest_index(self, frequency_hz: float) -> int:
        """Index of the level whose frequency is closest to ``frequency_hz``."""
        if frequency_hz <= 0:
            raise SimulationError(
                f"frequency must be positive, got {frequency_hz}"
            )
        best_index = 0
        best_distance = abs(self._points[0].frequency_hz - frequency_hz)
        for point in self._points[1:]:
            distance = abs(point.frequency_hz - frequency_hz)
            if distance < best_distance:
                best_index = point.index
                best_distance = distance
        return best_index

    def normalized_frequency(self, index: int) -> float:
        """``f_k / f_max`` — the performance surrogate of Eq. (4)."""
        return self[index].frequency_hz / self.max_frequency_hz


def _jetson_nano_points() -> List[OperatingPoint]:
    frequencies_mhz = [
        102.0,
        204.0,
        307.2,
        403.2,
        518.4,
        614.4,
        710.4,
        825.6,
        921.6,
        1036.8,
        1132.8,
        1224.0,
        1326.0,
        1428.0,
        1479.0,
    ]
    v_min, v_max = 0.80, 1.23
    f_min, f_max = frequencies_mhz[0], frequencies_mhz[-1]
    points = []
    for index, f_mhz in enumerate(frequencies_mhz):
        fraction = (f_mhz - f_min) / (f_max - f_min)
        # Mildly super-linear V(f): real rails step voltage faster near
        # the top of the frequency range.
        voltage = v_min + (v_max - v_min) * (0.6 * fraction + 0.4 * fraction**2)
        points.append(OperatingPoint(index, f_mhz * MHZ, round(voltage, 4)))
    return points


#: The 15 CPU V/f levels of the NVIDIA Jetson Nano (paper, Section IV).
JETSON_NANO_OPP_TABLE = OPPTable(_jetson_nano_points())
