"""Execution trace recording.

Controllers and experiment harnesses append one :class:`StepRecord` per
control interval; the recorder offers the aggregations the paper
reports (mean reward per round, constraint-violation rate, average
power/IPS) plus raw-row export for offline analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Iterator, List, Optional, Sequence


@dataclass(frozen=True)
class StepRecord:
    """Everything observed in one control interval."""

    step: int
    device: str
    application: str
    action_index: int
    frequency_hz: float
    power_w: float
    ipc: float
    mpki: float
    miss_rate: float
    ips: float
    reward: float
    round_index: int = 0
    temperature_c: Optional[float] = None


class TraceRecorder:
    """Append-only store of :class:`StepRecord` with aggregation helpers."""

    def __init__(self) -> None:
        self._records: List[StepRecord] = []

    def record(self, record: StepRecord) -> None:
        self._records.append(record)

    def extend(self, records: Sequence[StepRecord]) -> None:
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[StepRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[StepRecord]:
        """The raw records (a copy; the recorder stays append-only)."""
        return list(self._records)

    def filter(
        self,
        device: Optional[str] = None,
        application: Optional[str] = None,
        round_index: Optional[int] = None,
    ) -> "TraceRecorder":
        """A new recorder holding the records matching every criterion."""
        selected = TraceRecorder()
        for record in self._records:
            if device is not None and record.device != device:
                continue
            if application is not None and record.application != application:
                continue
            if round_index is not None and record.round_index != round_index:
                continue
            selected.record(record)
        return selected

    def mean(self, field_name: str) -> float:
        """Mean of a numeric record field (e.g. ``"reward"``)."""
        if not self._records:
            raise ValueError("trace is empty")
        values = [getattr(record, field_name) for record in self._records]
        return sum(values) / len(values)

    def mean_reward(self) -> float:
        return self.mean("reward")

    def mean_power_w(self) -> float:
        return self.mean("power_w")

    def mean_ips(self) -> float:
        return self.mean("ips")

    def violation_rate(self, power_limit_w: float) -> float:
        """Fraction of intervals whose power exceeded ``power_limit_w``."""
        if not self._records:
            raise ValueError("trace is empty")
        violations = sum(1 for r in self._records if r.power_w > power_limit_w)
        return violations / len(self._records)

    def rewards_by_round(self) -> Dict[int, float]:
        """Mean reward per federated round, for Fig. 3-style curves."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for record in self._records:
            sums[record.round_index] = sums.get(record.round_index, 0.0) + record.reward
            counts[record.round_index] = counts.get(record.round_index, 0) + 1
        return {r: sums[r] / counts[r] for r in sorted(sums)}

    def to_rows(self) -> List[Dict[str, object]]:
        """Records as plain dicts (for CSV export or DataFrame loading)."""
        names = [f.name for f in fields(StepRecord)]
        return [{name: getattr(r, name) for name in names} for r in self._records]

    def to_csv(self, path) -> int:
        """Write all records as CSV; returns the number of data rows.

        The column order matches :class:`StepRecord`'s field order, so
        files from different runs line up for diffing and plotting.
        """
        import csv

        names = [f.name for f in fields(StepRecord)]
        with open(path, "w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=names)
            writer.writeheader()
            for row in self.to_rows():
                writer.writerow(row)
        return len(self._records)
