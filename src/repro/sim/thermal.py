"""First-order RC thermal model (extension, not used by the paper).

The paper explicitly neglects the power → temperature → leakage loop
(footnote 2), which is what licenses the contextual-bandit formulation.
This model exists for the ablation that checks how much that
approximation costs: enable it on the processor together with a
non-zero ``leakage_temperature_coefficient`` on the power model and the
environment gains slow state the bandit cannot see.

Dynamics: ``T' = T + dt/τ · (T_amb + R_th · P − T)`` — a single thermal
node with resistance ``R_th`` to ambient and time constant ``τ``.
"""

from __future__ import annotations

from repro.utils.validation import require_positive


class ThermalModel:
    """Single-node RC thermal dynamics."""

    def __init__(
        self,
        thermal_resistance_c_per_w: float = 8.0,
        time_constant_s: float = 20.0,
        ambient_c: float = 25.0,
    ) -> None:
        self.thermal_resistance_c_per_w = require_positive(
            "thermal_resistance_c_per_w", thermal_resistance_c_per_w
        )
        self.time_constant_s = require_positive("time_constant_s", time_constant_s)
        self.ambient_c = ambient_c
        self._temperature_c = ambient_c

    @property
    def temperature_c(self) -> float:
        """Current die temperature in Celsius."""
        return self._temperature_c

    def steady_state_c(self, power_w: float) -> float:
        """Temperature this power level would converge to."""
        return self.ambient_c + self.thermal_resistance_c_per_w * power_w

    def update(self, power_w: float, dt_s: float) -> float:
        """Advance the node by ``dt_s`` under dissipation ``power_w``.

        Uses the exact exponential solution of the linear ODE so large
        control intervals (500 ms) stay numerically well-behaved.
        """
        require_positive("dt_s", dt_s)
        target = self.steady_state_c(power_w)
        import math

        decay = math.exp(-dt_s / self.time_constant_s)
        self._temperature_c = target + (self._temperature_c - target) * decay
        return self._temperature_c

    def reset(self) -> None:
        """Return the node to ambient temperature."""
        self._temperature_c = self.ambient_c
