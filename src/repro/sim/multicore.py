"""Multi-core cluster with a shared clock (extension).

The evaluation hardware "contains four ARM Cortex-A57 cores with a
shared clock signal" (Section IV); the paper's workload keeps one core
busy. This module models the full cluster: every core runs its own
application (or idles, power-gated to leakage), all cores switch V/f
levels together, and the power controller observes *aggregate*
counters — total power, summed IPS, busy-core-averaged IPC/MPKI — which
is exactly what a cluster-level DVFS governor sees.

The aggregate observation is packaged as an ordinary
:class:`~repro.sim.processor.ProcessorSnapshot`, so every controller in
:mod:`repro.control` drives a multi-core cluster unchanged; per-core
detail stays available through :attr:`MultiCoreProcessor.last_per_core`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.sim.opp import OPPTable, OperatingPoint
from repro.sim.perf_model import PerformanceModel
from repro.sim.power_model import PowerModel
from repro.sim.processor import ProcessorSnapshot, SimulatedProcessor
from repro.sim.sensors import PowerSensor
from repro.sim.workload import ApplicationModel
from repro.utils.rng import SeedLike, as_generator, spawn_generator


class MultiCoreProcessor:
    """``num_cores`` cores sharing one V/f rail.

    Each core is a private :class:`SimulatedProcessor` (its own phase
    position and jitter stream) with sensor noise disabled per core;
    measurement noise is applied once, to the *aggregate* power, by the
    cluster-level sensor — matching a board with a single power rail
    monitor.
    """

    def __init__(
        self,
        num_cores: int,
        opp_table: OPPTable,
        performance_model: PerformanceModel,
        power_model: PowerModel,
        power_sensor: Optional[PowerSensor] = None,
        workload_jitter: float = 0.05,
        seed: SeedLike = None,
    ) -> None:
        if num_cores < 1:
            raise ConfigurationError(f"num_cores must be >= 1, got {num_cores}")
        root = as_generator(seed)
        self.num_cores = num_cores
        self.opp_table = opp_table
        self.power_model = power_model
        self.power_sensor = power_sensor
        self._cores: List[SimulatedProcessor] = [
            SimulatedProcessor(
                opp_table=opp_table,
                performance_model=performance_model,
                power_model=power_model,
                workload_jitter=workload_jitter,
                seed=spawn_generator(root, core_index),
            )
            for core_index in range(num_cores)
        ]
        self._active: List[bool] = [False] * num_cores
        self._frequency_index = 0
        self._time_s = 0.0
        self._last_per_core: List[Optional[ProcessorSnapshot]] = [None] * num_cores

    @property
    def frequency_index(self) -> int:
        return self._frequency_index

    @property
    def operating_point(self) -> OperatingPoint:
        return self.opp_table[self._frequency_index]

    @property
    def num_active_cores(self) -> int:
        return sum(self._active)

    @property
    def last_per_core(self) -> List[Optional[ProcessorSnapshot]]:
        """Per-core snapshots of the most recent interval (None = idle)."""
        return list(self._last_per_core)

    def load_applications(
        self, applications: Sequence[Optional[ApplicationModel]]
    ) -> None:
        """Assign one application per core; ``None`` leaves a core idle."""
        if len(applications) != self.num_cores:
            raise ConfigurationError(
                f"expected {self.num_cores} application slots, "
                f"got {len(applications)}"
            )
        if not any(app is not None for app in applications):
            raise ConfigurationError("at least one core must run an application")
        for core_index, application in enumerate(applications):
            self._active[core_index] = application is not None
            if application is not None:
                self._cores[core_index].load_application(application)

    def set_frequency_index(self, index: int) -> None:
        """Apply one V/f level to the whole cluster (shared clock)."""
        self.opp_table[index]  # validates
        self._frequency_index = index
        for core in self._cores:
            core.set_frequency_index(index)

    def step(self, duration_s: float) -> ProcessorSnapshot:
        """Advance every core by one interval; return the aggregate view."""
        if not any(self._active):
            raise SimulationError("no applications loaded; call load_applications")
        op = self.operating_point

        total_true_power = 0.0
        total_ips = 0.0
        total_instructions = 0.0
        busy_ipc = 0.0
        busy_mpki = 0.0
        busy_miss_rate = 0.0
        dominant_app = ""
        dominant_phase = ""
        dominant_ips = -1.0

        for core_index, core in enumerate(self._cores):
            if not self._active[core_index]:
                # Power-gated idle core: leakage only.
                total_true_power += self.power_model.static_power(op)
                self._last_per_core[core_index] = None
                continue
            snapshot = core.step(duration_s)
            self._last_per_core[core_index] = snapshot
            total_true_power += snapshot.true_power_w
            total_ips += snapshot.true_ips
            total_instructions += snapshot.instructions
            busy_ipc += snapshot.ipc
            busy_mpki += snapshot.mpki
            busy_miss_rate += snapshot.miss_rate
            if snapshot.true_ips > dominant_ips:
                dominant_ips = snapshot.true_ips
                dominant_app = snapshot.application
                dominant_phase = snapshot.phase

        active = self.num_active_cores
        measured_power = (
            self.power_sensor.measure(total_true_power)
            if self.power_sensor is not None
            else total_true_power
        )
        self._time_s += duration_s
        return ProcessorSnapshot(
            time_s=self._time_s,
            frequency_index=self._frequency_index,
            frequency_hz=op.frequency_hz,
            power_w=measured_power,
            ipc=busy_ipc / active,
            mpki=busy_mpki / active,
            miss_rate=busy_miss_rate / active,
            ips=total_ips,
            instructions=total_instructions,
            application=dominant_app,
            phase=dominant_phase,
            true_power_w=total_true_power,
            true_ips=total_ips,
        )
