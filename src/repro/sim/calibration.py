"""Calibration reports for new platforms.

Adopting the library on a different device means supplying an OPP
table, a power model and workload models — and then checking that the
resulting DVFS problem is *non-trivial* (per-application optimal levels
must spread across the table, otherwise a fixed frequency solves
everything and learning is pointless). :func:`calibration_table`
computes the per-application power/performance/optimal-level summary
that DESIGN.md's calibration section was derived from, and
:func:`assert_nontrivial_spread` turns the adoption check into a
one-liner usable in a user's own test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.oracle import OracleAnalyzer
from repro.errors import ConfigurationError
from repro.rl.rewards import PowerEfficiencyReward
from repro.sim.opp import OPPTable
from repro.sim.perf_model import PerformanceModel
from repro.sim.power_model import PowerModel
from repro.sim.workload import ApplicationModel
from repro.utils.tables import format_table


@dataclass(frozen=True)
class CalibrationRow:
    """Per-application calibration summary."""

    application: str
    power_at_fmax_w: float
    power_at_fmin_w: float
    optimal_level: int
    optimal_reward: float
    ips_at_optimal: float


@dataclass(frozen=True)
class CalibrationReport:
    rows: List[CalibrationRow]
    power_limit_w: float
    num_levels: int

    def level_spread(self) -> int:
        """Max minus min optimal level across applications."""
        levels = [row.optimal_level for row in self.rows]
        return max(levels) - min(levels)

    def row(self, application: str) -> CalibrationRow:
        for candidate in self.rows:
            if candidate.application == application:
                return candidate
        raise KeyError(application)

    def format(self) -> str:
        return format_table(
            [
                "application",
                "P@fmax [W]",
                "P@fmin [W]",
                "opt level",
                "opt reward",
                "IPS@opt [M]",
            ],
            [
                [
                    row.application,
                    row.power_at_fmax_w,
                    row.power_at_fmin_w,
                    row.optimal_level,
                    row.optimal_reward,
                    row.ips_at_optimal / 1e6,
                ]
                for row in self.rows
            ],
            title=f"Calibration report (P_crit={self.power_limit_w} W, "
            f"{self.num_levels} levels)",
        )


def calibration_table(
    applications: Dict[str, ApplicationModel],
    opp_table: OPPTable,
    performance_model: Optional[PerformanceModel] = None,
    power_model: Optional[PowerModel] = None,
    power_limit_w: float = 0.6,
    offset_w: float = 0.05,
) -> CalibrationReport:
    """Per-application optimal levels and power envelope."""
    if not applications:
        raise ConfigurationError("need at least one application to calibrate")
    performance_model = performance_model or PerformanceModel()
    power_model = power_model or PowerModel()
    oracle = OracleAnalyzer(
        opp_table=opp_table,
        performance_model=performance_model,
        power_model=power_model,
        reward=PowerEfficiencyReward(
            max_frequency_hz=opp_table.max_frequency_hz,
            power_limit_w=power_limit_w,
            offset_w=offset_w,
        ),
    )
    rows: List[CalibrationRow] = []
    top = opp_table.num_levels - 1
    for name in sorted(applications):
        application = applications[name]
        power_max, _, _ = oracle.application_metrics(application, top)
        power_min, _, _ = oracle.application_metrics(application, 0)
        decision = oracle.static_oracle(application)
        rows.append(
            CalibrationRow(
                application=name,
                power_at_fmax_w=power_max,
                power_at_fmin_w=power_min,
                optimal_level=decision.level,
                optimal_reward=decision.expected_reward,
                ips_at_optimal=decision.expected_ips,
            )
        )
    return CalibrationReport(
        rows=rows, power_limit_w=power_limit_w, num_levels=opp_table.num_levels
    )


def assert_nontrivial_spread(
    report: CalibrationReport, minimum_spread: int = 3
) -> None:
    """Raise unless optimal levels spread at least ``minimum_spread``.

    A spread of zero means one fixed frequency is optimal for every
    application — no DVFS policy, learned or otherwise, can add value
    on such a platform/workload combination.
    """
    spread = report.level_spread()
    if spread < minimum_spread:
        raise ConfigurationError(
            f"optimal-level spread is {spread} (< {minimum_spread}): the "
            "workload suite does not exercise DVFS meaningfully; adjust the "
            "power model, budget or applications"
        )
