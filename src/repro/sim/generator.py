"""Parameterised synthetic workload generator.

The SPLASH-2 models in :mod:`repro.sim.workload` are hand-calibrated to
the published benchmark characteristics. For studies that need *more*
workloads — generalisation tests on applications no policy has ever
seen, stress sweeps over the compute/memory spectrum — this module
generates random applications from two interpretable knobs:

``compute_intensity`` in [0, 1]
    How dense the instruction stream is: raises switching activity and
    lowers core CPI. High-intensity apps draw more power per cycle.
``memory_intensity`` in [0, 1]
    How much DRAM traffic the app produces: scales MPKI up to the
    ``radix`` ballpark. High-intensity apps stop scaling with frequency
    and stall the pipeline (drawing less power).

Generated applications are deterministic functions of the seed, so a
"suite of 8 random apps at seed 7" is a reproducible evaluation set.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.sim.workload import ApplicationModel, Phase
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_in_range, require_positive

#: MPKI of a fully memory-bound phase (the radix ballpark).
_MAX_MPKI = 26.0


def make_synthetic_application(
    name: str,
    compute_intensity: float,
    memory_intensity: float,
    total_instructions: float = 2.0e10,
    num_phases: int = 2,
    seed: SeedLike = None,
) -> ApplicationModel:
    """Generate one application with the given character.

    Phase parameters are drawn around the targets set by the two
    intensity knobs, so two apps with identical knobs still differ in
    detail (distinct phase mixes), while their optimal DVFS levels stay
    in the same neighbourhood.
    """
    require_in_range("compute_intensity", compute_intensity, 0.0, 1.0)
    require_in_range("memory_intensity", memory_intensity, 0.0, 1.0)
    require_positive("total_instructions", total_instructions)
    if num_phases < 1:
        raise ConfigurationError(f"num_phases must be >= 1, got {num_phases}")
    rng = as_generator(seed)

    # Split the instruction budget unevenly across phases.
    raw_shares = rng.uniform(0.5, 1.5, size=num_phases)
    shares = raw_shares / raw_shares.sum()

    phases: List[Phase] = []
    for phase_index in range(num_phases):
        cpi_core = (1.3 - 0.5 * compute_intensity) * rng.uniform(0.9, 1.1)
        mpki = _MAX_MPKI * memory_intensity * rng.uniform(0.7, 1.3)
        apki = mpki * rng.uniform(2.5, 3.5) + rng.uniform(10.0, 30.0)
        activity = (0.7 + 0.4 * compute_intensity) * rng.uniform(0.95, 1.05)
        phases.append(
            Phase(
                name=f"phase-{phase_index}",
                instructions=total_instructions * float(shares[phase_index]),
                cpi_core=float(cpi_core),
                mpki=float(min(mpki, apki)),
                apki=float(apki),
                activity=float(activity),
            )
        )
    return ApplicationModel(name, phases)


def random_application_suite(
    count: int, seed: SeedLike = None, name_prefix: str = "synthetic"
) -> Dict[str, ApplicationModel]:
    """A suite of ``count`` random applications spanning the spectrum.

    Memory intensity is sampled uniformly; compute intensity is drawn
    anti-correlated with it (strongly memory-bound code rarely sustains
    dense compute) plus noise — mirroring the structure of real suites.
    """
    if count <= 0:
        raise ConfigurationError(f"count must be positive, got {count}")
    rng = as_generator(seed)
    suite: Dict[str, ApplicationModel] = {}
    for index in range(count):
        memory = float(rng.uniform(0.0, 1.0))
        compute = float(min(max((1.0 - memory) * rng.uniform(0.7, 1.3), 0.0), 1.0))
        name = f"{name_prefix}-{index}"
        suite[name] = make_synthetic_application(
            name,
            compute_intensity=compute,
            memory_intensity=memory,
            num_phases=int(rng.integers(2, 4)),
            seed=rng,
        )
    return suite
