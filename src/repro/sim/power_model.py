"""CMOS power model.

Total power at an operating point splits into the textbook components:

``P = C_eff · V² · f · a_eff  +  k_leak · V² · leak(T)``

* The dynamic term scales with switched capacitance, the voltage
  squared and the frequency. Its effective activity ``a_eff`` blends
  the phase's switching activity (while the pipeline is busy) with a
  small residual memory-system activity (while it stalls on DRAM):
  ``a_eff = activity · duty + a_mem · (1 − duty)``. A memory-bound
  phase therefore draws far less dynamic power at a given V/f level
  than a compute-dense one — the asymmetry the whole DVFS problem
  hinges on.
* The static term models leakage as proportional to V²; an optional
  temperature coefficient couples it to a thermal model for the
  temperature ablation (the paper explicitly neglects this coupling,
  footnote 2).

Default constants are calibrated so that, on the Jetson Nano OPP table,
a compute-bound SPLASH-2 phase draws ~1.5 W at 1479 MHz while strongly
memory-bound phases stay below the paper's 0.6 W budget even at the top
level — reproducing the per-application optimal-frequency spread the
experiments require.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.opp import OperatingPoint
from repro.utils.validation import require_in_range, require_non_negative, require_positive


class PowerModel:
    """Dynamic + leakage power for one core at an operating point."""

    def __init__(
        self,
        effective_capacitance_f: float = 6.0e-10,
        leakage_coefficient_w_per_v2: float = 0.07,
        memory_activity: float = 0.18,
        leakage_temperature_coefficient: float = 0.0,
        reference_temperature_c: float = 45.0,
    ) -> None:
        self.effective_capacitance_f = require_positive(
            "effective_capacitance_f", effective_capacitance_f
        )
        self.leakage_coefficient_w_per_v2 = require_non_negative(
            "leakage_coefficient_w_per_v2", leakage_coefficient_w_per_v2
        )
        self.memory_activity = require_non_negative(
            "memory_activity", memory_activity
        )
        self.leakage_temperature_coefficient = require_non_negative(
            "leakage_temperature_coefficient", leakage_temperature_coefficient
        )
        self.reference_temperature_c = reference_temperature_c

    def effective_activity(self, activity: float, duty: float) -> float:
        """Blend busy-pipeline and stalled-pipeline switching activity."""
        require_positive("activity", activity)
        require_in_range("duty", duty, 0.0, 1.0)
        return activity * duty + self.memory_activity * (1.0 - duty)

    def dynamic_power(
        self, operating_point: OperatingPoint, activity: float, duty: float
    ) -> float:
        """``C_eff · V² · f · a_eff`` in watts."""
        a_eff = self.effective_activity(activity, duty)
        return (
            self.effective_capacitance_f
            * operating_point.voltage_v**2
            * operating_point.frequency_hz
            * a_eff
        )

    def static_power(
        self,
        operating_point: OperatingPoint,
        temperature_c: Optional[float] = None,
    ) -> float:
        """Leakage power, optionally scaled by temperature.

        With the default zero temperature coefficient (the paper's
        assumption) the temperature argument has no effect.
        """
        base = self.leakage_coefficient_w_per_v2 * operating_point.voltage_v**2
        if temperature_c is None or self.leakage_temperature_coefficient == 0.0:
            return base
        scale = 1.0 + self.leakage_temperature_coefficient * (
            temperature_c - self.reference_temperature_c
        )
        return base * max(scale, 0.0)

    def total_power(
        self,
        operating_point: OperatingPoint,
        activity: float,
        duty: float,
        temperature_c: Optional[float] = None,
    ) -> float:
        """Dynamic plus static power in watts."""
        return self.dynamic_power(operating_point, activity, duty) + self.static_power(
            operating_point, temperature_c
        )
