"""Measurement noise models for power and performance counters.

The paper's agents read an on-board power sensor (INA-style) and the
PMU performance counters. Neither is noise-free in practice: power
readings carry quantisation and thermal noise, and counter-derived
rates fluctuate with sampling alignment. These sensor models corrupt
the simulator's ground truth so that the learning problem keeps its
stochastic observation channel.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import require_non_negative


class PowerSensor:
    """Gaussian-noise power sensor with optional quantisation.

    Parameters
    ----------
    noise_std_w:
        Standard deviation of additive Gaussian noise in watts.
    quantization_w:
        If set, readings are rounded to this granularity (e.g. the
        INA3221 on the Jetson Nano reports in multiples of a few mW).
    """

    def __init__(
        self,
        noise_std_w: float = 0.01,
        quantization_w: Optional[float] = None,
        seed: SeedLike = None,
    ) -> None:
        self.noise_std_w = require_non_negative("noise_std_w", noise_std_w)
        if quantization_w is not None:
            require_non_negative("quantization_w", quantization_w)
        self.quantization_w = quantization_w
        self._rng = as_generator(seed)

    def measure(self, true_power_w: float) -> float:
        """A noisy, non-negative reading of ``true_power_w``."""
        reading = true_power_w
        if self.noise_std_w > 0.0:
            reading += self._rng.normal(0.0, self.noise_std_w)
        if self.quantization_w:
            reading = round(reading / self.quantization_w) * self.quantization_w
        return max(reading, 0.0)


class CounterSampler:
    """Multiplicative jitter for counter-derived rates (IPC, MPKI).

    Rates computed from two counters sampled over a finite window
    wobble with window alignment; a log-normal multiplier models that
    relative error without ever producing negative readings.
    """

    def __init__(self, relative_std: float = 0.02, seed: SeedLike = None) -> None:
        self.relative_std = require_non_negative("relative_std", relative_std)
        self._rng = as_generator(seed)

    def measure(self, true_value: float) -> float:
        """A jittered, non-negative reading of ``true_value``."""
        if self.relative_std == 0.0 or true_value == 0.0:
            return max(true_value, 0.0)
        multiplier = float(
            np.exp(self._rng.normal(0.0, self.relative_std))
        )
        return max(true_value * multiplier, 0.0)
