"""Edge-device simulator substrate.

The paper evaluates on two NVIDIA Jetson Nano boards running SPLASH-2
applications. This package replaces that hardware with an analytic
simulator exposing the *same interface the RL agent sees*: a table of
discrete V/f operating points, per-interval readings of
``(frequency, power, IPC, LLC miss rate, MPKI)``, and a DVFS knob.

Model structure
---------------
* :mod:`repro.sim.opp` — the Jetson Nano operating-performance-point
  table (15 levels, 102–1479 MHz) with a voltage for each frequency.
* :mod:`repro.sim.workload` — applications as looping sequences of
  phases, each phase characterised by compute CPI, memory intensity
  (MPKI, miss rate) and switching activity. A synthetic SPLASH-2 suite
  provides the paper's twelve applications.
* :mod:`repro.sim.perf_model` — cycles-per-instruction model: memory
  stalls take fixed wall-clock time, so their cycle cost grows with
  frequency and memory-bound phases stop benefiting from DVFS.
* :mod:`repro.sim.power_model` — CMOS power: dynamic
  ``C_eff · V² · f`` scaled by switching activity and pipeline duty,
  plus voltage-dependent leakage.
* :mod:`repro.sim.sensors` — measurement noise for power and counters.
* :mod:`repro.sim.processor` / :mod:`repro.sim.device` — tie the models
  together into a steppable environment with an application schedule.
* :mod:`repro.sim.thermal` — optional RC thermal model for the
  temperature-coupling ablation (the paper neglects temperature).
"""

from repro.sim.calibration import (
    CalibrationReport,
    assert_nontrivial_spread,
    calibration_table,
)
from repro.sim.device import (
    AppSchedule,
    DeviceEnvironment,
    EdgeDevice,
    build_default_device,
)
from repro.sim.generator import (
    make_synthetic_application,
    random_application_suite,
)
from repro.sim.multicore import MultiCoreProcessor
from repro.sim.opp import JETSON_NANO_OPP_TABLE, OperatingPoint, OPPTable
from repro.sim.perf_model import PerformanceModel, PhasePerformance
from repro.sim.power_model import PowerModel
from repro.sim.processor import ProcessorSnapshot, SimulatedProcessor
from repro.sim.sensors import CounterSampler, PowerSensor
from repro.sim.thermal import ThermalModel
from repro.sim.trace import StepRecord, TraceRecorder
from repro.sim.workload import (
    ApplicationModel,
    Phase,
    SPLASH2_APPLICATION_NAMES,
    splash2_application,
    splash2_suite,
)

__all__ = [
    "AppSchedule",
    "ApplicationModel",
    "CalibrationReport",
    "CounterSampler",
    "DeviceEnvironment",
    "EdgeDevice",
    "JETSON_NANO_OPP_TABLE",
    "MultiCoreProcessor",
    "OPPTable",
    "OperatingPoint",
    "PerformanceModel",
    "Phase",
    "PhasePerformance",
    "PowerModel",
    "PowerSensor",
    "ProcessorSnapshot",
    "SPLASH2_APPLICATION_NAMES",
    "SimulatedProcessor",
    "StepRecord",
    "ThermalModel",
    "TraceRecorder",
    "assert_nontrivial_spread",
    "build_default_device",
    "calibration_table",
    "make_synthetic_application",
    "random_application_suite",
    "splash2_application",
    "splash2_suite",
]
