"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can
catch every failure raised by this package with a single ``except``
clause while still being able to distinguish configuration problems from
runtime simulation or federation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied.

    Raised eagerly at object construction time so that misconfiguration
    surfaces where it was introduced rather than deep inside a training
    loop.
    """


class SimulationError(ReproError, RuntimeError):
    """The device simulator was driven into an invalid state.

    Examples: stepping a processor with no workload loaded, or requesting
    a frequency level outside the operating-performance-point table.
    """


class FederationError(ReproError, RuntimeError):
    """A federated-learning round could not be completed.

    Examples: aggregating models with mismatched parameter shapes, or a
    transport receiving a message for an unknown client.
    """


class ExecutionError(ReproError, RuntimeError):
    """A parallel execution backend or one of its workers failed.

    Examples: a device-worker process died mid-round, a worker task
    raised outside the straggler-tolerant training path, or an unknown
    backend name was requested.
    """


class PolicyError(ReproError, RuntimeError):
    """An RL policy or agent was used incorrectly.

    Examples: sampling an action from an agent whose network outputs do
    not match the action-space size, or updating with an empty batch.
    """
