"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can
catch every failure raised by this package with a single ``except``
clause while still being able to distinguish configuration problems from
runtime simulation or federation failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent configuration was supplied.

    Raised eagerly at object construction time so that misconfiguration
    surfaces where it was introduced rather than deep inside a training
    loop.
    """


class SimulationError(ReproError, RuntimeError):
    """The device simulator was driven into an invalid state.

    Examples: stepping a processor with no workload loaded, or requesting
    a frequency level outside the operating-performance-point table.
    """


class FederationError(ReproError, RuntimeError):
    """A federated-learning round could not be completed.

    Examples: aggregating models with mismatched parameter shapes, or a
    transport receiving a message for an unknown client.
    """


class TransportError(FederationError):
    """A message could not be moved between two federation endpoints.

    Examples: sending an empty payload, a delivery dropped or timed out
    by an injected fault plan, or a send that kept failing after every
    retry attempt allowed by the active :class:`~repro.faults.RetryPolicy`.
    """


class TransportTimeoutError(TransportError):
    """A message delivery exceeded the phase's configured timeout.

    Produced when an injected delay pushes a send past the
    ``RetryPolicy`` timeout for its protocol phase; retried sends that
    keep timing out eventually surface as :class:`RetryExhaustedError`.
    """


class RetryExhaustedError(TransportError):
    """Every attempt allowed by the retry policy failed.

    Carries the final underlying failure as ``__cause__``; the number
    of attempts made is in ``attempts``.
    """

    def __init__(self, message: str, attempts: int = 0) -> None:
        super().__init__(message)
        self.attempts = attempts


class AggregationError(FederationError):
    """Client updates could not be combined into a global model.

    Examples: parameter lists with mismatched lengths or array shapes,
    non-finite (NaN/Inf) values reaching a non-robust aggregator, or a
    robust aggregator left with zero usable updates after sanitization.
    """


class InjectedFaultError(ReproError, RuntimeError):
    """A fault deliberately injected by a :class:`~repro.faults.FaultPlan`.

    Raised from client-side training when the plan schedules a crash for
    that device and round; the orchestrator's straggler handling decides
    whether the round aborts or simply skips the crashed client.
    """


class RunKilledError(ReproError, RuntimeError):
    """The run was terminated mid-flight by a scheduled server kill.

    Emitted when a :class:`~repro.faults.FaultPlan` schedules a ``kill``
    event, after the latest checkpoint has been written. Resuming with
    the saved checkpoint finishes the run bit-identical to one that was
    never killed.
    """


class DegradedHaltError(ReproError, RuntimeError):
    """The async control plane halted because the fleet fell below quorum.

    Raised by :class:`repro.controlplane.AsyncControlPlane` when the
    live fraction of the device registry stays under the degradation
    ladder's halt floor for the configured grace period. A checkpoint
    is written first (``checkpoint_path``), so the run can be resumed
    once the operator acknowledges the dead devices; the CLI maps this
    to exit code 6.
    """

    def __init__(self, message: str, checkpoint_path: str = "") -> None:
        super().__init__(message)
        self.checkpoint_path = checkpoint_path


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint artefact is unreadable, truncated or corrupted.

    Raised by :func:`repro.faults.recovery.load_snapshot` and
    :func:`repro.utils.checkpoint.load_agent` when a file's content
    digest does not match its payload — a torn write, a truncated copy
    or bit rot — so resume fails with a clear diagnosis instead of an
    arbitrary error deep inside deserialization.
    """


class ExecutionError(ReproError, RuntimeError):
    """A parallel execution backend or one of its workers failed.

    Examples: a device-worker process died mid-round, a worker task
    raised outside the straggler-tolerant training path, or an unknown
    backend name was requested.
    """


class PolicyError(ReproError, RuntimeError):
    """An RL policy or agent was used incorrectly.

    Examples: sampling an action from an agent whose network outputs do
    not match the action-space size, or updating with an empty batch.
    """
