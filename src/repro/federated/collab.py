"""CollabPolicy: the tabular knowledge-sharing baseline [11].

The state-of-the-art comparison of Section IV-B extends the *Profit*
controller with the collaboration scheme of Tian et al.: instead of
model parameters, devices share a compact per-state policy digest
``(pi*(s), r_bar(s), n(s))`` — best action, average observed reward and
visit count. The server merges digests per state, weighting each
client's report by its visit count, and redistributes the global table.

On the device, the Profit controller consults the *local* value table
when its average reward for the current state beats the global entry,
and the global best action otherwise (implemented in
:class:`repro.control.profit.CollabProfitController`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.errors import FederationError
from repro.rl.tabular_agent import StateStatistics


@dataclass(frozen=True)
class GlobalPolicyEntry:
    """Aggregated knowledge about one discretised state."""

    best_action: int
    average_reward: float
    visit_count: int


class CollabPolicyServer:
    """Merges per-state digests from all devices into a global policy."""

    def __init__(self) -> None:
        self._table: Dict[Hashable, GlobalPolicyEntry] = {}
        self._rounds_aggregated = 0

    @property
    def num_states(self) -> int:
        return len(self._table)

    @property
    def rounds_aggregated(self) -> int:
        return self._rounds_aggregated

    def lookup(self, state_key: Hashable) -> Optional[GlobalPolicyEntry]:
        """The global entry for a state, or ``None`` if never reported."""
        return self._table.get(state_key)

    def global_table(self) -> Dict[Hashable, GlobalPolicyEntry]:
        """A copy of the full global policy (what gets broadcast)."""
        return dict(self._table)

    def aggregate(
        self, client_reports: Sequence[Mapping[Hashable, StateStatistics]]
    ) -> None:
        """Fold one round of client digests into the global table.

        Per state: the existing global entry (if any) participates as a
        prior report, average rewards combine weighted by visit counts,
        and the global best action is taken from the report with the
        highest average reward — the most successful experience wins.
        """
        if not client_reports:
            raise FederationError("cannot aggregate zero client reports")
        touched: Dict[Hashable, list] = {}
        for report in client_reports:
            for state_key, stats in report.items():
                if stats.visit_count <= 0:
                    raise FederationError(
                        f"digest for state {state_key!r} has non-positive "
                        f"visit count {stats.visit_count}"
                    )
                touched.setdefault(state_key, []).append(stats)

        for state_key, reports in touched.items():
            existing = self._table.get(state_key)
            if existing is not None:
                reports = reports + [
                    StateStatistics(
                        best_action=existing.best_action,
                        average_reward=existing.average_reward,
                        visit_count=existing.visit_count,
                    )
                ]
            total_visits = sum(r.visit_count for r in reports)
            average_reward = (
                sum(r.average_reward * r.visit_count for r in reports) / total_visits
            )
            best = max(reports, key=lambda r: r.average_reward)
            self._table[state_key] = GlobalPolicyEntry(
                best_action=best.best_action,
                average_reward=average_reward,
                visit_count=total_visits,
            )
        self._rounds_aggregated += 1

    def table_bytes(self, key_fields: int = 4) -> int:
        """Wire-format size of the global table.

        Each entry ships ``key_fields`` 4-byte bin indices, a 1-byte
        action, a 4-byte average reward and a 4-byte visit count —
        the digest format an embedded implementation would use. Used by
        the overhead comparison against the 2.8 kB neural payload.
        """
        per_entry = 4 * key_fields + 1 + 4 + 4
        return len(self._table) * per_entry
