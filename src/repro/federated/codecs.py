"""Model-payload codecs.

The paper ships models as raw parameters (2.8 kB per transfer for the
Table-I network) and calls the cost negligible. For fleets of
battery-powered devices on constrained links that cost still matters,
so this module provides pluggable wire codecs for the federated
endpoints:

* :class:`Float32Codec` — the paper's format: little-endian ``float32``
  values, 4 bytes per parameter.
* :class:`QuantizedInt8Codec` — per-array affine int8 quantisation
  (1 byte per parameter plus an 8-byte range header per array), a ~4×
  reduction. The ``ablation_compression`` experiment measures what the
  extra quantisation noise costs in learned-policy quality.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import FederationError
from repro.utils.serialization import bytes_to_parameters, parameters_to_bytes

Shapes = Sequence[Tuple[int, ...]]


class Float32Codec:
    """The paper's raw float32 wire format."""

    name = "float32"

    def encode(self, parameters: Sequence[np.ndarray]) -> bytes:
        return parameters_to_bytes(parameters)

    def decode(self, payload: bytes, shapes: Shapes) -> List[np.ndarray]:
        return bytes_to_parameters(payload, shapes)

    def num_bytes(self, shapes: Shapes) -> int:
        """Payload size for a model of the given shapes."""
        return sum(int(np.prod(shape)) for shape in shapes) * 4


class DPGaussianCodec:
    """Differentially-private upload perturbation (DP-FedAvg flavour).

    The paper's privacy argument is structural — raw traces never leave
    the device — but shared *parameters* still leak some information
    about local data. The standard hardening is to clip the model's
    global L2 norm and add Gaussian noise before upload (McMahan et
    al., 2018). This codec applies exactly that on ``encode`` and
    decodes like its base codec, so it is installed on the *clients*
    (uploads get noised) while the server keeps a plain codec
    (broadcasts stay clean). The ``ablation_privacy`` experiment maps
    the noise/utility trade-off.
    """

    def __init__(
        self,
        noise_std: float = 0.02,
        clip_norm: float = 10.0,
        base=None,
        seed=None,
    ) -> None:
        if noise_std < 0.0:
            raise FederationError(f"noise_std must be >= 0, got {noise_std}")
        if clip_norm <= 0.0:
            raise FederationError(f"clip_norm must be positive, got {clip_norm}")
        from repro.utils.rng import as_generator

        self.noise_std = noise_std
        self.clip_norm = clip_norm
        self.base = base if base is not None else Float32Codec()
        self._rng = as_generator(seed)
        self.name = f"dp-gaussian(std={noise_std})"

    def encode(self, parameters: Sequence[np.ndarray]) -> bytes:
        if not parameters:
            raise FederationError("cannot encode an empty parameter list")
        flat_norm = float(
            np.sqrt(sum(float(np.sum(np.square(p))) for p in parameters))
        )
        scale = 1.0 if flat_norm <= self.clip_norm else self.clip_norm / flat_norm
        perturbed = []
        for array in parameters:
            array = np.asarray(array, dtype=np.float64) * scale
            if self.noise_std > 0.0:
                array = array + self._rng.normal(0.0, self.noise_std, size=array.shape)
            perturbed.append(array)
        return self.base.encode(perturbed)

    def decode(self, payload: bytes, shapes: Shapes) -> List[np.ndarray]:
        return self.base.decode(payload, shapes)

    def num_bytes(self, shapes: Shapes) -> int:
        return self.base.num_bytes(shapes)


class QuantizedInt8Codec:
    """Per-array affine int8 quantisation.

    Each array is encoded as a header of two little-endian ``float32``
    values (minimum, scale) followed by one unsigned byte per element:
    ``value ≈ minimum + scale * byte``. Arrays with zero range encode a
    zero scale and decode exactly.
    """

    name = "int8"
    _HEADER_DTYPE = np.dtype("<f4")
    _LEVELS = 255

    def encode(self, parameters: Sequence[np.ndarray]) -> bytes:
        if not parameters:
            raise FederationError("cannot encode an empty parameter list")
        chunks: List[bytes] = []
        for array in parameters:
            array = np.ascontiguousarray(array, dtype=np.float64)
            minimum = float(array.min())
            maximum = float(array.max())
            scale = (maximum - minimum) / self._LEVELS
            header = np.array([minimum, scale], dtype=self._HEADER_DTYPE)
            if scale > 0.0:
                quantized = np.round((array - minimum) / scale)
                quantized = np.clip(quantized, 0, self._LEVELS).astype(np.uint8)
            else:
                quantized = np.zeros(array.shape, dtype=np.uint8)
            chunks.append(header.tobytes())
            chunks.append(quantized.tobytes())
        return b"".join(chunks)

    def decode(self, payload: bytes, shapes: Shapes) -> List[np.ndarray]:
        expected = self.num_bytes(shapes)
        if len(payload) != expected:
            raise FederationError(
                f"payload has {len(payload)} bytes but shapes {list(shapes)} "
                f"require {expected}"
            )
        parameters: List[np.ndarray] = []
        offset = 0
        header_bytes = 2 * self._HEADER_DTYPE.itemsize
        for shape in shapes:
            header = np.frombuffer(
                payload, dtype=self._HEADER_DTYPE, count=2, offset=offset
            )
            minimum, scale = float(header[0]), float(header[1])
            offset += header_bytes
            size = int(np.prod(shape))
            quantized = np.frombuffer(
                payload, dtype=np.uint8, count=size, offset=offset
            )
            offset += size
            values = minimum + scale * quantized.astype(np.float64)
            parameters.append(values.reshape(shape))
        return parameters

    def num_bytes(self, shapes: Shapes) -> int:
        header_bytes = 2 * self._HEADER_DTYPE.itemsize
        return sum(int(np.prod(shape)) + header_bytes for shape in shapes)
