"""Federated-learning layer.

Implements the paper's collaborative training system (Algorithm 2):
a synchronous, unweighted federated-averaging loop between ``N``
device-resident power controllers and one aggregation server. Only
model parameters cross device boundaries — the replay buffers (the raw
performance-counter and power traces) never leave the clients, which is
the privacy property motivating the work.

Also hosts the *CollabPolicy* baseline aggregation [11]: per-state
``(best action, average reward, visit count)`` sharing for the tabular
Profit controller.
"""

from repro.federated.async_server import (
    AsynchronousFederatedClient,
    AsynchronousFederatedServer,
    run_async_federated_training,
)
from repro.federated.averaging import federated_average
from repro.federated.client import FederatedClient
from repro.federated.codecs import DPGaussianCodec, Float32Codec, QuantizedInt8Codec
from repro.federated.collab import CollabPolicyServer, GlobalPolicyEntry
from repro.federated.orchestrator import FederatedRunResult, run_federated_training
from repro.federated.server import FederatedServer
from repro.federated.transport import InMemoryTransport, Message

__all__ = [
    "AsynchronousFederatedClient",
    "AsynchronousFederatedServer",
    "CollabPolicyServer",
    "DPGaussianCodec",
    "FederatedClient",
    "FederatedRunResult",
    "FederatedServer",
    "Float32Codec",
    "GlobalPolicyEntry",
    "InMemoryTransport",
    "Message",
    "QuantizedInt8Codec",
    "federated_average",
    "run_async_federated_training",
    "run_federated_training",
]
