"""Asynchronous federated aggregation (extension).

The paper's server is synchronous: it "waits for all devices to send
their local models before computing the updated global model"
(Section III-B). With heterogeneous device speeds that wastes the fast
devices' time. This module implements the FedAsync family (Xie et al.,
2019): the server merges each local model *as it arrives* with a
staleness-discounted mixing rate

``theta <- (1 - alpha_s) * theta + alpha_s * theta_local``
``alpha_s = mixing_rate / (1 + staleness)^staleness_exponent``

where staleness counts how many global versions were produced since the
client pulled the model it trained on. The ``ablation_async``
experiment compares sync vs async under a skewed speed profile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import FederationError
from repro.federated.codecs import Float32Codec
from repro.federated.transport import InMemoryTransport, Message
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.rl.agent import NeuralBanditAgent
from repro.utils.validation import require_in_range, require_non_negative

ASYNC_GLOBAL_KIND = "async_global_model"
ASYNC_LOCAL_KIND = "async_local_model"

_LOG = get_logger("federated.async")


class AsynchronousFederatedServer:
    """Staleness-aware streaming aggregator."""

    def __init__(
        self,
        initial_parameters: Sequence[np.ndarray],
        transport: InMemoryTransport,
        server_id: str = "server",
        mixing_rate: float = 0.6,
        staleness_exponent: float = 0.5,
        codec=None,
        metrics: Optional[MetricsRegistry] = None,
        aggregator=None,
    ) -> None:
        self.server_id = server_id
        self.transport = transport
        self.metrics = metrics
        #: Optional :class:`repro.faults.aggregation.Aggregator` used as
        #: a per-upload sanitiser: uploads it refuses (non-finite) are
        #: skipped, and norm-clipping aggregators bound each merge's
        #: step relative to the current global model.
        self.aggregator = aggregator
        self.mixing_rate = require_in_range("mixing_rate", mixing_rate, 0.0, 1.0)
        self.staleness_exponent = require_non_negative(
            "staleness_exponent", staleness_exponent
        )
        self.codec = codec if codec is not None else Float32Codec()
        self._global: List[np.ndarray] = [
            np.array(p, dtype=np.float64, copy=True) for p in initial_parameters
        ]
        self._shapes = [p.shape for p in self._global]
        self._version = 0
        self._merges = 0
        self._stale_merges = 0

    @property
    def version(self) -> int:
        """Number of merges applied; clients stamp pulls with this."""
        return self._version

    @property
    def merges_applied(self) -> int:
        return self._merges

    @property
    def stale_merges(self) -> int:
        """Merges whose upload was at least one version behind."""
        return self._stale_merges

    @property
    def global_parameters(self) -> List[np.ndarray]:
        return [p.copy() for p in self._global]

    def restore(self, parameters: Sequence[np.ndarray], version: int) -> None:
        """Install checkpointed global state (control-plane resume)."""
        if version < 0:
            raise FederationError(f"version must be >= 0, got {version}")
        restored = [np.array(p, dtype=np.float64, copy=True) for p in parameters]
        if [p.shape for p in restored] != self._shapes:
            raise FederationError(
                "restored parameters do not match the server's shapes"
            )
        self._global = restored
        self._version = int(version)
        self._merges = int(version)

    def mixing_for_staleness(self, staleness: int) -> float:
        """The effective mixing rate for a model ``staleness`` versions old."""
        if staleness < 0:
            raise FederationError(f"staleness must be >= 0, got {staleness}")
        return self.mixing_rate / (1.0 + staleness) ** self.staleness_exponent

    def dispatch(self, client_id: str) -> int:
        """Send the current global model (stamped with its version)."""
        self.transport.send(
            Message(
                sender=self.server_id,
                recipient=client_id,
                kind=ASYNC_GLOBAL_KIND,
                payload=self.codec.encode(self._global),
                round_index=self._version,
            )
        )
        return self._version

    def absorb_pending(self) -> int:
        """Merge every queued upload, oldest first; returns merge count."""
        merged = 0
        for message in self.transport.receive_all(self.server_id):
            if message.kind != ASYNC_LOCAL_KIND:
                raise FederationError(
                    f"async server received unexpected kind {message.kind!r}"
                )
            base_version = message.round_index
            if base_version > self._version:
                raise FederationError(
                    f"upload from {message.sender!r} claims a future version "
                    f"{base_version} > {self._version}"
                )
            staleness = self._version - base_version
            alpha = self.mixing_for_staleness(staleness)
            local = self.codec.decode(message.payload, self._shapes)
            if self.aggregator is not None:
                local = self.aggregator.sanitize_update(local, self._global)
                if local is None:
                    if self.metrics is not None:
                        self.metrics.inc("async.rejected")
                    _LOG.warning(
                        "rejected non-finite async upload",
                        extra={"client_id": message.sender},
                    )
                    continue
            for global_array, local_array in zip(self._global, local):
                global_array *= 1.0 - alpha
                global_array += alpha * local_array
            self._version += 1
            self._merges += 1
            if staleness > 0:
                self._stale_merges += 1
            merged += 1
            if self.metrics is not None:
                self.metrics.inc("async.merges")
                self.metrics.observe("async.staleness", staleness)
                self.metrics.observe("async.mixing_rate", alpha)
                self.metrics.set_gauge("async.version", self._version)
            _LOG.debug(
                "merged async upload",
                extra={
                    "client_id": message.sender,
                    "staleness": staleness,
                    "mixing_rate": alpha,
                    "version": self._version,
                },
            )
        return merged


class AsynchronousFederatedClient:
    """Device endpoint tracking the version its local model is based on."""

    def __init__(
        self,
        client_id: str,
        agent: NeuralBanditAgent,
        transport: InMemoryTransport,
        server_id: str = "server",
        codec=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.client_id = client_id
        self.agent = agent
        self.transport = transport
        self.server_id = server_id
        self.codec = codec if codec is not None else Float32Codec()
        self.metrics = metrics
        self._base_version: Optional[int] = None

    @property
    def base_version(self) -> Optional[int]:
        """Global version the current local model started from."""
        return self._base_version

    def pull(self) -> int:
        """Install the latest dispatched global model.

        Superseded global models are consumed (only the latest is
        installed), but messages of any *other* kind are not this
        method's to eat: they are re-enqueued in arrival order for
        whoever does consume them, and counted in
        ``async.pull_requeued`` — a ``receive_all`` that silently
        discarded them would lose protocol messages without trace.
        """
        inbox = self.transport.receive_all(self.client_id)
        messages = [m for m in inbox if m.kind == ASYNC_GLOBAL_KIND]
        foreign = [m for m in inbox if m.kind != ASYNC_GLOBAL_KIND]
        for message in foreign:
            self.transport.deliver(message)  # already accounted on send
        if foreign:
            if self.metrics is not None:
                self.metrics.inc("async.pull_requeued", len(foreign))
            _LOG.warning(
                "re-enqueued non-global messages during pull",
                extra={
                    "client_id": self.client_id,
                    "kinds": sorted({m.kind for m in foreign}),
                },
            )
        if not messages:
            raise FederationError(
                f"client {self.client_id!r} has no pending global model"
            )
        latest = messages[-1]
        shapes = self.agent.network.parameter_shapes()
        self.agent.set_parameters(
            self.codec.decode(latest.payload, shapes), reset_optimizer=True
        )
        self._base_version = latest.round_index
        return latest.round_index

    def push(self) -> int:
        """Upload the locally optimised model; returns payload bytes."""
        if self._base_version is None:
            raise FederationError(
                f"client {self.client_id!r} must pull before pushing"
            )
        payload = self.codec.encode(self.agent.get_parameters())
        self.transport.send(
            Message(
                sender=self.client_id,
                recipient=self.server_id,
                kind=ASYNC_LOCAL_KIND,
                payload=payload,
                round_index=self._base_version,
            )
        )
        return len(payload)


def run_async_federated_training(
    server: AsynchronousFederatedServer,
    clients: Sequence[AsynchronousFederatedClient],
    trainers: Dict[str, object],
    local_rounds_per_client: Dict[str, int],
    round_duration_s: Dict[str, float],
    events=None,
    metrics: Optional[MetricsRegistry] = None,
) -> Dict[str, int]:
    """Event-driven async schedule.

    Each client alternates pull → local round (taking its own
    ``round_duration_s``) → push; the server merges uploads in
    completion-time order. Returns the number of pushes per client.
    The simulated clock only orders events — device environments
    advance by control steps exactly as in the synchronous driver.

    ``events``/``metrics`` default to the ambient
    :mod:`repro.obs.context` bundle, so async runs stream into the same
    pipeline the synchronous orchestrator feeds: one ``round_span``
    event per push (``mode: "async"``, its one participant, the push's
    transport bytes and the client's modelled round duration) and a
    final ``run_summary`` — which is what ``obs-watch`` and the event
    sinks consume.
    """
    from repro.obs.context import active_events, active_metrics

    events = active_events(events)
    metrics = active_metrics(metrics)
    if not clients:
        raise FederationError("need at least one async client")
    clients_by_id = {client.client_id: client for client in clients}
    orphans = sorted(
        (set(local_rounds_per_client) | set(round_duration_s))
        - set(clients_by_id)
    )
    if orphans:
        raise FederationError(
            "round budgets/durations name unknown client ids: "
            + ", ".join(repr(orphan) for orphan in orphans)
        )
    for client_id in clients_by_id:
        if client_id not in trainers:
            raise FederationError(f"no trainer for client {client_id!r}")
        if local_rounds_per_client.get(client_id, 0) < 0:
            raise FederationError(
                f"negative round budget for client {client_id!r}"
            )
        if round_duration_s.get(client_id, 0.0) <= 0.0:
            raise FederationError(
                f"client {client_id!r} needs a positive round duration"
            )

    remaining = dict(local_rounds_per_client)
    pushes = {client_id: 0 for client_id in clients_by_id}
    # (completion_time, client_id) of the round each client is running.
    in_flight: List[tuple] = []
    clock = 0.0
    round_counter = {client_id: 0 for client_id in clients_by_id}
    transport = server.transport
    bytes_before = transport.total_bytes
    messages_before = transport.total_messages
    merges_before = server.merges_applied
    stale_before = server.stale_merges
    push_index = 0

    for client_id, client in clients_by_id.items():
        if remaining.get(client_id, 0) > 0:
            server.dispatch(client_id)
            client.pull()
            in_flight.append((round_duration_s[client_id], client_id))

    while in_flight:
        in_flight.sort()
        clock, client_id = in_flight.pop(0)
        client = clients_by_id[client_id]
        push_bytes_before = transport.total_bytes
        trainers[client_id](round_counter[client_id])
        round_counter[client_id] += 1
        client.push()
        merged = server.absorb_pending()
        pushes[client_id] += 1
        remaining[client_id] -= 1
        if remaining[client_id] > 0:
            server.dispatch(client_id)
            client.pull()
            in_flight.append((clock + round_duration_s[client_id], client_id))
        if events is not None:
            # One round_span per push, shaped like the synchronous
            # tracer's export so obs-watch and the sinks need no
            # async-specific handling.
            events.emit(
                {
                    "type": "round_span",
                    "round": push_index,
                    "participants": [client_id],
                    "stragglers": [],
                    "duration_s": round_duration_s[client_id],
                    "bytes": transport.total_bytes - push_bytes_before,
                    "update_norm": None,
                    "aggregated": merged > 0,
                    "status": "ok",
                    "phases": [],
                    "mode": "async",
                }
            )
        push_index += 1

    total_bytes = transport.total_bytes - bytes_before
    total_messages = transport.total_messages - messages_before
    merges = server.merges_applied - merges_before
    stale = server.stale_merges - stale_before
    if metrics is not None:
        metrics.inc("federated.bytes_total", total_bytes)
        metrics.inc("federated.messages_total", total_messages)
    if events is not None:
        events.emit(
            {
                "type": "run_summary",
                "rounds": push_index,
                "bytes": total_bytes,
                "messages": total_messages,
                "aggregations": merges,
                # The async analogue of the sync straggler rate: the
                # fraction of merges whose upload trained on an
                # already-superseded global model, so obs-diff
                # comparisons against sync runs are honest.
                "straggler_rate": stale / merges if merges else 0.0,
            }
        )
    return pushes
