"""Federated averaging (McMahan et al., 2017).

The paper's aggregation is synchronous and *unweighted*: every client
contributes equally (Section III-B, Algorithm 2 line 8:
``theta_{r+1} = 1/N * sum(theta_r^n)``). A weighted variant is provided
for the ablation that weights clients by local sample counts — the
original FedAvg formulation — to quantify what the paper's
simplification costs.

The validation/sanitization helpers here are shared with the robust
aggregators in :mod:`repro.faults.aggregation`: plain FedAvg *rejects*
non-finite client updates with :class:`~repro.errors.AggregationError`,
while the robust variants use :func:`partition_finite` to drop them and
keep going.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AggregationError


def check_parameter_sets(
    parameter_sets: Sequence[Sequence[np.ndarray]],
) -> None:
    """Validate that all client parameter lists align in length and shape.

    Raises :class:`~repro.errors.AggregationError` on an empty batch, a
    length mismatch, or any per-array shape mismatch against client 0.
    """
    if not parameter_sets:
        raise AggregationError("cannot average zero parameter sets")
    reference = parameter_sets[0]
    for client_index, params in enumerate(parameter_sets):
        if len(params) != len(reference):
            raise AggregationError(
                f"client {client_index} has {len(params)} arrays, "
                f"expected {len(reference)}"
            )
        for array_index, (array, ref) in enumerate(zip(params, reference)):
            if np.shape(array) != np.shape(ref):
                raise AggregationError(
                    f"client {client_index} array {array_index} has shape "
                    f"{np.shape(array)}, expected {np.shape(ref)}"
                )


def has_non_finite(params: Sequence[np.ndarray]) -> bool:
    """True if any array in one client's parameter list has NaN/Inf."""
    return any(not np.all(np.isfinite(np.asarray(array))) for array in params)


def partition_finite(
    parameter_sets: Sequence[Sequence[np.ndarray]],
) -> Tuple[List[int], List[int]]:
    """Split client indices into (finite, non-finite) parameter lists.

    Shared sanitization step: robust aggregators drop the non-finite
    clients and aggregate the rest, while plain FedAvg raises.
    """
    finite: List[int] = []
    rejected: List[int] = []
    for client_index, params in enumerate(parameter_sets):
        if has_non_finite(params):
            rejected.append(client_index)
        else:
            finite.append(client_index)
    return finite, rejected


def normalize_weights(
    weights: Optional[Sequence[float]], num_clients: int
) -> np.ndarray:
    """Validate and normalise client weights (``None`` → uniform)."""
    if weights is None:
        return np.full(num_clients, 1.0 / num_clients)
    if len(weights) != num_clients:
        raise AggregationError(
            f"{len(weights)} weights for {num_clients} clients"
        )
    weight_array = np.asarray(weights, dtype=np.float64)
    if np.any(weight_array < 0):
        raise AggregationError("weights must be non-negative")
    total = weight_array.sum()
    if total <= 0:
        raise AggregationError("weights must not all be zero")
    return weight_array / total


def federated_average(
    parameter_sets: Sequence[Sequence[np.ndarray]],
    weights: Optional[Sequence[float]] = None,
) -> List[np.ndarray]:
    """Element-wise (weighted) mean of several models' parameters.

    Parameters
    ----------
    parameter_sets:
        One parameter list per client; all lists must align in length
        and per-array shape, and every value must be finite — NaN/Inf
        from any client raises :class:`~repro.errors.AggregationError`
        rather than silently poisoning the global model.
    weights:
        Optional non-negative client weights; ``None`` gives the
        paper's unweighted mean. Weights are normalised internally.
    """
    check_parameter_sets(parameter_sets)
    _, rejected = partition_finite(parameter_sets)
    if rejected:
        raise AggregationError(
            f"non-finite (NaN/Inf) parameters from client(s) {rejected}; "
            "use a robust aggregator to drop poisoned updates"
        )
    reference = parameter_sets[0]
    normalized = normalize_weights(weights, len(parameter_sets))

    averaged: List[np.ndarray] = []
    for array_index in range(len(reference)):
        accumulator = np.zeros_like(np.asarray(reference[array_index], dtype=np.float64))
        for client_index, params in enumerate(parameter_sets):
            accumulator += normalized[client_index] * np.asarray(
                params[array_index], dtype=np.float64
            )
        averaged.append(accumulator)
    return averaged
