"""Federated averaging (McMahan et al., 2017).

The paper's aggregation is synchronous and *unweighted*: every client
contributes equally (Section III-B, Algorithm 2 line 8:
``theta_{r+1} = 1/N * sum(theta_r^n)``). A weighted variant is provided
for the ablation that weights clients by local sample counts — the
original FedAvg formulation — to quantify what the paper's
simplification costs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import FederationError


def federated_average(
    parameter_sets: Sequence[Sequence[np.ndarray]],
    weights: Optional[Sequence[float]] = None,
) -> List[np.ndarray]:
    """Element-wise (weighted) mean of several models' parameters.

    Parameters
    ----------
    parameter_sets:
        One parameter list per client; all lists must align in length
        and per-array shape.
    weights:
        Optional non-negative client weights; ``None`` gives the
        paper's unweighted mean. Weights are normalised internally.
    """
    if not parameter_sets:
        raise FederationError("cannot average zero parameter sets")
    reference = parameter_sets[0]
    for client_index, params in enumerate(parameter_sets):
        if len(params) != len(reference):
            raise FederationError(
                f"client {client_index} has {len(params)} arrays, "
                f"expected {len(reference)}"
            )
        for array_index, (array, ref) in enumerate(zip(params, reference)):
            if np.shape(array) != np.shape(ref):
                raise FederationError(
                    f"client {client_index} array {array_index} has shape "
                    f"{np.shape(array)}, expected {np.shape(ref)}"
                )

    if weights is None:
        normalized = np.full(len(parameter_sets), 1.0 / len(parameter_sets))
    else:
        if len(weights) != len(parameter_sets):
            raise FederationError(
                f"{len(weights)} weights for {len(parameter_sets)} clients"
            )
        weight_array = np.asarray(weights, dtype=np.float64)
        if np.any(weight_array < 0):
            raise FederationError("weights must be non-negative")
        total = weight_array.sum()
        if total <= 0:
            raise FederationError("weights must not all be zero")
        normalized = weight_array / total

    averaged: List[np.ndarray] = []
    for array_index in range(len(reference)):
        accumulator = np.zeros_like(np.asarray(reference[array_index], dtype=np.float64))
        for client_index, params in enumerate(parameter_sets):
            accumulator += normalized[client_index] * np.asarray(
                params[array_index], dtype=np.float64
            )
        averaged.append(accumulator)
    return averaged
