"""Round orchestration (Algorithm 2).

Drives the full federated loop: broadcast → local training on every
client → upload → synchronous aggregation, for ``R`` rounds. Local
training itself is injected as one callable per client (the experiments
layer supplies a closure that runs Algorithm 1 against that client's
device environment), which keeps this module free of simulator
dependencies and lets tests drive the protocol with stub trainers.

``participation_fraction`` extends the paper's always-on setting with
partial client participation per round (standard in FL practice) for
the corresponding ablation.

Observability: when a :class:`~repro.obs.tracing.RoundTracer` and/or
:class:`~repro.obs.metrics.MetricsRegistry` is attached (explicitly or
via the ambient :mod:`repro.obs.context`), every round emits one span
with per-phase wall-times, transport bytes, stragglers and the global
parameter-update norm, plus ``federated.*`` counters/histograms. With
no sink attached the loop runs the legacy code path behind ``None``
checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import (
    AggregationError,
    ConfigurationError,
    FederationError,
    RunKilledError,
    TransportError,
)
from repro.federated.client import FederatedClient
from repro.federated.server import FederatedServer
from repro.obs.context import (
    active_events,
    active_metrics,
    active_profiler,
    active_tracer,
)
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ScopeProfiler, profile
from repro.obs.tracing import (
    PHASE_AGGREGATE,
    PHASE_BROADCAST,
    PHASE_LOCAL_TRAIN,
    PHASE_UPLOAD,
    RoundTracer,
    STATUS_FAILED,
    STATUS_OK,
)
from repro.utils.rng import SeedLike, as_generator

_LOG = get_logger("federated")

#: Signature of a per-client local trainer: ``trainer(round_index)``.
LocalTrainer = Callable[[int], None]

#: Optional end-of-round hook: ``hook(round_index, server)``.
RoundHook = Callable[[int, FederatedServer], None]

#: Optional checkpoint hook: ``hook(round_index, progress)`` where
#: ``progress`` is a :class:`repro.faults.recovery.OrchestratorProgress`.
CheckpointHook = Callable[[int, object], None]


@dataclass
class FederatedRunResult:
    """Summary of a completed federated training run."""

    rounds_completed: int
    total_bytes_communicated: int
    total_messages: int
    participation_by_round: List[List[str]] = field(default_factory=list)
    stragglers_by_round: List[List[str]] = field(default_factory=list)
    aggregations_completed: int = 0
    #: Training steps whose measured power exceeded ``P_crit``, per
    #: device. The orchestrator itself is simulator-free, so these are
    #: filled in by the experiments layer (from the training trace) and
    #: stay empty for protocol-only runs.
    power_violations_by_device: Dict[str, int] = field(default_factory=dict)
    power_steps_by_device: Dict[str, int] = field(default_factory=dict)
    #: Clients the server's quarantine screen excluded, per round.
    quarantined_by_round: List[List[str]] = field(default_factory=list)
    #: Training steps the safety watchdog spent on the fallback
    #: governor, per device. Filled in by the experiments layer (from
    #: the guarded controllers, cross-checked against the flight
    #: recorder); empty for unguarded or protocol-only runs.
    fallback_steps_by_device: Dict[str, int] = field(default_factory=dict)

    @property
    def bytes_per_round(self) -> float:
        if self.rounds_completed == 0:
            return 0.0
        return self.total_bytes_communicated / self.rounds_completed

    @property
    def straggler_rate(self) -> float:
        """Fraction of participation slots lost to stragglers."""
        participants = sum(len(round_) for round_ in self.participation_by_round)
        if participants == 0:
            return 0.0
        stragglers = sum(len(round_) for round_ in self.stragglers_by_round)
        return stragglers / participants

    def power_violation_rate(self, device: Optional[str] = None) -> float:
        """Fraction of training steps above ``P_crit``.

        Fleet-wide with ``device=None``, per-device otherwise; 0.0 when
        no power accounting was recorded (zero steps, or a run whose
        experiment layer did not fill the power fields in).
        """
        if device is not None:
            steps = self.power_steps_by_device.get(device, 0)
            if steps == 0:
                return 0.0
            return self.power_violations_by_device.get(device, 0) / steps
        total_steps = sum(self.power_steps_by_device.values())
        if total_steps == 0:
            return 0.0
        return sum(self.power_violations_by_device.values()) / total_steps

    @property
    def quarantined_devices(self) -> List[str]:
        """Devices the quarantine excluded at least once (sorted)."""
        seen = set()
        for round_entry in self.quarantined_by_round:
            seen.update(round_entry)
        return sorted(seen)

    def fallback_rate(self, device: Optional[str] = None) -> float:
        """Fraction of training steps controlled by the safe fallback.

        Fleet-wide with ``device=None``, per-device otherwise; 0.0 when
        no watchdog accounting was recorded (unguarded run, or zero
        steps). The denominator is the same per-device step count the
        power accounting uses, so the two rates are directly
        comparable.
        """
        if device is not None:
            steps = self.power_steps_by_device.get(device, 0)
            if steps == 0:
                return 0.0
            return self.fallback_steps_by_device.get(device, 0) / steps
        total_steps = sum(self.power_steps_by_device.values())
        if total_steps == 0:
            return 0.0
        return sum(self.fallback_steps_by_device.values()) / total_steps


def _update_norm(
    before: Sequence[np.ndarray], after: Sequence[np.ndarray]
) -> float:
    """L2 norm of the global-model drift over one aggregation."""
    total = 0.0
    for old, new in zip(before, after):
        delta = new - old
        total += float(np.dot(delta.ravel(), delta.ravel()))
    return math.sqrt(total)


def run_federated_training(
    server: FederatedServer,
    clients: Sequence[FederatedClient],
    trainers: Dict[str, LocalTrainer],
    num_rounds: int,
    on_round_end: Optional[RoundHook] = None,
    participation_fraction: float = 1.0,
    aggregation_weights: Optional[Dict[str, float]] = None,
    straggler_policy: str = "abort",
    seed: SeedLike = None,
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[RoundTracer] = None,
    profiler: Optional[ScopeProfiler] = None,
    executor: Optional[object] = None,
    fault_plan: Optional[object] = None,
    churn_plan: Optional[object] = None,
    resume: Optional[object] = None,
    checkpoint_hook: Optional[CheckpointHook] = None,
    events=None,
    selection_policy: Optional[object] = None,
) -> FederatedRunResult:
    """Run ``num_rounds`` of federated averaging (Algorithm 2).

    Parameters
    ----------
    server, clients:
        The endpoints, already wired to one shared transport.
    trainers:
        ``client_id -> callable(round_index)`` performing that client's
        local optimisation between receive and send.
    on_round_end:
        Invoked after each aggregation — the evaluation protocol of
        Section IV-A ("after each training round, we evaluate the
        policies") hooks in here.
    participation_fraction:
        Fraction of clients drawn uniformly per round (paper: 1.0,
        "each client participates in all R rounds").
    aggregation_weights:
        Optional per-client weights for the weighted-averaging ablation.
    straggler_policy:
        What to do when a client's local trainer raises: ``"abort"``
        (the paper's strict synchronous semantics — the whole run
        fails) or ``"skip"`` (exclude the failed client from this
        round's aggregation and continue with the survivors, the
        fault-tolerance extension). At least one client must survive
        each round.
    metrics, tracer, profiler:
        Optional observability sinks; default to the ambient
        :mod:`repro.obs.context` bundle (if one is active). The
        profiler attributes wall-time to the protocol phases
        (``federated.broadcast``/``.local_train``/``.upload``/
        ``.aggregate``). Attaching sinks never changes the run's
        numerical results.
    executor:
        Optional parallel local-training engine (e.g.
        :class:`~repro.parallel.engine.FleetTrainExecutor`). When
        given, the per-round local-training phase is delegated to
        ``executor.run_local_train(round_index, participating)``, which
        must return a mapping ``client_id -> outcome`` with ``error``
        (``None`` or a description) and ``duration_s`` attributes, and
        must leave each survivor's post-training parameters installed
        in that client's agent. Broadcast, upload and aggregation stay
        serial in participating order, so transport byte accounting —
        and with deterministic trainers, every numerical result — is
        identical to the ``executor=None`` path. ``trainers`` may be
        empty in this mode — the executor owns local training.
    fault_plan:
        Optional :class:`repro.faults.plan.FaultPlan` (duck-typed:
        only ``kill_round`` is consulted here; the wire faults live in
        the transport wrapper). When the plan schedules a kill, the
        loop raises :class:`~repro.errors.RunKilledError` at the start
        of that round — after the preceding round's checkpoint hook —
        to simulate a mid-run server crash. Resumed runs
        (``resume is not None``) never re-kill.
    churn_plan:
        Optional :class:`repro.guard.churn.ChurnPlan`. When given, each
        round's participants are drawn from the plan's active roster
        for that round instead of the full client set: leavers simply
        stop appearing (round-synchronous drain — nothing stalls),
        joiners and rejoiners bootstrap from the current global model
        at their first broadcast, and a round whose roster is empty is
        skipped outright (one traced, non-aggregated span; the global
        model carries over). Membership is decided here, driver-side,
        so every execution backend sees identical rosters.
    resume:
        Optional :class:`repro.faults.recovery.OrchestratorProgress`
        from a checkpoint: the loop starts at ``resume.next_round``
        with the participation RNG stream, the per-round logs and the
        cumulative byte/message/aggregation counters restored, so the
        reported totals (and, with restored endpoints and trainers,
        every numerical result) match an uninterrupted run exactly.
    checkpoint_hook:
        Called after every completed round (after ``on_round_end``)
        with ``(round_index, progress)`` — the driver decides whether
        the round is due and persists the full
        :class:`~repro.faults.recovery.RunSnapshot`.
    selection_policy:
        Optional :class:`repro.hier.selection.SelectionPolicy` (duck-
        typed: ``select(round_index, roster, rng)`` returning a
        non-empty roster-ordered subset). When given it replaces the
        uniform ``participation_fraction`` draw — the churn-filtered
        roster still applies first, so policies only ever see live
        devices. ``None`` keeps the status-quo draw bit-identical.
    """
    if straggler_policy not in ("abort", "skip"):
        raise ConfigurationError(
            f'straggler_policy must be "abort" or "skip", got {straggler_policy!r}'
        )
    if num_rounds <= 0:
        raise ConfigurationError(f"num_rounds must be positive, got {num_rounds}")
    if not 0.0 < participation_fraction <= 1.0:
        raise ConfigurationError(
            f"participation_fraction must be in (0, 1], got {participation_fraction}"
        )
    clients_by_id = {client.client_id: client for client in clients}
    if set(clients_by_id) != set(server.client_ids):
        raise FederationError(
            f"client set {sorted(clients_by_id)} does not match the server's "
            f"{sorted(server.client_ids)}"
        )
    if executor is None:
        missing_trainers = [cid for cid in clients_by_id if cid not in trainers]
        if missing_trainers:
            raise FederationError(
                f"no trainer supplied for clients {missing_trainers}"
            )

    metrics = active_metrics(metrics)
    tracer = active_tracer(tracer)
    profiler = active_profiler(profiler)
    events = active_events(events)
    transport = server.transport

    rng = as_generator(seed)
    bytes_before = transport.total_bytes
    messages_before = transport.total_messages
    aggregations_before = server.rounds_aggregated
    participation_log: List[List[str]] = []
    straggler_log: List[List[str]] = []
    quarantine_log: List[List[str]] = []
    tolerant = straggler_policy == "skip"

    start_round = 0
    prior_bytes = 0
    prior_messages = 0
    prior_aggregations = 0
    if resume is not None:
        start_round = resume.next_round
        if not 0 <= start_round <= num_rounds:
            raise ConfigurationError(
                f"resume round {start_round} outside 0..{num_rounds}"
            )
        if resume.rng_state is not None:
            from repro.utils.checkpoint import set_rng_state

            set_rng_state(rng, resume.rng_state)
        participation_log.extend(list(r) for r in resume.participation_log)
        straggler_log.extend(list(r) for r in resume.straggler_log)
        quarantine_log.extend(
            list(r) for r in getattr(resume, "quarantine_log", [])
        )
        prior_bytes = resume.prior_bytes
        prior_messages = resume.prior_messages
        prior_aggregations = resume.prior_aggregations

    kill_round = getattr(fault_plan, "kill_round", None)

    def _progress(next_round: int) -> object:
        # Imported lazily: repro.faults depends on this package.
        from repro.faults.recovery import OrchestratorProgress
        from repro.utils.checkpoint import rng_state

        return OrchestratorProgress(
            next_round=next_round,
            rng_state=rng_state(rng),
            participation_log=[list(r) for r in participation_log],
            straggler_log=[list(r) for r in straggler_log],
            prior_bytes=prior_bytes + transport.total_bytes - bytes_before,
            prior_messages=prior_messages
            + transport.total_messages
            - messages_before,
            prior_aggregations=prior_aggregations
            + server.rounds_aggregated
            - aggregations_before,
            quarantine_log=[list(r) for r in quarantine_log],
        )

    _LOG.info(
        "federated run starting",
        extra={
            "num_rounds": num_rounds,
            "num_clients": len(clients_by_id),
            "participation_fraction": participation_fraction,
            "straggler_policy": straggler_policy,
            "start_round": start_round,
        },
    )

    for round_index in range(start_round, num_rounds):
        if kill_round == round_index and resume is None:
            _LOG.warning(
                "injected server kill", extra={"round": round_index}
            )
            raise RunKilledError(
                f"fault plan killed the run at the start of round "
                f"{round_index}"
            )
        roster: Sequence[str] = server.client_ids
        if churn_plan is not None:
            active = set(churn_plan.active(round_index))
            joined = churn_plan.joins(round_index)
            left = churn_plan.leaves(round_index)
            if metrics is not None:
                metrics.set_gauge("federated.active_devices", len(active))
                if joined:
                    metrics.inc("federated.joins", len(joined))
                if left:
                    metrics.inc("federated.leaves", len(left))
            if joined or left:
                if events is not None:
                    events.emit(
                        {
                            "type": "churn",
                            "round": round_index,
                            "joined": sorted(joined),
                            "left": sorted(left),
                            "active": len(active),
                        }
                    )
                _LOG.info(
                    "fleet churn",
                    extra={
                        "round": round_index,
                        "joined": list(joined),
                        "left": list(left),
                        "active": len(active),
                    },
                )
            roster = [cid for cid in server.client_ids if cid in active]
            if not roster:
                # The whole fleet is offline: a membership gap, not a
                # failure. The global model carries over unchanged; the
                # round still emits one (non-aggregated) span so traces
                # and the aggregation cross-check stay aligned.
                participation_log.append([])
                straggler_log.append([])
                quarantine_log.append([])
                if tracer is not None:
                    tracer.start_round(round_index, [])
                    empty_span = tracer.end_round(aggregated=False)
                    if events is not None:
                        events.emit(empty_span.as_dict())
                if metrics is not None:
                    metrics.inc("federated.rounds")
                    metrics.inc("federated.rounds_empty")
                    metrics.set_gauge("federated.last_round", round_index)
                _LOG.warning(
                    "no active device this round; round skipped",
                    extra={"round": round_index},
                )
                if on_round_end is not None:
                    on_round_end(round_index, server)
                if checkpoint_hook is not None:
                    checkpoint_hook(round_index, _progress(round_index + 1))
                continue
        if selection_policy is not None:
            participating = list(
                selection_policy.select(round_index, roster, rng)
            )
            if not participating:
                raise FederationError(
                    f"selection policy picked no client in round "
                    f"{round_index} from roster of {len(roster)}"
                )
        else:
            participating = _draw_participants(
                roster, participation_fraction, rng
            )
        participation_log.append(list(participating))
        setattr(server, "last_aggregation_quarantined", [])
        if tracer is not None:
            tracer.start_round(round_index, participating)

        try:
            stragglers, update_norm, round_aggregated = _run_one_round(
                server,
                clients_by_id,
                trainers,
                round_index,
                participating,
                aggregation_weights,
                straggler_policy,
                metrics,
                tracer,
                profiler,
                executor,
            )
        except Exception:
            if tracer is not None and tracer.current_round is not None:
                _attach_tier_phases(server, tracer)
                tracer.end_round(aggregated=False, status=STATUS_FAILED)
            _LOG.error(
                "federated round failed", extra={"round": round_index}
            )
            raise
        _attach_tier_phases(server, tracer)
        straggler_log.append(stragglers)
        quarantined = list(
            getattr(server, "last_aggregation_quarantined", [])
        )
        quarantine_log.append(quarantined)

        if metrics is not None:
            metrics.inc("federated.rounds")
            if quarantined:
                metrics.inc("federated.quarantined", len(quarantined))
            metrics.set_gauge("federated.last_round", round_index)
            if stragglers:
                metrics.inc("federated.rounds_with_stragglers")
        if events is not None and quarantined:
            events.emit(
                {
                    "type": "quarantine",
                    "round": round_index,
                    "devices": list(quarantined),
                }
            )
        if tracer is not None:
            span = tracer.end_round(
                stragglers=stragglers,
                update_norm=update_norm,
                aggregated=round_aggregated,
            )
            if events is not None:
                events.emit(span.as_dict())
            if metrics is not None and span.update_norm is not None:
                metrics.observe("federated.update_norm", span.update_norm)
            _LOG.info(
                "round complete",
                extra={
                    "round": round_index,
                    "participants": len(participating),
                    "stragglers": len(stragglers),
                    "bytes": span.bytes_transferred,
                    "update_norm": span.update_norm,
                },
            )
        else:
            _LOG.info(
                "round complete",
                extra={
                    "round": round_index,
                    "participants": len(participating),
                    "stragglers": len(stragglers),
                },
            )

        if on_round_end is not None:
            on_round_end(round_index, server)
        if checkpoint_hook is not None:
            checkpoint_hook(round_index, _progress(round_index + 1))

    aggregations_completed = server.rounds_aggregated - aggregations_before
    rounds_executed = num_rounds - start_round
    if tracer is not None and rounds_executed > 0:
        # The tracer watched every aggregate phase; the legacy result
        # object and the telemetry must tell the same story.
        traced = sum(
            1 for span in tracer.rounds[-rounds_executed:] if span.aggregated
        )
        if traced != aggregations_completed:
            raise FederationError(
                f"tracer saw {traced} aggregations but the server completed "
                f"{aggregations_completed}"
            )

    result = FederatedRunResult(
        rounds_completed=num_rounds,
        total_bytes_communicated=prior_bytes
        + transport.total_bytes
        - bytes_before,
        total_messages=prior_messages
        + transport.total_messages
        - messages_before,
        participation_by_round=participation_log,
        stragglers_by_round=straggler_log,
        aggregations_completed=prior_aggregations + aggregations_completed,
        quarantined_by_round=quarantine_log,
    )
    if metrics is not None:
        metrics.inc("federated.bytes_total", result.total_bytes_communicated)
        metrics.inc("federated.messages_total", result.total_messages)
        metrics.inc("federated.aggregations", result.aggregations_completed)
    if events is not None:
        events.emit(
            {
                "type": "run_summary",
                "rounds": result.rounds_completed,
                "bytes": result.total_bytes_communicated,
                "messages": result.total_messages,
                "aggregations": result.aggregations_completed,
                "straggler_rate": result.straggler_rate,
            }
        )
    _LOG.info(
        "federated run finished",
        extra={
            "rounds": result.rounds_completed,
            "bytes": result.total_bytes_communicated,
            "straggler_rate": round(result.straggler_rate, 6),
        },
    )
    return result


def _run_one_round(
    server: FederatedServer,
    clients_by_id: Dict[str, FederatedClient],
    trainers: Dict[str, LocalTrainer],
    round_index: int,
    participating: Sequence[str],
    aggregation_weights: Optional[Dict[str, float]],
    straggler_policy: str,
    metrics: Optional[MetricsRegistry],
    tracer: Optional[RoundTracer],
    profiler: Optional[ScopeProfiler] = None,
    executor: Optional[object] = None,
) -> "tuple[List[str], Optional[float], bool]":
    """Broadcast → train → upload → aggregate.

    Returns the round's stragglers, the aggregation's parameter-update
    norm when traced (``None`` untraced — computing it costs a deep
    copy of the global model), and whether the round aggregated at all.
    Under the skip policy a round every client lost — no broadcast
    delivered, every trainer crashed, or every upload gone — is skipped
    rather than fatal: the global model carries over unchanged.
    """
    transport = server.transport
    tolerant = straggler_policy == "skip"

    bytes_at = transport.total_bytes
    with profile("federated.broadcast", profiler):
        if tracer is not None:
            with tracer.phase(PHASE_BROADCAST) as span:
                reached = server.broadcast(
                    round_index, recipients=participating, tolerant=tolerant
                )
                span.bytes_transferred = transport.total_bytes - bytes_at
        else:
            reached = server.broadcast(
                round_index, recipients=participating, tolerant=tolerant
            )
    if metrics is not None:
        metrics.inc("federated.broadcast_bytes", transport.total_bytes - bytes_at)

    survivors: List[str] = []
    stragglers: List[str] = []
    unreached = [cid for cid in participating if cid not in reached]
    if unreached:
        # Broadcast never arrived: those clients sit the round out.
        stragglers.extend(unreached)
        if metrics is not None:
            metrics.inc("federated.stragglers", len(unreached))
        participating = [cid for cid in participating if cid in reached]

    # Install the broadcast before training. A dropped broadcast leaves
    # the client's inbox empty; under the skip policy that client sits
    # the round out instead of aborting the run.
    installed: List[str] = []
    for client_id in participating:
        try:
            clients_by_id[client_id].receive_global()
        except FederationError:
            if not tolerant:
                raise
            stragglers.append(client_id)
            if metrics is not None:
                metrics.inc("federated.stragglers")
            _LOG.warning(
                "no broadcast arrived; client skipped for this round",
                extra={"round": round_index, "client_id": client_id},
            )
            continue
        installed.append(client_id)
    participating = installed
    if not participating:
        if not tolerant:
            raise FederationError(
                f"round {round_index}: the broadcast reached no client"
            )
        # Every client lost the broadcast: the round is a wash. The
        # global model carries over unchanged and training resumes next
        # round — a real deployment rides out a dead round the same way.
        if metrics is not None:
            metrics.inc("federated.rounds_skipped")
        _LOG.warning(
            "no client received the broadcast; round skipped",
            extra={"round": round_index},
        )
        return stragglers, None, False

    def upload(client_id: str) -> bool:
        """Send one client's local model; False if it was lost."""
        client = clients_by_id[client_id]
        bytes_at = transport.total_bytes
        try:
            with profile("federated.upload", profiler):
                if tracer is not None:
                    with tracer.phase(PHASE_UPLOAD, client_id=client_id) as span:
                        client.send_local(round_index)
                        span.bytes_transferred = transport.total_bytes - bytes_at
                else:
                    client.send_local(round_index)
        except TransportError as error:
            if not tolerant:
                raise
            stragglers.append(client_id)
            if metrics is not None:
                metrics.inc("federated.stragglers")
            _LOG.warning(
                "upload failed; client skipped for this round",
                extra={
                    "round": round_index,
                    "client_id": client_id,
                    "error": repr(error),
                },
            )
            return False
        if metrics is not None:
            metrics.inc(
                "federated.upload_bytes", transport.total_bytes - bytes_at
            )
        return True

    if executor is not None:
        # Parallel local training: broadcasts were installed serially
        # above (deterministic transport accounting), the executor fans
        # the compute out, then uploads run serially in participating
        # order — the same wire traffic as the serial path below.
        with profile("federated.local_train", profiler):
            outcomes = executor.run_local_train(round_index, participating)
        for client_id in participating:
            outcome = outcomes[client_id]
            failed = outcome.error is not None
            if tracer is not None:
                tracer.add_phase(
                    PHASE_LOCAL_TRAIN,
                    client_id=client_id,
                    duration_s=outcome.duration_s,
                    status=STATUS_FAILED if failed else STATUS_OK,
                )
            if failed:
                if straggler_policy == "abort":
                    raise FederationError(
                        f"client {client_id!r} failed during parallel local "
                        f"training in round {round_index}:\n{outcome.error}"
                    )
                stragglers.append(client_id)
                if metrics is not None:
                    metrics.inc("federated.stragglers")
                _LOG.warning(
                    "client straggled; skipping for this round",
                    extra={
                        "round": round_index,
                        "client_id": client_id,
                        "error": outcome.error.strip().splitlines()[-1],
                    },
                )
                continue
            if upload(client_id):
                survivors.append(client_id)
    else:
        for client_id in participating:
            try:
                with profile("federated.local_train", profiler):
                    if tracer is not None:
                        with tracer.phase(PHASE_LOCAL_TRAIN, client_id=client_id):
                            trainers[client_id](round_index)
                    else:
                        trainers[client_id](round_index)
            except Exception as error:
                if straggler_policy == "abort":
                    raise
                stragglers.append(client_id)
                if metrics is not None:
                    metrics.inc("federated.stragglers")
                _LOG.warning(
                    "client straggled; skipping for this round",
                    extra={
                        "round": round_index,
                        "client_id": client_id,
                        "error": repr(error),
                    },
                )
                continue
            if upload(client_id):
                survivors.append(client_id)

    if not survivors:
        if not tolerant:
            raise FederationError(
                f"round {round_index}: every participating client failed"
            )
        if metrics is not None:
            metrics.inc("federated.rounds_skipped")
        _LOG.warning(
            "every participating client failed; round skipped",
            extra={"round": round_index},
        )
        return stragglers, None, False

    update_norm: Optional[float] = None
    try:
        with profile("federated.aggregate", profiler):
            if tracer is not None:
                before = server.global_parameters
                with tracer.phase(PHASE_AGGREGATE):
                    after = server.aggregate(
                        round_index,
                        expected_clients=survivors,
                        weights=aggregation_weights,
                        tolerant=tolerant,
                    )
                update_norm = _update_norm(before, after)
            else:
                server.aggregate(
                    round_index,
                    expected_clients=survivors,
                    weights=aggregation_weights,
                    tolerant=tolerant,
                )
    except AggregationError:
        # Every surviving upload was lost on the wire (or rejected by
        # the robust aggregator): nothing to fold in this round.
        if not tolerant:
            raise
        stragglers.extend(survivors)
        if metrics is not None:
            metrics.inc("federated.stragglers", len(survivors))
            metrics.inc("federated.rounds_skipped")
        _LOG.warning(
            "no usable update arrived; round skipped",
            extra={"round": round_index},
        )
        return stragglers, None, False
    if server.last_aggregation_missing:
        # Uploads that were silently dropped on the wire: the sender
        # thinks it participated, the server never saw it.
        stragglers.extend(server.last_aggregation_missing)
        if metrics is not None:
            metrics.inc(
                "federated.stragglers", len(server.last_aggregation_missing)
            )
    return stragglers, update_norm, True


def _attach_tier_phases(
    server: FederatedServer, tracer: Optional[RoundTracer]
) -> None:
    """Move a hierarchical server's per-node phase records into the trace.

    Multi-tier servers (:class:`repro.hier.shard.HierarchicalFederation`)
    time each tier node's broadcast/aggregate work themselves; the
    records are drained every round regardless (so an untraced run
    doesn't accumulate them) and appended to the open round span as
    ``tier``-tagged phases when a tracer is attached. Flat servers have
    no ``drain_tier_phases`` and are untouched.
    """
    drain = getattr(server, "drain_tier_phases", None)
    if drain is None:
        return
    records = drain()
    if tracer is None or tracer.current_round is None:
        return
    for record in records:
        tracer.add_phase(
            str(record["name"]),
            client_id=str(record["node_id"]),
            duration_s=float(record["duration_s"]),
            bytes_transferred=int(record["bytes"]),
            status=str(record["status"]),
            tier=str(record["tier"]),
        )


def _draw_participants(
    client_ids: Sequence[str], fraction: float, rng: np.random.Generator
) -> List[str]:
    if fraction >= 1.0:
        return list(client_ids)
    count = max(1, int(round(fraction * len(client_ids))))
    chosen = rng.choice(
        np.asarray(client_ids, dtype=object), size=count, replace=False
    )
    order = {client_id: index for index, client_id in enumerate(client_ids)}
    return sorted((str(c) for c in chosen), key=order.__getitem__)
