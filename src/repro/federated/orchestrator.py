"""Round orchestration (Algorithm 2).

Drives the full federated loop: broadcast → local training on every
client → upload → synchronous aggregation, for ``R`` rounds. Local
training itself is injected as one callable per client (the experiments
layer supplies a closure that runs Algorithm 1 against that client's
device environment), which keeps this module free of simulator
dependencies and lets tests drive the protocol with stub trainers.

``participation_fraction`` extends the paper's always-on setting with
partial client participation per round (standard in FL practice) for
the corresponding ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, FederationError
from repro.federated.client import FederatedClient
from repro.federated.server import FederatedServer
from repro.utils.rng import SeedLike, as_generator

#: Signature of a per-client local trainer: ``trainer(round_index)``.
LocalTrainer = Callable[[int], None]

#: Optional end-of-round hook: ``hook(round_index, server)``.
RoundHook = Callable[[int, FederatedServer], None]


@dataclass
class FederatedRunResult:
    """Summary of a completed federated training run."""

    rounds_completed: int
    total_bytes_communicated: int
    total_messages: int
    participation_by_round: List[List[str]] = field(default_factory=list)
    stragglers_by_round: List[List[str]] = field(default_factory=list)

    @property
    def bytes_per_round(self) -> float:
        if self.rounds_completed == 0:
            return 0.0
        return self.total_bytes_communicated / self.rounds_completed


def run_federated_training(
    server: FederatedServer,
    clients: Sequence[FederatedClient],
    trainers: Dict[str, LocalTrainer],
    num_rounds: int,
    on_round_end: Optional[RoundHook] = None,
    participation_fraction: float = 1.0,
    aggregation_weights: Optional[Dict[str, float]] = None,
    straggler_policy: str = "abort",
    seed: SeedLike = None,
) -> FederatedRunResult:
    """Run ``num_rounds`` of federated averaging (Algorithm 2).

    Parameters
    ----------
    server, clients:
        The endpoints, already wired to one shared transport.
    trainers:
        ``client_id -> callable(round_index)`` performing that client's
        local optimisation between receive and send.
    on_round_end:
        Invoked after each aggregation — the evaluation protocol of
        Section IV-A ("after each training round, we evaluate the
        policies") hooks in here.
    participation_fraction:
        Fraction of clients drawn uniformly per round (paper: 1.0,
        "each client participates in all R rounds").
    aggregation_weights:
        Optional per-client weights for the weighted-averaging ablation.
    straggler_policy:
        What to do when a client's local trainer raises: ``"abort"``
        (the paper's strict synchronous semantics — the whole run
        fails) or ``"skip"`` (exclude the failed client from this
        round's aggregation and continue with the survivors, the
        fault-tolerance extension). At least one client must survive
        each round.
    """
    if straggler_policy not in ("abort", "skip"):
        raise ConfigurationError(
            f'straggler_policy must be "abort" or "skip", got {straggler_policy!r}'
        )
    if num_rounds <= 0:
        raise ConfigurationError(f"num_rounds must be positive, got {num_rounds}")
    if not 0.0 < participation_fraction <= 1.0:
        raise ConfigurationError(
            f"participation_fraction must be in (0, 1], got {participation_fraction}"
        )
    clients_by_id = {client.client_id: client for client in clients}
    if set(clients_by_id) != set(server.client_ids):
        raise FederationError(
            f"client set {sorted(clients_by_id)} does not match the server's "
            f"{sorted(server.client_ids)}"
        )
    missing_trainers = [cid for cid in clients_by_id if cid not in trainers]
    if missing_trainers:
        raise FederationError(f"no trainer supplied for clients {missing_trainers}")

    rng = as_generator(seed)
    bytes_before = server.transport.total_bytes
    messages_before = server.transport.total_messages
    participation_log: List[List[str]] = []
    straggler_log: List[List[str]] = []

    for round_index in range(num_rounds):
        participating = _draw_participants(
            server.client_ids, participation_fraction, rng
        )
        participation_log.append(list(participating))

        server.broadcast(round_index, recipients=participating)
        survivors: List[str] = []
        stragglers: List[str] = []
        for client_id in participating:
            client = clients_by_id[client_id]
            client.receive_global()
            try:
                trainers[client_id](round_index)
            except Exception:
                if straggler_policy == "abort":
                    raise
                stragglers.append(client_id)
                continue
            client.send_local(round_index)
            survivors.append(client_id)
        straggler_log.append(stragglers)
        if not survivors:
            raise FederationError(
                f"round {round_index}: every participating client failed"
            )
        server.aggregate(
            round_index,
            expected_clients=survivors,
            weights=aggregation_weights,
        )
        if on_round_end is not None:
            on_round_end(round_index, server)

    return FederatedRunResult(
        rounds_completed=num_rounds,
        total_bytes_communicated=server.transport.total_bytes - bytes_before,
        total_messages=server.transport.total_messages - messages_before,
        participation_by_round=participation_log,
        stragglers_by_round=straggler_log,
    )


def _draw_participants(
    client_ids: Sequence[str], fraction: float, rng: np.random.Generator
) -> List[str]:
    if fraction >= 1.0:
        return list(client_ids)
    count = max(1, int(round(fraction * len(client_ids))))
    chosen = rng.choice(len(client_ids), size=count, replace=False)
    return [client_ids[i] for i in sorted(chosen)]
