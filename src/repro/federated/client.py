"""The device-side federated client (Algorithm 2, client side).

A thin shim between a learning agent and the transport: it installs the
broadcast global model into the agent at the start of a round and ships
the locally optimised parameters back at the end. Crucially it exposes
*no* path for raw samples — only :meth:`send_local` exists, and it
serialises parameters exclusively. The replay buffer stays inside the
agent on the device, which is the privacy argument of the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import FederationError
from repro.federated.codecs import Float32Codec
from repro.federated.server import GLOBAL_MODEL_KIND, LOCAL_MODEL_KIND
from repro.federated.transport import InMemoryTransport, Message
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.rl.agent import NeuralBanditAgent

_LOG = get_logger("federated.client")


class FederatedClient:
    """One participating device's communication endpoint."""

    def __init__(
        self,
        client_id: str,
        agent: NeuralBanditAgent,
        transport: InMemoryTransport,
        server_id: str = "server",
        codec=None,
        metrics: Optional[MetricsRegistry] = None,
        retry=None,
    ) -> None:
        self.client_id = client_id
        self.agent = agent
        self.transport = transport
        self.server_id = server_id
        self.codec = codec if codec is not None else Float32Codec()
        self.metrics = metrics
        #: Optional :class:`repro.faults.retry.RetryPolicy` for uploads.
        self.retry = retry
        self._rounds_received = 0
        self._rounds_sent = 0

    @property
    def rounds_received(self) -> int:
        return self._rounds_received

    @property
    def rounds_sent(self) -> int:
        return self._rounds_sent

    def receive_global(self) -> int:
        """Install the most recent broadcast global model.

        Returns the round index of the installed model. Installs reset
        the agent's optimiser state (the moments belonged to a
        different trajectory).
        """
        messages = [
            m
            for m in self.transport.receive_all(self.client_id)
            if m.kind == GLOBAL_MODEL_KIND
        ]
        if not messages:
            raise FederationError(
                f"client {self.client_id!r} has no pending global model"
            )
        latest = messages[-1]
        shapes = self.agent.network.parameter_shapes()
        self.agent.set_parameters(
            self.codec.decode(latest.payload, shapes), reset_optimizer=True
        )
        self._rounds_received += 1
        if self.metrics is not None:
            self.metrics.inc("client.models_received")
        _LOG.debug(
            "installed global model",
            extra={"client_id": self.client_id, "round": latest.round_index},
        )
        return latest.round_index

    def send_local(self, round_index: int) -> int:
        """Ship the locally optimised model to the server.

        Returns the payload size in bytes (the paper's 2.8 kB per
        transfer for the Table-I network). With a ``retry`` policy set,
        transient transport failures are retried with capped seeded
        backoff before giving up.
        """
        payload = self.codec.encode(self.agent.get_parameters())
        message = Message(
            sender=self.client_id,
            recipient=self.server_id,
            kind=LOCAL_MODEL_KIND,
            payload=payload,
            round_index=round_index,
        )
        if self.retry is None:
            self.transport.send(message)
        else:
            # Imported lazily: repro.faults depends on this package.
            from repro.faults.plan import stable_token
            from repro.faults.retry import PHASE_UPLOAD, execute_with_retry

            execute_with_retry(
                lambda: self.transport.send(message),
                self.retry,
                phase=PHASE_UPLOAD,
                path=(round_index, stable_token(self.client_id)),
                metrics=self.metrics,
                label=f"upload<-{self.client_id}",
            )
        self._rounds_sent += 1
        if self.metrics is not None:
            self.metrics.inc("client.models_sent")
            self.metrics.observe("client.upload_bytes", len(payload))
        _LOG.debug(
            "uploaded local model",
            extra={
                "client_id": self.client_id,
                "round": round_index,
                "payload_bytes": len(payload),
            },
        )
        return len(payload)
