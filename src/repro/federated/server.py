"""The central aggregation server (Algorithm 2, server side).

Holds the global policy network, broadcasts it to all clients at the
start of each round, then synchronously waits for every participating
client's local model and replaces the global model with their
(unweighted, by default) federated average. Models travel as serialized
``float32`` payloads through the transport so the server also produces
honest communication-byte numbers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FederationError
from repro.federated.averaging import federated_average
from repro.federated.codecs import Float32Codec
from repro.federated.transport import InMemoryTransport, Message
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry

GLOBAL_MODEL_KIND = "global_model"
LOCAL_MODEL_KIND = "local_model"

_LOG = get_logger("federated.server")


class FederatedServer:
    """Synchronous federated-averaging server."""

    def __init__(
        self,
        initial_parameters: Sequence[np.ndarray],
        client_ids: Sequence[str],
        transport: InMemoryTransport,
        server_id: str = "server",
        codec=None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if not client_ids:
            raise FederationError("a federated server needs at least one client")
        if len(set(client_ids)) != len(client_ids):
            raise FederationError(f"duplicate client ids in {list(client_ids)}")
        self.server_id = server_id
        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.transport = transport
        self.codec = codec if codec is not None else Float32Codec()
        self.metrics = metrics
        self._global: List[np.ndarray] = [
            np.array(p, dtype=np.float64, copy=True) for p in initial_parameters
        ]
        self._shapes = [p.shape for p in self._global]
        self._round_count = 0

    @property
    def global_parameters(self) -> List[np.ndarray]:
        """Deep copies of the current global model."""
        return [p.copy() for p in self._global]

    @property
    def rounds_aggregated(self) -> int:
        """Completed aggregation rounds."""
        return self._round_count

    def broadcast(
        self, round_index: int, recipients: Optional[Sequence[str]] = None
    ) -> None:
        """Send the global model to every (participating) client."""
        payload = self.codec.encode(self._global)
        targets = recipients if recipients is not None else self.client_ids
        if self.metrics is not None:
            self.metrics.inc("server.broadcasts")
            self.metrics.inc("server.broadcast_models", len(targets))
        _LOG.debug(
            "broadcasting global model",
            extra={
                "round": round_index,
                "recipients": len(targets),
                "payload_bytes": len(payload),
            },
        )
        for client_id in recipients if recipients is not None else self.client_ids:
            if client_id not in self.client_ids:
                raise FederationError(f"unknown client {client_id!r}")
            self.transport.send(
                Message(
                    sender=self.server_id,
                    recipient=client_id,
                    kind=GLOBAL_MODEL_KIND,
                    payload=payload,
                    round_index=round_index,
                )
            )

    def aggregate(
        self,
        round_index: int,
        expected_clients: Optional[Sequence[str]] = None,
        weights: Optional[Dict[str, float]] = None,
    ) -> List[np.ndarray]:
        """Combine the round's local models into the next global model.

        Synchronous semantics: every expected client must have sent a
        local model for ``round_index``; anything else is an error (the
        paper's server "waits for all devices"). ``weights`` enables
        the sample-weighted ablation; the default is the paper's
        unweighted mean.
        """
        expected = tuple(expected_clients) if expected_clients is not None else self.client_ids
        received: Dict[str, List[np.ndarray]] = {}
        for message in self.transport.receive_all(self.server_id):
            if message.kind != LOCAL_MODEL_KIND:
                raise FederationError(
                    f"server received unexpected message kind {message.kind!r}"
                )
            if message.round_index != round_index:
                raise FederationError(
                    f"local model from {message.sender!r} is for round "
                    f"{message.round_index}, expected {round_index}"
                )
            if message.sender in received:
                raise FederationError(
                    f"duplicate local model from {message.sender!r}"
                )
            received[message.sender] = self.codec.decode(
                message.payload, self._shapes
            )
        missing = [cid for cid in expected if cid not in received]
        if missing:
            raise FederationError(
                f"synchronous aggregation round {round_index} is missing "
                f"models from {missing}"
            )
        unexpected = [cid for cid in received if cid not in expected]
        if unexpected:
            raise FederationError(
                f"received models from non-participating clients {unexpected}"
            )

        parameter_sets = [received[cid] for cid in expected]
        weight_list: Optional[List[float]] = None
        if weights is not None:
            try:
                weight_list = [weights[cid] for cid in expected]
            except KeyError as error:
                raise FederationError(f"missing weight for client {error}") from None
        self._global = federated_average(parameter_sets, weight_list)
        self._round_count += 1
        if self.metrics is not None:
            self.metrics.inc("server.aggregations")
            self.metrics.set_gauge("server.models_in_last_aggregate", len(expected))
        _LOG.debug(
            "aggregated local models",
            extra={"round": round_index, "models": len(expected)},
        )
        return self.global_parameters
