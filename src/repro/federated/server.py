"""The central aggregation server (Algorithm 2, server side).

Holds the global policy network, broadcasts it to all clients at the
start of each round, then synchronously waits for every participating
client's local model and replaces the global model with their
(unweighted, by default) federated average. Models travel as serialized
``float32`` payloads through the transport so the server also produces
honest communication-byte numbers.

Resilience hooks (all off by default, preserving the paper's strict
synchronous semantics): a pluggable robust ``aggregator``
(:mod:`repro.faults.aggregation`), a ``retry`` policy applied to each
broadcast send, *tolerant* broadcast/aggregation for lossy transports
(missing uploads are recorded instead of fatal, duplicates are
deduplicated keeping the first arrival), and :meth:`restore` for
crash-resume.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import AggregationError, FederationError, TransportError
from repro.federated.averaging import federated_average
from repro.federated.codecs import Float32Codec
from repro.federated.transport import InMemoryTransport, Message
from repro.obs.logging import get_logger
from repro.obs.metrics import MetricsRegistry

GLOBAL_MODEL_KIND = "global_model"
LOCAL_MODEL_KIND = "local_model"

_LOG = get_logger("federated.server")


class FederatedServer:
    """Synchronous federated-averaging server."""

    def __init__(
        self,
        initial_parameters: Sequence[np.ndarray],
        client_ids: Sequence[str],
        transport: InMemoryTransport,
        server_id: str = "server",
        codec=None,
        metrics: Optional[MetricsRegistry] = None,
        aggregator=None,
        retry=None,
        quarantine=None,
    ) -> None:
        if not client_ids:
            raise FederationError("a federated server needs at least one client")
        if len(set(client_ids)) != len(client_ids):
            raise FederationError(f"duplicate client ids in {list(client_ids)}")
        self.server_id = server_id
        self.client_ids: Tuple[str, ...] = tuple(client_ids)
        self.transport = transport
        self.codec = codec if codec is not None else Float32Codec()
        self.metrics = metrics
        #: Optional :class:`repro.faults.aggregation.Aggregator`; ``None``
        #: keeps the paper's plain (guarded) federated average.
        self.aggregator = aggregator
        #: Optional :class:`repro.faults.retry.RetryPolicy` for broadcasts.
        self.retry = retry
        #: Optional :class:`repro.guard.quarantine.QuarantineManager`
        #: screening updates *before* they reach the aggregator.
        self.quarantine = quarantine
        self._global: List[np.ndarray] = [
            np.array(p, dtype=np.float64, copy=True) for p in initial_parameters
        ]
        self._shapes = [p.shape for p in self._global]
        self._round_count = 0
        #: Clients expected but absent in the last tolerant aggregation.
        self.last_aggregation_missing: List[str] = []
        #: Clients whose updates a robust aggregator rejected last round.
        self.last_aggregation_rejected: List[str] = []
        #: Clients the quarantine screen excluded in the last aggregation.
        self.last_aggregation_quarantined: List[str] = []

    @property
    def global_parameters(self) -> List[np.ndarray]:
        """Deep copies of the current global model."""
        return [p.copy() for p in self._global]

    @property
    def rounds_aggregated(self) -> int:
        """Completed aggregation rounds."""
        return self._round_count

    def restore(
        self, parameters: Sequence[np.ndarray], rounds_aggregated: int
    ) -> None:
        """Reinstall a checkpointed global model and round counter."""
        if len(parameters) != len(self._shapes):
            raise FederationError(
                f"restore got {len(parameters)} arrays, expected "
                f"{len(self._shapes)}"
            )
        for index, (array, shape) in enumerate(zip(parameters, self._shapes)):
            if np.shape(array) != shape:
                raise FederationError(
                    f"restore array {index} has shape {np.shape(array)}, "
                    f"expected {shape}"
                )
        if rounds_aggregated < 0:
            raise FederationError(
                f"rounds_aggregated must be >= 0, got {rounds_aggregated}"
            )
        self._global = [
            np.array(p, dtype=np.float64, copy=True) for p in parameters
        ]
        self._round_count = rounds_aggregated

    def broadcast(
        self,
        round_index: int,
        recipients: Optional[Sequence[str]] = None,
        tolerant: bool = False,
    ) -> List[str]:
        """Send the global model to every (participating) client.

        Returns the clients actually reached. On a reliable transport
        that is every recipient; with injected faults, sends are
        retried under ``self.retry`` (when set), and a client whose
        broadcast still fails is skipped (``tolerant=True`` — it
        becomes a straggler for the round) or fatal (``tolerant=False``,
        the paper's strict semantics).
        """
        payload = self.codec.encode(self._global)
        targets = recipients if recipients is not None else self.client_ids
        if self.metrics is not None:
            self.metrics.inc("server.broadcasts")
            self.metrics.inc("server.broadcast_models", len(targets))
        _LOG.debug(
            "broadcasting global model",
            extra={
                "round": round_index,
                "recipients": len(targets),
                "payload_bytes": len(payload),
            },
        )
        reached: List[str] = []
        for client_id in targets:
            if client_id not in self.client_ids:
                raise FederationError(f"unknown client {client_id!r}")
            message = Message(
                sender=self.server_id,
                recipient=client_id,
                kind=GLOBAL_MODEL_KIND,
                payload=payload,
                round_index=round_index,
            )
            try:
                self._send_with_retry(message, round_index, client_id)
            except TransportError as error:
                if not tolerant:
                    raise
                if self.metrics is not None:
                    self.metrics.inc("server.broadcast_failures")
                _LOG.warning(
                    "broadcast failed; client skipped for this round",
                    extra={
                        "round": round_index,
                        "client_id": client_id,
                        "error": repr(error),
                    },
                )
                continue
            reached.append(client_id)
        return reached

    def _send_with_retry(
        self, message: Message, round_index: int, client_id: str
    ) -> None:
        if self.retry is None:
            self.transport.send(message)
            return
        # Imported lazily: repro.faults depends on this package.
        from repro.faults.plan import stable_token
        from repro.faults.retry import PHASE_BROADCAST, execute_with_retry

        outcome = execute_with_retry(
            lambda: self.transport.send(message),
            self.retry,
            phase=PHASE_BROADCAST,
            path=(round_index, stable_token(client_id)),
            metrics=self.metrics,
            label=f"broadcast->{client_id}",
        )
        if outcome.backoff_s > 0.0 and self.metrics is not None:
            self.metrics.observe("server.broadcast_backoff_s", outcome.backoff_s)

    def aggregate(
        self,
        round_index: int,
        expected_clients: Optional[Sequence[str]] = None,
        weights: Optional[Dict[str, float]] = None,
        tolerant: bool = False,
    ) -> List[np.ndarray]:
        """Combine the round's local models into the next global model.

        Strict (default) semantics: every expected client must have
        sent exactly one local model for ``round_index``; anything else
        is an error (the paper's server "waits for all devices").
        ``tolerant=True`` relaxes this for lossy transports: stale
        messages are discarded, duplicates keep the first arrival, and
        missing clients are recorded in ``last_aggregation_missing``
        while the received subset aggregates — as long as at least one
        model arrived. ``weights`` enables the sample-weighted
        ablation; the default is the paper's unweighted mean. With a
        robust ``self.aggregator`` attached, it replaces the plain
        average (rejected clients land in
        ``last_aggregation_rejected``).
        """
        expected = tuple(expected_clients) if expected_clients is not None else self.client_ids
        self.last_aggregation_missing = []
        self.last_aggregation_rejected = []
        self.last_aggregation_quarantined = []
        received: Dict[str, List[np.ndarray]] = {}
        for message in self.transport.receive_all(self.server_id):
            if message.kind != LOCAL_MODEL_KIND:
                raise FederationError(
                    f"server received unexpected message kind {message.kind!r}"
                )
            if message.round_index != round_index:
                if tolerant:
                    _LOG.warning(
                        "discarding stale local model",
                        extra={
                            "round": round_index,
                            "client_id": message.sender,
                            "message_round": message.round_index,
                        },
                    )
                    continue
                raise FederationError(
                    f"local model from {message.sender!r} is for round "
                    f"{message.round_index}, expected {round_index}"
                )
            if message.sender in received:
                if tolerant:
                    if self.metrics is not None:
                        self.metrics.inc("server.duplicates_dropped")
                    _LOG.warning(
                        "dropping duplicate local model",
                        extra={"round": round_index, "client_id": message.sender},
                    )
                    continue
                raise FederationError(
                    f"duplicate local model from {message.sender!r}"
                )
            received[message.sender] = self.codec.decode(
                message.payload, self._shapes
            )
        missing = [cid for cid in expected if cid not in received]
        if missing:
            if not tolerant:
                raise FederationError(
                    f"synchronous aggregation round {round_index} is missing "
                    f"models from {missing}"
                )
            if not received:
                raise AggregationError(
                    f"tolerant aggregation round {round_index} received no "
                    f"models at all (missing {missing})"
                )
            self.last_aggregation_missing = missing
            if self.metrics is not None:
                self.metrics.inc("server.aggregation_missing", len(missing))
            _LOG.warning(
                "aggregating without missing clients",
                extra={"round": round_index, "missing": missing},
            )
        unexpected = [cid for cid in received if cid not in expected]
        if unexpected:
            raise FederationError(
                f"received models from non-participating clients {unexpected}"
            )

        contributors = [cid for cid in expected if cid in received]
        parameter_sets = [received[cid] for cid in contributors]
        if self.quarantine is not None and contributors:
            contributors, parameter_sets, excluded = (
                self.quarantine.filter_round(
                    round_index, contributors, parameter_sets, self._global
                )
            )
            if excluded:
                self.last_aggregation_quarantined = list(excluded)
                if self.metrics is not None:
                    self.metrics.inc("server.quarantined", len(excluded))
                _LOG.warning(
                    "quarantine excluded client updates",
                    extra={
                        "round": round_index,
                        "quarantined": list(excluded),
                        "detail": self.quarantine.describe(),
                    },
                )
            if not contributors:
                raise AggregationError(
                    f"quarantine excluded every update in round {round_index} "
                    f"({excluded})"
                )
        weight_list: Optional[List[float]] = None
        if weights is not None:
            try:
                weight_list = [weights[cid] for cid in contributors]
            except KeyError as error:
                raise FederationError(f"missing weight for client {error}") from None
        if self.aggregator is not None:
            self._global = self.aggregator.aggregate(parameter_sets, weight_list)
            rejected = getattr(self.aggregator, "last_rejected_indices", ())
            self.last_aggregation_rejected = [
                contributors[index] for index in rejected
            ]
            if self.last_aggregation_rejected:
                if self.metrics is not None:
                    self.metrics.inc(
                        "server.aggregation_rejected",
                        len(self.last_aggregation_rejected),
                    )
                _LOG.warning(
                    "robust aggregator rejected client updates",
                    extra={
                        "round": round_index,
                        "rejected": self.last_aggregation_rejected,
                    },
                )
        else:
            self._global = federated_average(parameter_sets, weight_list)
        self._round_count += 1
        if self.metrics is not None:
            self.metrics.inc("server.aggregations")
            self.metrics.set_gauge(
                "server.models_in_last_aggregate", len(contributors)
            )
        _LOG.debug(
            "aggregated local models",
            extra={"round": round_index, "models": len(contributors)},
        )
        return self.global_parameters
