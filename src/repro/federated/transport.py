"""In-memory message transport with communication accounting.

The paper's devices exchange models with the server over a network;
its overhead analysis (Section IV-C) counts 2.8 kB per transfer. This
transport carries real serialized payloads between named endpoints and
keeps byte/message counters per link, so the reproduction *measures*
communication cost rather than estimating it. A simple latency model
(per-message overhead plus payload/bandwidth) supports the overhead
experiment.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import DefaultDict, Dict, List, Optional, Tuple

from repro.errors import TransportError
from repro.obs.metrics import MetricsRegistry
from repro.utils.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class Message:
    """One transfer between two endpoints."""

    sender: str
    recipient: str
    kind: str
    payload: bytes
    round_index: int = 0

    @property
    def num_bytes(self) -> int:
        return len(self.payload)


class InMemoryTransport:
    """Reliable, ordered, in-process message queues between endpoints."""

    def __init__(
        self,
        per_message_latency_s: float = 0.002,
        bandwidth_bytes_per_s: float = 1.25e6,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.per_message_latency_s = require_non_negative(
            "per_message_latency_s", per_message_latency_s
        )
        self.bandwidth_bytes_per_s = require_positive(
            "bandwidth_bytes_per_s", bandwidth_bytes_per_s
        )
        self.metrics = metrics
        self._inboxes: DefaultDict[str, List[Message]] = defaultdict(list)
        self._total_bytes = 0
        self._total_messages = 0
        self._bytes_by_link: DefaultDict[Tuple[str, str], int] = defaultdict(int)

    def send(self, message: Message) -> None:
        """Deliver ``message`` to its recipient's inbox."""
        if not message.payload:
            raise TransportError("refusing to send an empty payload")
        self.account(message)
        self.deliver(message)

    def account(self, message: Message) -> None:
        """Charge ``message`` to the byte/message counters without delivering.

        Fault-injecting wrappers use this to keep communication-cost
        accounting honest for messages that were put on the wire but
        dropped, duplicated, or timed out before reaching the recipient.
        """
        self._total_bytes += message.num_bytes
        self._total_messages += 1
        self._bytes_by_link[(message.sender, message.recipient)] += message.num_bytes
        if self.metrics is not None:
            self.metrics.inc("transport.messages")
            self.metrics.inc("transport.bytes", message.num_bytes)
            self.metrics.observe("transport.message_bytes", message.num_bytes)

    def deliver(self, message: Message) -> None:
        """Append an already-accounted ``message`` to the recipient's inbox."""
        self._inboxes[message.recipient].append(message)

    def receive_all(self, recipient: str) -> List[Message]:
        """Drain and return the recipient's inbox, in arrival order."""
        messages = self._inboxes[recipient]
        self._inboxes[recipient] = []
        return messages

    def pending(self, recipient: str) -> int:
        """Number of undelivered messages for ``recipient``."""
        return len(self._inboxes[recipient])

    @property
    def total_bytes(self) -> int:
        """Bytes sent over the lifetime of the transport."""
        return self._total_bytes

    @property
    def total_messages(self) -> int:
        return self._total_messages

    def bytes_by_link(self) -> Dict[Tuple[str, str], int]:
        """Bytes per (sender, recipient) pair."""
        return dict(self._bytes_by_link)

    def message_latency_s(self, num_bytes: int) -> float:
        """Modelled latency of one message of ``num_bytes``."""
        if num_bytes < 0:
            raise TransportError(f"num_bytes must be >= 0, got {num_bytes}")
        return self.per_message_latency_s + num_bytes / self.bandwidth_bytes_per_s

    def total_latency_s(self) -> float:
        """Modelled cumulative time spent communicating."""
        return (
            self._total_messages * self.per_message_latency_s
            + self._total_bytes / self.bandwidth_bytes_per_s
        )
