"""The ``obs-watch`` live monitor: tail telemetry, render fleet rollups.

Two sources feed the same :class:`~repro.obs.rollup.FleetRollup`:

* a streaming events JSONL (``run --events-out events.jsonl`` in one
  terminal, ``obs-watch events.jsonl`` in another), tailed by
  :class:`JsonlFollower` — tolerant of the torn trailing line a live
  writer leaves mid-append and of the file being rotated or truncated
  under the reader;
* a :class:`~repro.obs.store.RunStore` (``obs-watch --store runs.sqlite
  --run ID``), polled incrementally by sequence number.

``--once`` reads whatever is available, renders one snapshot and
exits — the scripting/CI mode. The snapshot excludes every wall-clock
field, so a same-seed run renders byte-identically no matter which
execution backend produced the stream (the cross-backend contract the
parallel engine maintains for the events themselves). Live mode
re-renders in place every ``--interval`` seconds until the stream's
``run_summary`` arrives or the user interrupts.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.obs.logging import get_logger
from repro.obs.rollup import FleetRollup

__all__ = ["JsonlFollower", "StoreFollower", "watch"]

_LOG = get_logger("obs.watch")

#: ANSI: clear screen and home the cursor (live re-render).
_CLEAR = "\x1b[2J\x1b[H"


class JsonlFollower:
    """Incrementally read new JSONL rows from a file being written.

    Keeps a byte offset plus a partial-line carry buffer between
    :meth:`poll` calls. A trailing line without a newline is held back
    until its newline arrives (the writer may still be mid-append); a
    held-back line that *still* fails to parse once complete is skipped
    with a warning, matching :func:`repro.obs.sink.iter_jsonl_rows`.
    If the file shrinks or is replaced (rotation/truncation), the
    follower resets to the start and re-reads — the header row simply
    flows through again, and downstream consumers treat it as the new
    run's identity.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self.rows_read = 0
        self.rows_skipped = 0
        self.resets = 0
        self._offset = 0
        self._carry = b""

    def poll(self) -> List[Dict[str, object]]:
        """All complete, parseable rows appended since the last poll."""
        try:
            size = os.stat(self.path).st_size
        except OSError:
            return []
        if size < self._offset:
            # The file shrank under us: rotated or truncated. Start over.
            _LOG.warning(
                "telemetry file shrank; re-reading from the start",
                extra={"path": self.path, "size": size},
            )
            self._offset = 0
            self._carry = b""
            self.resets += 1
        if size == self._offset and not self._carry:
            return []
        try:
            with open(self.path, "rb") as handle:
                handle.seek(self._offset)
                chunk = handle.read()
        except OSError:
            return []
        self._offset += len(chunk)
        data = self._carry + chunk
        lines = data.split(b"\n")
        # The final piece has no newline yet — carry it to the next poll.
        self._carry = lines.pop()
        rows: List[Dict[str, object]] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                self.rows_skipped += 1
                _LOG.warning(
                    "skipping unparseable telemetry line",
                    extra={"path": self.path},
                )
                continue
            if not isinstance(row, dict):
                self.rows_skipped += 1
                continue
            rows.append(row)
            self.rows_read += 1
        return rows


class StoreFollower:
    """Poll a RunStore's event table incrementally by sequence number.

    The store's event table does not carry the header row (run identity
    lives in the ``runs`` table instead), so the first poll synthesizes
    one from the run's metadata — the rollup then renders the same
    title/fingerprint line it would from the JSONL stream.
    """

    def __init__(self, store, run_id: int) -> None:
        self.store = store
        self.run_id = int(run_id)
        self.rows_read = 0
        self._after_seq = -1
        self._header_sent = False

    def poll(self) -> List[Dict[str, object]]:
        rows = self.store.events(self.run_id, after_seq=self._after_seq)
        if not self._header_sent:
            self._header_sent = True
            run = self.store.run(self.run_id)
            rows.insert(
                0,
                {
                    "type": "header",
                    "experiment": run.get("name"),
                    "run_fingerprint": run.get("fingerprint"),
                },
            )
        if rows:
            self._after_seq = max(
                int(row.get("seq", self._after_seq)) for row in rows
            )
            self.rows_read += len(rows)
        return rows


def _drain_into(rollup: FleetRollup, follower) -> int:
    rows = follower.poll()
    for row in rows:
        rollup.emit(row)
    return len(rows)


def watch(
    events_path=None,
    store=None,
    run_id: Optional[int] = None,
    once: bool = False,
    interval_s: float = 1.0,
    deterministic: bool = False,
    max_wait_s: Optional[float] = None,
    out=None,
) -> FleetRollup:
    """Run the monitor loop; returns the final rollup.

    ``once`` renders a single snapshot from everything currently
    available. ``deterministic`` additionally drops wall-clock fields
    from the rendering (``--once`` turns this on by default at the CLI,
    so scripted snapshots are reproducible). ``max_wait_s`` bounds live
    watching for tests/CI.
    """
    if (events_path is None) == (store is None):
        raise ConfigurationError(
            "watch needs exactly one source: an events JSONL or a store"
        )
    if store is not None and run_id is None:
        raise ConfigurationError("watching a store needs a run id")
    if interval_s <= 0:
        raise ConfigurationError(
            f"watch interval must be > 0, got {interval_s}"
        )
    follower = (
        JsonlFollower(events_path)
        if events_path is not None
        else StoreFollower(store, run_id)
    )
    rollup = FleetRollup()
    out = out if out is not None else sys.stdout
    _drain_into(rollup, follower)
    if once:
        out.write(rollup.render(deterministic=deterministic) + "\n")
        return rollup
    started = time.monotonic()
    try:
        while True:
            out.write(
                _CLEAR + rollup.render(deterministic=deterministic) + "\n"
            )
            out.flush()
            if rollup.run_summary is not None:
                break
            if (
                max_wait_s is not None
                and time.monotonic() - started >= max_wait_s
            ):
                break
            time.sleep(interval_s)
            _drain_into(rollup, follower)
    except KeyboardInterrupt:
        out.write("\n")
    return rollup
