"""Round tracing for the federated loop.

A :class:`RoundTracer` records one :class:`RoundSpan` per federated
round and one :class:`PhaseSpan` per protocol phase inside it —
``broadcast`` → per-client ``local-train`` → ``upload`` → ``aggregate``
— with wall-time, bytes moved over the transport, straggler outcomes
and the aggregation's parameter-update norm (how far the global model
moved this round, the per-round drift the convergence literature
plots).

The tracer is push-based: the orchestrator calls
``start_round``/``phase``/``end_round`` only when a tracer instance was
attached, so untraced runs execute the exact same code path minus a
``None`` check. Wall-times come from ``time.perf_counter`` and are
never fed back into anything seeded or asserted — attaching a tracer
cannot change a run's numerical results.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.errors import ConfigurationError

#: Canonical phase names, in protocol order.
PHASE_BROADCAST = "broadcast"
PHASE_LOCAL_TRAIN = "local-train"
PHASE_UPLOAD = "upload"
PHASE_AGGREGATE = "aggregate"

STATUS_OK = "ok"
STATUS_FAILED = "failed"


@dataclass
class PhaseSpan:
    """One timed phase of one round (optionally client-scoped).

    ``tier`` marks phases executed by a hierarchical-federation tier
    node (``"edge"``/``"region"``/``"global"``); it stays ``None`` on
    flat runs and is then omitted from the export, keeping flat event
    streams byte-identical to pre-hierarchy output.
    """

    name: str
    client_id: Optional[str] = None
    duration_s: float = 0.0
    bytes_transferred: int = 0
    status: str = STATUS_OK
    tier: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name,
            "duration_s": self.duration_s,
            "bytes": self.bytes_transferred,
            "status": self.status,
        }
        if self.client_id is not None:
            out["client_id"] = self.client_id
        if self.tier is not None:
            out["tier"] = self.tier
        return out


@dataclass
class RoundSpan:
    """Everything observed about one federated round."""

    round_index: int
    participants: List[str]
    stragglers: List[str] = field(default_factory=list)
    phases: List[PhaseSpan] = field(default_factory=list)
    duration_s: float = 0.0
    update_norm: Optional[float] = None
    aggregated: bool = False
    status: str = STATUS_OK

    @property
    def bytes_transferred(self) -> int:
        # Tier-tagged phases are a per-node *breakdown* of the same
        # traffic the protocol-level phases already measured; counting
        # them here would double the round's byte total.
        return sum(
            phase.bytes_transferred
            for phase in self.phases
            if phase.tier is None
        )

    def phase_bytes(self, name: str) -> int:
        return sum(
            p.bytes_transferred for p in self.phases if p.name == name
        )

    def phase_duration_s(self, name: str) -> float:
        return sum(p.duration_s for p in self.phases if p.name == name)

    def failed_phases(self) -> List[PhaseSpan]:
        return [p for p in self.phases if p.status == STATUS_FAILED]

    def tier_bytes(self) -> Dict[str, int]:
        """Bytes moved per hierarchy tier (empty for flat rounds)."""
        totals: Dict[str, int] = {}
        for phase in self.phases:
            if phase.tier is not None:
                totals[phase.tier] = (
                    totals.get(phase.tier, 0) + phase.bytes_transferred
                )
        return totals

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "type": "round_span",
            "round": self.round_index,
            "participants": list(self.participants),
            "stragglers": list(self.stragglers),
            "duration_s": self.duration_s,
            "bytes": self.bytes_transferred,
            "update_norm": self.update_norm,
            "aggregated": self.aggregated,
            "status": self.status,
            "phases": [phase.as_dict() for phase in self.phases],
        }
        tiers = self.tier_bytes()
        if tiers:
            out["tiers"] = tiers
        return out


class RoundTracer:
    """Collects :class:`RoundSpan` rows across one federated run."""

    def __init__(self) -> None:
        self.rounds: List[RoundSpan] = []
        self._current: Optional[RoundSpan] = None
        self._round_started_at = 0.0

    # -- recording -----------------------------------------------------
    @property
    def current_round(self) -> Optional[RoundSpan]:
        return self._current

    def start_round(
        self, round_index: int, participants: Sequence[str]
    ) -> RoundSpan:
        if self._current is not None:
            raise ConfigurationError(
                f"round {self._current.round_index} is still open; "
                f"end it before starting round {round_index}"
            )
        self._current = RoundSpan(
            round_index=round_index, participants=list(participants)
        )
        self._round_started_at = time.perf_counter()
        return self._current

    @contextmanager
    def phase(
        self, name: str, client_id: Optional[str] = None
    ) -> Iterator[PhaseSpan]:
        """Time one phase; a raised exception marks the span failed.

        The span is always appended (and the exception re-raised), so
        straggler failures stay visible in the trace.
        """
        span = PhaseSpan(name=name, client_id=client_id)
        self._require_open().phases.append(span)
        start = time.perf_counter()
        try:
            yield span
        except Exception:
            span.status = STATUS_FAILED
            raise
        finally:
            span.duration_s = time.perf_counter() - start

    def add_phase(
        self,
        name: str,
        client_id: Optional[str] = None,
        duration_s: float = 0.0,
        bytes_transferred: int = 0,
        status: str = STATUS_OK,
        tier: Optional[str] = None,
    ) -> PhaseSpan:
        """Append an externally timed phase to the open round.

        The parallel execution backends run client phases concurrently
        and off-thread (or off-process), where the :meth:`phase` context
        manager cannot wrap the work; they measure each client's wall
        time themselves and record it here so traced runs keep one
        ``local-train`` span per client regardless of backend.
        """
        span = PhaseSpan(
            name=name,
            client_id=client_id,
            duration_s=duration_s,
            bytes_transferred=bytes_transferred,
            status=status,
            tier=tier,
        )
        self._require_open().phases.append(span)
        return span

    def end_round(
        self,
        stragglers: Sequence[str] = (),
        update_norm: Optional[float] = None,
        aggregated: bool = True,
        status: str = STATUS_OK,
    ) -> RoundSpan:
        span = self._require_open()
        span.stragglers = list(stragglers)
        span.update_norm = update_norm
        span.aggregated = aggregated
        span.status = status
        span.duration_s = time.perf_counter() - self._round_started_at
        self.rounds.append(span)
        self._current = None
        return span

    def _require_open(self) -> RoundSpan:
        if self._current is None:
            raise ConfigurationError("no round is open on this tracer")
        return self._current

    # -- aggregate views ----------------------------------------------
    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def aggregations_completed(self) -> int:
        return sum(1 for span in self.rounds if span.aggregated)

    @property
    def total_bytes(self) -> int:
        return sum(span.bytes_transferred for span in self.rounds)

    def straggler_counts(self) -> Dict[str, int]:
        """How often each client straggled across the recorded rounds."""
        counts: Dict[str, int] = {}
        for span in self.rounds:
            for client_id in span.stragglers:
                counts[client_id] = counts.get(client_id, 0) + 1
        return counts

    # -- export --------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, object]]:
        return [span.as_dict() for span in self.rounds]

    def to_jsonl_lines(self) -> List[str]:
        return [json.dumps(span.as_dict()) for span in self.rounds]
