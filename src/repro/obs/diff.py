"""Cross-run comparison: load two runs, diff their metrics, render Markdown.

The comparable surface of a run is a :class:`RunMetrics` — a small
bundle of provenance (the header record stamped into every telemetry
JSONL file), scalar metrics (wire bytes, violation rate, straggler
rate, wall time, train-steps/s, ...) and per-round series (the reward
curve). It loads from telemetry artefacts
(:func:`run_metrics_from_files`) or from a persistent
:class:`~repro.obs.store.RunStore` (:func:`run_metrics_from_store`),
so ``repro-power obs-diff`` works on loose JSONL files and on stored
run ids alike.

:func:`diff_runs` is direction-aware and splits metrics into two
kinds: *deterministic* metrics (rewards, violations, stragglers,
bytes, step counts) where **any** worsening beyond floating-point
tolerance is a regression — two same-seed serial runs must diff to
zero — and *timing* metrics (wall time, train-steps/s) that are
reported but never flagged by default, because wall-clock noise on a
shared CI box is not a finding. :func:`format_diff_markdown` renders
the result with the same table/ASCII-plot idioms as
:mod:`repro.obs.report`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.utils.ascii_plot import line_plot

#: Relative tolerance under which two float metrics count as equal.
EXACT_REL_TOLERANCE = 1e-9

#: Per-round series that carry wall-clock noise: reported in the series
#: table but excluded from the bit-identical verdict, like the timing
#: scalars.
TIMING_SERIES = frozenset({"duration_s"})

#: (metric, direction, kind); direction ∈ {higher, lower, neutral},
#: kind ∈ {exact, timing}. Order is presentation order.
METRIC_SPECS: Tuple[Tuple[str, str, str], ...] = (
    ("reward_mean_final", "higher", "exact"),
    ("violation_rate", "lower", "exact"),
    ("straggler_rate", "lower", "exact"),
    ("wire_bytes", "lower", "exact"),
    ("rounds", "neutral", "exact"),
    ("aggregations", "neutral", "exact"),
    ("train_steps", "neutral", "exact"),
    ("update_norm_final", "neutral", "exact"),
    ("wall_time_s", "lower", "timing"),
    ("train_steps_per_s", "higher", "timing"),
)


def run_scalars(
    spans: Sequence[Mapping[str, object]],
    snapshot: Optional[Mapping[str, Mapping[str, object]]] = None,
    flight=None,
) -> Dict[str, float]:
    """The scalar comparison surface of one run.

    ``spans`` are round-span dicts (from the tracer or a metrics JSONL
    file), ``snapshot`` a :meth:`MetricsRegistry.snapshot` dict and
    ``flight`` a rebuilt :class:`~repro.obs.flight.FlightRecorder`; any
    may be absent, and only metrics that are actually derivable appear
    in the result.
    """
    scalars: Dict[str, float] = {}
    if spans:
        scalars["rounds"] = float(len(spans))
        scalars["aggregations"] = float(
            sum(1 for span in spans if span.get("aggregated"))
        )
        scalars["wire_bytes"] = float(
            sum(span.get("bytes", 0) for span in spans)
        )
        scalars["wall_time_s"] = float(
            sum(span.get("duration_s", 0.0) for span in spans)
        )
        slots = sum(len(span.get("participants", ())) for span in spans)
        lost = sum(len(span.get("stragglers", ())) for span in spans)
        if slots:
            scalars["straggler_rate"] = lost / slots
        norms = [
            span["update_norm"]
            for span in spans
            if span.get("update_norm") is not None
        ]
        if norms:
            scalars["update_norm_final"] = float(norms[-1])
    if snapshot is not None:
        counters = snapshot.get("counters", {})
        steps = counters.get("control.steps")
        if steps is not None:
            scalars["train_steps"] = float(steps)
            local_train_s = sum(
                phase.get("duration_s", 0.0)
                for span in spans
                for phase in span.get("phases", ())
                if phase.get("name") == "local-train"
            )
            if local_train_s > 0:
                scalars["train_steps_per_s"] = float(steps) / local_train_s
    if flight is not None and flight.steps_seen:
        scalars["violation_rate"] = flight.violation_rate()
        rewards = flight.rewards_by_round()
        if rewards:
            scalars["reward_mean_final"] = rewards[max(rewards)]
    return scalars


@dataclass
class RunMetrics:
    """One run's comparable surface: provenance + scalars + series."""

    label: str
    header: Optional[Dict[str, object]] = None
    scalars: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, Dict[int, float]] = field(default_factory=dict)


def run_metrics_from_files(
    metrics_path: str,
    flight_path: Optional[str] = None,
    label: Optional[str] = None,
) -> RunMetrics:
    """Build a :class:`RunMetrics` from ``--metrics-out``/``--flight-out``."""
    # Imported here: report imports this module's sibling loaders.
    from repro.obs.flight import FlightRecorder
    from repro.obs.report import load_telemetry_jsonl

    header, spans, snapshot = load_telemetry_jsonl(metrics_path)
    flight = None
    if flight_path is not None:
        flight = FlightRecorder.from_jsonl(flight_path)
        if header is None:
            header = _read_header(flight_path)
    run = RunMetrics(
        label=label or str(metrics_path),
        header=header,
        scalars=run_scalars(spans, snapshot=snapshot, flight=flight),
    )
    if flight is not None:
        run.series["reward_mean"] = {
            int(round_index): float(value)
            for round_index, value in flight.rewards_by_round().items()
        }
        run.series["violations"] = {
            int(round_index): float(value)
            for round_index, value in flight.violations_by_round().items()
        }
    if spans:
        run.series["bytes"] = {
            int(span["round"]): float(span.get("bytes", 0)) for span in spans
        }
    return run


def _read_header(path: str) -> Optional[Dict[str, object]]:
    from repro.obs.sink import iter_jsonl_rows

    for row in iter_jsonl_rows(path):
        if row.get("type") == "header":
            return row
        return None
    return None


def run_metrics_from_store(store, run_id: int) -> RunMetrics:
    """Build a :class:`RunMetrics` from a stored run's summary + series."""
    row = store.run(run_id)
    scalars = {
        key: float(value)
        for key, value in (row.get("summary") or {}).items()
        if isinstance(value, (int, float))
    }
    series = {
        metric: {round_index: value for round_index, value in points}
        for metric, points in store.series(run_id).items()
    }
    header = {
        "type": "header",
        "schema_version": row.get("schema_version"),
        "run_fingerprint": row.get("fingerprint"),
        "repro_version": row.get("repro_version"),
        "seed": row.get("seed"),
        "backend": row.get("backend"),
    }
    return RunMetrics(
        label=f"run {row['id']} ({row['name']})",
        header=header,
        scalars=scalars,
        series=series,
    )


@dataclass(frozen=True)
class DiffRow:
    """One metric compared across the two runs."""

    metric: str
    a: float
    b: float
    direction: str
    kind: str
    changed: bool
    regression: bool

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def rel_delta(self) -> Optional[float]:
        if self.a == 0.0:
            return None
        return (self.b - self.a) / abs(self.a)


@dataclass
class RunDiff:
    """The full comparison of run B against run A."""

    label_a: str
    label_b: str
    rows: List[DiffRow]
    series_max_abs_delta: Dict[str, float]
    provenance_warnings: List[str]

    @property
    def comparisons(self) -> int:
        return len(self.rows) + len(self.series_max_abs_delta)

    @property
    def regressions(self) -> List[DiffRow]:
        return [row for row in self.rows if row.regression]

    @property
    def identical(self) -> bool:
        """True when every exact metric and series diffs to zero."""
        return not any(
            row.changed for row in self.rows if row.kind == "exact"
        ) and not any(
            delta > 0.0
            for name, delta in self.series_max_abs_delta.items()
            if name not in TIMING_SERIES
        )


def diff_runs(
    a: RunMetrics,
    b: RunMetrics,
    rel_tolerance: float = EXACT_REL_TOLERANCE,
    flag_timing: bool = False,
    timing_tolerance: float = 0.25,
) -> RunDiff:
    """Compare run B against run A, direction-aware.

    Exact metrics regress on any worsening beyond ``rel_tolerance``;
    timing metrics only when ``flag_timing`` is set and the worsening
    exceeds ``timing_tolerance`` (25% by default — wall-clock noise on
    a busy machine must not fail a same-seed comparison).
    """
    rows: List[DiffRow] = []
    for metric, direction, kind in METRIC_SPECS:
        if metric not in a.scalars or metric not in b.scalars:
            continue
        value_a, value_b = a.scalars[metric], b.scalars[metric]
        scale = max(abs(value_a), abs(value_b), 1e-12)
        tolerance = rel_tolerance if kind == "exact" else timing_tolerance
        changed = abs(value_b - value_a) > tolerance * scale
        worsened = False
        if changed and direction == "higher":
            worsened = value_b < value_a
        elif changed and direction == "lower":
            worsened = value_b > value_a
        regression = worsened and (kind == "exact" or flag_timing)
        rows.append(
            DiffRow(
                metric=metric,
                a=value_a,
                b=value_b,
                direction=direction,
                kind=kind,
                changed=changed,
                regression=regression,
            )
        )
    if not rows:
        raise ConfigurationError(
            f"runs {a.label!r} and {b.label!r} share no comparable metrics"
        )
    series_deltas: Dict[str, float] = {}
    for name in sorted(set(a.series) & set(b.series)):
        series_a, series_b = a.series[name], b.series[name]
        shared = set(series_a) & set(series_b)
        deltas = [abs(series_b[key] - series_a[key]) for key in shared]
        missing = len(set(series_a) ^ set(series_b))
        series_deltas[name] = max(deltas, default=0.0) + (
            float("inf") if missing else 0.0
        )
    return RunDiff(
        label_a=a.label,
        label_b=b.label,
        rows=rows,
        series_max_abs_delta=series_deltas,
        provenance_warnings=_provenance_warnings(a, b),
    )


def _provenance_warnings(a: RunMetrics, b: RunMetrics) -> List[str]:
    if a.header is None or b.header is None:
        missing = [
            run.label for run in (a, b) if run.header is None
        ]
        return [
            "no header record found for: "
            + ", ".join(missing)
            + " — provenance not validated"
        ]
    warnings = []
    for key in ("schema_version", "repro_version", "seed", "backend"):
        if a.header.get(key) != b.header.get(key):
            warnings.append(
                f"{key} differs: {a.header.get(key)!r} vs "
                f"{b.header.get(key)!r}"
            )
    return warnings


# -- rendering ---------------------------------------------------------


def format_diff_markdown(diff: RunDiff, title: str = "Run diff") -> str:
    """Render a :class:`RunDiff` as Markdown (report.py idioms)."""
    lines = [f"# {title}", ""]
    lines.append(f"- A: {diff.label_a}")
    lines.append(f"- B: {diff.label_b}")
    lines.append(f"- comparisons: {diff.comparisons}")
    lines.append(f"- regressions: {len(diff.regressions)}")
    if diff.identical:
        lines.append(
            "- verdict: bit-identical metrics (zero deltas on every "
            "deterministic comparison)"
        )
    elif diff.regressions:
        lines.append("- verdict: REGRESSIONS detected (B worse than A)")
    else:
        lines.append("- verdict: changes detected, none regressive")
    lines.append("")
    if diff.provenance_warnings:
        lines.append("## Provenance warnings")
        lines.append("")
        for warning in diff.provenance_warnings:
            lines.append(f"- {warning}")
        lines.append("")
    lines.append("## Scalar comparison")
    lines.append("")
    lines.append("| metric | A | B | Δ (B−A) | Δ% | better | flag |")
    lines.append("| --- | ---: | ---: | ---: | ---: | --- | --- |")
    for row in diff.rows:
        rel = row.rel_delta
        rel_text = f"{100.0 * rel:+.2f}%" if rel is not None else "n/a"
        if row.regression:
            flag = "REGRESSION"
        elif not row.changed:
            flag = "="
        elif row.kind == "timing":
            flag = "timing"
        else:
            flag = "changed"
        lines.append(
            f"| {row.metric} | {row.a:.6g} | {row.b:.6g} |"
            f" {row.delta:+.6g} | {rel_text} | {row.direction} | {flag} |"
        )
    lines.append("")
    if diff.series_max_abs_delta:
        lines.append("## Series comparison")
        lines.append("")
        lines.append("| series | max |Δ| per round |")
        lines.append("| --- | ---: |")
        for name, delta in sorted(diff.series_max_abs_delta.items()):
            delta_text = "rounds differ" if delta == float("inf") else (
                f"{delta:.6g}"
            )
            lines.append(f"| {name} | {delta_text} |")
        lines.append("")
    return "\n".join(lines)


def format_reward_curves(a: RunMetrics, b: RunMetrics) -> str:
    """ASCII plot of both runs' reward curves (when both have one)."""
    series_a = a.series.get("reward_mean")
    series_b = b.series.get("reward_mean")
    if not series_a or not series_b:
        return ""
    curves = {
        f"A {a.label}"[:24]: [
            value for _, value in sorted(series_a.items())
        ],
        f"B {b.label}"[:24]: [
            value for _, value in sorted(series_b.items())
        ],
    }
    lines = ["## Reward curves", "", "```"]
    lines.append(line_plot(curves, title="mean reward per round"))
    lines.append("```")
    lines.append("")
    return "\n".join(lines)


def format_history_markdown(
    runs: Sequence[Mapping[str, object]],
    flags: Sequence[object],
    title: str = "Run history",
) -> str:
    """Render ``obs-history`` output: run table + regression flags."""
    lines = [f"# {title}", ""]
    lines.append(f"- runs: {len(runs)}")
    lines.append(f"- regressions: {len(flags)}")
    lines.append("")
    if runs:
        lines.append(
            "| id | name | seed | backend | status | fingerprint |"
            " reward_final | violation_rate | wire_bytes |"
        )
        lines.append(
            "| ---: | --- | ---: | --- | --- | --- | ---: | ---: | ---: |"
        )
        for row in runs:
            summary = row.get("summary") or {}
            fingerprint = str(row.get("fingerprint", ""))[:12]
            lines.append(
                "| {id} | {name} | {seed} | {backend} | {status} |"
                " {fp} | {reward} | {violations} | {bytes} |".format(
                    id=row.get("id"),
                    name=row.get("name"),
                    seed=row.get("seed"),
                    backend=row.get("backend"),
                    status=row.get("status"),
                    fp=fingerprint,
                    reward=_cell(summary.get("reward_mean_final")),
                    violations=_cell(summary.get("violation_rate")),
                    bytes=_cell(summary.get("wire_bytes")),
                )
            )
        lines.append("")
    lines.append("## Latest run vs history (robust z)")
    lines.append("")
    if flags:
        for flag in flags:
            lines.append(f"- REGRESSION — {flag.describe()}")
    else:
        lines.append("- no regressions flagged")
    lines.append("")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, (int, float)):
        return f"{value:.6g}"
    return "—"
