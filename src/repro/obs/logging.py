"""Structured logging for the ``repro`` namespace.

All library loggers hang off the ``repro`` root (``repro.federated``,
``repro.control``, ``repro.experiments``, ...) so one
:func:`setup_logging` call controls the whole stack. Two formatters are
provided, both machine-parseable:

* ``key=value`` lines (the default) — greppable, ordered
  ``ts= level= logger= msg=`` followed by any structured extras;
* JSON lines (``--log-json`` on the CLI) — one object per record for
  log shippers.

Emitting structured fields uses the stdlib ``extra`` mechanism::

    log = get_logger("federated")
    log.info("round complete", extra={"round": 3, "stragglers": 0})

Without :func:`setup_logging` the ``repro`` root has no handler and an
effective level of WARNING, so instrumented INFO/DEBUG calls short out
inside :meth:`logging.Logger.isEnabledFor` — the library stays quiet
and cheap by default.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Optional, Union

#: The root of every logger this library creates.
ROOT_LOGGER_NAME = "repro"

#: Attributes present on every vanilla LogRecord; anything beyond these
#: was supplied via ``extra=...`` and is emitted as a structured field.
_STANDARD_RECORD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


def _extra_fields(record: logging.LogRecord) -> dict:
    return {
        key: value
        for key, value in record.__dict__.items()
        if key not in _STANDARD_RECORD_ATTRS
    }


def _format_value(value: object) -> str:
    text = str(value)
    if any(ch in text for ch in ' ="'):
        return json.dumps(text)
    return text


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... msg=... key=value ...`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={self.formatTime(record, datefmt='%Y-%m-%dT%H:%M:%S')}",
            f"level={record.levelname}",
            f"logger={record.name}",
            f"msg={_format_value(record.getMessage())}",
        ]
        for key, value in sorted(_extra_fields(record).items()):
            parts.append(f"{key}={_format_value(value)}")
        if record.exc_info:
            parts.append(f"exc={_format_value(self.formatException(record.exc_info))}")
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per record; extras become top-level keys."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record, datefmt="%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in _extra_fields(record).items():
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = str(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload)


def get_logger(name: str = "") -> logging.Logger:
    """A logger under the ``repro`` namespace.

    ``get_logger("federated")`` and ``get_logger("repro.federated")``
    return the same logger; ``get_logger()`` returns the ``repro`` root.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER_NAME)
    if name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER_NAME}.{name}")


def setup_logging(
    level: Union[int, str] = "INFO",
    json_output: bool = False,
    stream: Optional[IO[str]] = None,
) -> logging.Logger:
    """Configure the ``repro`` root logger and return it.

    Idempotent: repeated calls replace the previously installed
    handler rather than stacking duplicates. ``propagate`` is disabled
    so host applications' root-logger configuration never double-prints
    library records.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    root = logging.getLogger(ROOT_LOGGER_NAME)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonFormatter() if json_output else KeyValueFormatter())
    for existing in list(root.handlers):
        root.removeHandler(existing)
        existing.close()
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def reset_logging() -> None:
    """Remove the handler installed by :func:`setup_logging` (tests)."""
    root = logging.getLogger(ROOT_LOGGER_NAME)
    for existing in list(root.handlers):
        root.removeHandler(existing)
        existing.close()
    root.setLevel(logging.NOTSET)
    root.propagate = True
