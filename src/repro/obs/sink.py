"""Streaming telemetry sinks and the run event pipeline.

The per-run sinks (:class:`~repro.obs.metrics.MetricsRegistry`,
:class:`~repro.obs.tracing.RoundTracer`,
:class:`~repro.obs.flight.FlightRecorder`) accumulate in memory and
dump once at the end of a run. This module adds the *streaming* half:
instrumented call sites emit small JSON-serialisable **events** (round
spans, fault injections, guard transitions, quarantine decisions, run
summaries) into an :class:`EventPipeline`, which buffers them in a
bounded non-blocking queue and forwards them to pluggable
:class:`TelemetrySink` backends — a streaming JSONL file
(:class:`JsonlSink`), a SQLite run store (:class:`SqliteSink`), a
fan-out (:class:`FanoutSink`) or an in-memory :class:`EventBuffer`.

The pipeline follows the :mod:`repro.obs` instrumentation contract:
call sites hold an ``Optional`` event sink and emit behind one
``is not None`` check; ``emit`` is an O(1) deque append (sink I/O is
batched), and a sink that raises is counted and silenced — telemetry
must never kill a run.

Worker merge: parallel device actors record into a private
:class:`EventBuffer` and drain it into each task's
:class:`~repro.parallel.payloads.TelemetryDump`; the driver replays
the rows through its own pipeline in deterministic device order
(:meth:`EventPipeline.emit_many`), reproducing the exact stream —
including sequence numbers — a serial run emits.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.obs.logging import get_logger

#: Bump when the event/header JSONL shape changes.
TELEMETRY_SCHEMA_VERSION = 1

_LOG = get_logger("obs")


def iter_jsonl_rows(path, strict: bool = False) -> Iterator[Dict[str, object]]:
    """Yield one dict per parseable JSONL line of ``path``.

    A run killed mid-write (e.g. by :mod:`repro.faults` kill injection)
    leaves a torn final line; offline tools must not choke on it. Lines
    that fail to parse — or parse to something other than an object —
    are skipped with a warning instead of raising, unless
    ``strict=True``.
    """
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as error:
                if strict:
                    raise ConfigurationError(
                        f"{path}:{line_number}: invalid JSON line: {error}"
                    ) from error
                _LOG.warning(
                    "skipping unparseable JSONL line (torn write?)",
                    extra={"path": str(path), "line": line_number},
                )
                continue
            if not isinstance(row, dict):
                if strict:
                    raise ConfigurationError(
                        f"{path}:{line_number}: expected a JSON object"
                    )
                _LOG.warning(
                    "skipping non-object JSONL line",
                    extra={"path": str(path), "line": line_number},
                )
                continue
            yield row


class TelemetrySink:
    """Interface of one event destination.

    Subclasses override :meth:`emit` (required) plus :meth:`flush`/
    :meth:`close` (optional). Sinks may assume events are plain
    JSON-serialisable dicts with at least a ``"type"`` key.
    """

    def emit(self, event: Dict[str, object]) -> None:
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - trivial default
        pass

    def close(self) -> None:  # pragma: no cover - trivial default
        self.flush()

    def __enter__(self) -> "TelemetrySink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


class EventBuffer(TelemetrySink):
    """A bounded in-memory sink (and the workers' private recorder).

    Oldest events are dropped once ``capacity`` is reached (counted in
    :attr:`events_dropped`), so a runaway emitter cannot exhaust
    memory. Parallel device actors use one per actor and drain it into
    every :class:`~repro.parallel.payloads.TelemetryDump` via
    :meth:`drain`; everything held is picklable.
    """

    def __init__(self, capacity: int = 65536) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.events_dropped = 0
        self._rows: Deque[Dict[str, object]] = deque()

    def emit(self, event: Dict[str, object]) -> None:
        self._rows.append(dict(event))
        if len(self._rows) > self.capacity:
            self._rows.popleft()
            self.events_dropped += 1

    def emit_many(self, events: Iterable[Dict[str, object]]) -> None:
        for event in events:
            self.emit(event)

    def __len__(self) -> int:
        return len(self._rows)

    def rows(self) -> List[Dict[str, object]]:
        """The buffered events, oldest first (a copy)."""
        return list(self._rows)

    def drain(self) -> List[Dict[str, object]]:
        """Remove and return everything buffered (the worker dump path)."""
        rows = list(self._rows)
        self._rows.clear()
        return rows


class JsonlSink(TelemetrySink):
    """Streaming JSONL file sink: one JSON object per line, appended live.

    The file opens lazily on the first event and is truncated then —
    an emitter that never fires leaves no file behind. ``flush_every``
    bounds how many lines may sit in OS buffers when the process dies.
    """

    def __init__(self, path, flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.path = path
        self.flush_every = flush_every
        self.lines_written = 0
        self._handle = None
        self._unflushed = 0

    def emit(self, event: Dict[str, object]) -> None:
        if self._handle is None:
            self._handle = open(self.path, "w")
        self._handle.write(json.dumps(event) + "\n")
        self.lines_written += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self._handle.flush()
            self._unflushed = 0

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._unflushed = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class SqliteSink(TelemetrySink):
    """Persists events into a :class:`~repro.obs.store.RunStore`.

    The sink batches rows and hands them to
    :meth:`~repro.obs.store.RunStore.record_events` on flush, keyed by
    the run id the caller registered before the run started. The store
    is shared, not owned: closing the sink flushes but leaves the store
    open.
    """

    def __init__(self, store, run_id: int, flush_every: int = 256) -> None:
        if flush_every < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.store = store
        self.run_id = run_id
        self.flush_every = flush_every
        self.events_stored = 0
        self._pending: List[Dict[str, object]] = []

    def emit(self, event: Dict[str, object]) -> None:
        self._pending.append(dict(event))
        if len(self._pending) >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        self.store.record_events(self.run_id, self._pending)
        self.events_stored += len(self._pending)
        self._pending = []


class FanoutSink(TelemetrySink):
    """Forwards every event to each child sink, in order."""

    def __init__(self, sinks: Iterable[TelemetrySink]) -> None:
        self.sinks = list(sinks)

    def emit(self, event: Dict[str, object]) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def flush(self) -> None:
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()


class EventPipeline:
    """The run-facing event front: seq stamping + bounded buffering.

    ``emit`` copies the event, stamps a monotonically increasing
    ``seq`` and appends it to a bounded pending deque — O(1), no I/O.
    Sink delivery happens in batches (every ``flush_every`` events, on
    :meth:`flush` and on :meth:`close`); a sink that raises is counted
    in :attr:`sink_errors` and skipped, so a full disk or a locked
    database degrades telemetry instead of killing the run. With no
    sinks attached the pending deque doubles as a bounded retain
    buffer readable via :meth:`rows`.

    Sequence numbers are stamped on the *driver*, so worker rows
    merged through :meth:`emit_many` (in deterministic device order)
    produce the exact stream — seq included — a serial run emits.
    """

    def __init__(
        self,
        sinks: Iterable[TelemetrySink] = (),
        capacity: int = 65536,
        flush_every: int = 64,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if flush_every < 1:
            raise ConfigurationError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.capacity = capacity
        self.flush_every = flush_every
        self.events_emitted = 0
        self.events_dropped = 0
        self.sink_errors = 0
        self._sinks: List[TelemetrySink] = list(sinks)
        self._pending: Deque[Dict[str, object]] = deque()
        self._seq = 0

    def attach(self, sink: TelemetrySink) -> None:
        self._sinks.append(sink)

    def emit(self, event: Dict[str, object]) -> Dict[str, object]:
        row = dict(event)
        row["seq"] = self._seq
        self._seq += 1
        self.events_emitted += 1
        self._pending.append(row)
        if len(self._pending) > self.capacity:
            self._pending.popleft()
            self.events_dropped += 1
        if self._sinks and len(self._pending) >= self.flush_every:
            self._drain()
        return row

    def emit_many(self, events: Iterable[Dict[str, object]]) -> None:
        """Replay drained worker rows through this pipeline, in order."""
        for event in events:
            self.emit(event)

    def rows(self) -> List[Dict[str, object]]:
        """Events not yet delivered to a sink (all of them, sink-less)."""
        return list(self._pending)

    def _drain(self) -> None:
        while self._pending:
            row = self._pending.popleft()
            for sink in self._sinks:
                try:
                    sink.emit(row)
                except Exception:
                    self.sink_errors += 1

    def flush(self) -> None:
        if self._sinks:
            self._drain()
        for sink in self._sinks:
            try:
                sink.flush()
            except Exception:
                self.sink_errors += 1

    def close(self) -> None:
        if self._sinks:
            self._drain()
        for sink in self._sinks:
            try:
                sink.close()
            except Exception:
                self.sink_errors += 1

    def __enter__(self) -> "EventPipeline":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False
