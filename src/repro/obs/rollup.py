"""Streaming fleet rollups: live per-round aggregates in bounded memory.

The :class:`FleetRollup` is a :class:`~repro.obs.sink.TelemetrySink`
that turns the per-device, per-round event stream into the handful of
fleet-level numbers an operator actually watches — rounds completed,
reward trend, straggler/violation rates, bytes moved, quarantine and
fault counts — while holding O(1) state *per device* and one compact
row *per round*. It is the live counterpart of the post-hoc
:mod:`repro.obs.report`: the same stream that feeds a JSONL file or the
:class:`~repro.obs.store.RunStore` can feed a rollup, which then backs
the ``/rollup.json`` endpoint (:mod:`repro.obs.exposition`), the
``obs-watch`` dashboard (:mod:`repro.obs.watch`) and the threshold
alerting engine (:mod:`repro.obs.alerts`).

Determinism: every field derived from the event stream (participants,
stragglers, bytes, update norms, rewards, quarantine/churn/fault
counts) is identical across serial/thread/process backends because the
stream itself is — the parallel engine merges worker events in device
order and re-stamps sequence numbers. Wall-clock-derived fields
(durations, rounds/s) are kept apart and excluded from the
deterministic snapshot (``snapshot(deterministic=True)``) used by
``obs-watch --once`` and the cross-backend identity tests, mirroring
``obs-diff --flag-timing``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.obs.sink import TelemetrySink
from repro.obs.sketch import EwmaEstimator, QuantileDigest

__all__ = ["FleetRollup", "ROLLUP_SERIES"]

#: Per-round series the rollup persists into a RunStore, with the
#: round-row key each series reads (``fleet_`` prefix keeps them apart
#: from the tracer-derived series ``ingest_telemetry`` records).
ROLLUP_SERIES = {
    "fleet_participants": "participants",
    "fleet_stragglers": "stragglers",
    "fleet_straggler_rate": "straggler_rate",
    "fleet_bytes": "bytes",
    "fleet_quarantined": "quarantined",
    "fleet_reward_mean": "reward_mean",
    "fleet_violation_rate": "violation_rate",
    "fleet_alerts": "alerts",
}


class _DeviceStats:
    """O(1) per-device counters (the only per-device state kept)."""

    __slots__ = ("participated", "straggled", "quarantined")

    def __init__(self) -> None:
        self.participated = 0
        self.straggled = 0
        self.quarantined = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "participated": self.participated,
            "straggled": self.straggled,
            "quarantined": self.quarantined,
        }


class FleetRollup(TelemetrySink):
    """Consume the event stream; expose live fleet aggregates.

    Attach to an :class:`~repro.obs.sink.EventPipeline` like any other
    sink, or replay stored/tailed rows through :meth:`emit` directly
    (the ``obs-watch`` path). Optionally pass an
    :class:`~repro.obs.alerts.AlertEngine`; each completed round row is
    evaluated against its rules and any triggered alerts are emitted
    back into the bound pipeline (:meth:`bind`) as ``alert`` events —
    they travel through every attached sink like native events, and the
    rollup counts them when they come back around.
    """

    def __init__(self, alerts=None) -> None:
        self.alerts = alerts
        self._pipeline = None
        # Run identity (from the header event, when one flows through).
        self.run_name: Optional[str] = None
        self.run_fingerprint: Optional[str] = None
        # Fleet totals — O(1).
        self.rounds = 0
        self.rounds_aggregated = 0
        self.rounds_empty = 0
        self.participants_total = 0
        self.stragglers_total = 0
        self.bytes_total = 0
        self.quarantined_total = 0
        self.joins_total = 0
        self.leaves_total = 0
        self.active_devices: Optional[int] = None
        self.guard_transitions = 0
        self.fallback_entries = 0
        self.alerts_total = 0
        self.fault_counts: Dict[str, int] = {}
        # Bytes per hierarchy tier (hierarchical runs only; stays
        # empty — and invisible in snapshots — on flat runs).
        self.tier_bytes_total: Dict[str, int] = {}
        # Control-plane liveness (async runs only; stays empty — and
        # invisible in snapshots — on synchronous runs).
        self.device_states: Dict[str, str] = {}
        self.device_transitions = 0
        self.deaths_total = 0
        self.rejoins_total = 0
        self.controlplane_mode: Optional[str] = None
        self.mode_changes = 0
        self.events_seen = 0
        self.run_summary: Optional[Dict[str, object]] = None
        # Streaming estimators — bounded by construction.
        self.bytes_per_round = QuantileDigest()
        self.update_norm = QuantileDigest()
        self.reward_ewma = EwmaEstimator()
        self.round_duration_ewma = EwmaEstimator()  # wall-clock
        # Per-device counters and one compact row per round.
        self.devices: Dict[str, _DeviceStats] = {}
        self.round_rows: List[Dict[str, object]] = []
        self._rewards_by_round: Dict[int, float] = {}
        self._violations_by_round: Dict[int, float] = {}

    # -- sink interface ------------------------------------------------
    def bind(self, pipeline) -> None:
        """Give the rollup a pipeline to emit alert events into."""
        self._pipeline = pipeline

    def emit(self, event: Dict[str, object]) -> None:
        kind = event.get("type")
        self.events_seen += 1
        if kind == "header":
            self.run_name = event.get("experiment") or event.get("name")
            self.run_fingerprint = event.get("run_fingerprint")
        elif kind == "round_span":
            self._on_round_span(event)
        elif kind == "quarantine":
            devices = list(event.get("devices") or [])
            self.quarantined_total += len(devices)
            for name in devices:
                self._device(str(name)).quarantined += 1
            if self.round_rows:
                self.round_rows[-1]["quarantined"] = (
                    int(self.round_rows[-1].get("quarantined", 0))
                    + len(devices)
                )
        elif kind == "churn":
            self.joins_total += len(event.get("joined") or [])
            self.leaves_total += len(event.get("left") or [])
            if event.get("active") is not None:
                self.active_devices = int(event["active"])
        elif kind == "fault":
            fault_kind = str(event.get("kind", "unknown"))
            self.fault_counts[fault_kind] = (
                self.fault_counts.get(fault_kind, 0) + 1
            )
        elif kind == "guard_transition":
            self.guard_transitions += 1
            if str(event.get("to_state", "")).lower() == "fallback":
                self.fallback_entries += 1
        elif kind == "device_state":
            device = str(event.get("device", ""))
            to_state = str(event.get("to_state", ""))
            self.device_states[device] = to_state
            self.device_transitions += 1
            if to_state == "dead":
                self.deaths_total += 1
            elif to_state == "rejoined":
                self.rejoins_total += 1
        elif kind == "controlplane_mode":
            self.controlplane_mode = str(event.get("to_mode", ""))
            self.mode_changes += 1
        elif kind == "evaluation":
            self._on_evaluation(event)
        elif kind == "alert":
            self.alerts_total += 1
            row = self._row_for_round(event.get("round"))
            if row is not None:
                row["alerts"] = int(row.get("alerts", 0)) + 1
        elif kind == "run_summary":
            self.run_summary = {
                key: value
                for key, value in event.items()
                if key not in ("type", "seq")
            }

    # -- event handlers ------------------------------------------------
    def _device(self, name: str) -> _DeviceStats:
        stats = self.devices.get(name)
        if stats is None:
            stats = self.devices[name] = _DeviceStats()
        return stats

    def _on_round_span(self, event: Dict[str, object]) -> None:
        participants = [str(p) for p in (event.get("participants") or [])]
        stragglers = [str(s) for s in (event.get("stragglers") or [])]
        span_bytes = int(event.get("bytes") or 0)
        self.rounds += 1
        if event.get("aggregated"):
            self.rounds_aggregated += 1
        if not participants:
            self.rounds_empty += 1
        self.participants_total += len(participants)
        self.stragglers_total += len(stragglers)
        self.bytes_total += span_bytes
        self.bytes_per_round.add(span_bytes)
        update_norm = event.get("update_norm")
        if update_norm is not None:
            self.update_norm.add(float(update_norm))
        duration = event.get("duration_s")
        if duration is not None:
            self.round_duration_ewma.update(float(duration))
        for name in participants:
            self._device(name).participated += 1
        for name in stragglers:
            self._device(name).straggled += 1
        tiers = event.get("tiers") or {}
        for tier, tier_bytes in tiers.items():
            self.tier_bytes_total[str(tier)] = (
                self.tier_bytes_total.get(str(tier), 0) + int(tier_bytes)
            )
        round_index = int(event.get("round") or 0)
        row: Dict[str, object] = {
            "round": round_index,
            "participants": len(participants),
            "stragglers": len(stragglers),
            "straggler_rate": (
                len(stragglers) / len(participants) if participants else 0.0
            ),
            "bytes": span_bytes,
            "aggregated": bool(event.get("aggregated")),
            "quarantined": 0,
            "alerts": 0,
        }
        if update_norm is not None:
            row["update_norm"] = float(update_norm)
        if round_index in self._rewards_by_round:
            row["reward_mean"] = self._rewards_by_round[round_index]
        if round_index in self._violations_by_round:
            row["violation_rate"] = self._violations_by_round[round_index]
        self.round_rows.append(row)
        if self.alerts is not None:
            for alert in self.alerts.evaluate(row):
                self._emit_alert(alert)

    def _on_evaluation(self, event: Dict[str, object]) -> None:
        round_index = int(event.get("round") or 0)
        reward = event.get("reward_mean")
        if reward is None:
            return
        reward = float(reward)
        self._rewards_by_round[round_index] = reward
        self.reward_ewma.update(reward)
        row = self._row_for_round(round_index)
        if row is not None:
            row["reward_mean"] = reward
            if self.alerts is not None:
                for alert in self.alerts.evaluate(
                    {"round": round_index, "reward_mean": reward}
                ):
                    self._emit_alert(alert)

    def _row_for_round(self, round_index) -> Optional[Dict[str, object]]:
        if round_index is None:
            return self.round_rows[-1] if self.round_rows else None
        round_index = int(round_index)
        for row in reversed(self.round_rows):
            if row["round"] == round_index:
                return row
        return None

    def _emit_alert(self, alert: Dict[str, object]) -> None:
        if self._pipeline is not None:
            # The pipeline fans the alert out to every sink — including
            # this rollup, which counts it on receipt (no double count).
            self._pipeline.emit(alert)
        else:
            self.emit(alert)

    # -- out-of-band ingestion (flight / metrics dumps) ----------------
    def ingest_flight(self, flight) -> None:
        """Fold a flight recorder's per-round reward/violation curves in.

        The flight recorder lives device-side; the event stream does
        not carry per-step power data. When a recorder (or a merged
        worker dump) is available, this back-fills ``reward_mean`` and
        ``violation_rate`` onto the matching round rows.
        """
        for round_index, rate in flight.violations_by_round().items():
            self._violations_by_round[int(round_index)] = float(rate)
            row = self._row_for_round(round_index)
            if row is not None:
                row["violation_rate"] = float(rate)
        for round_index, reward in flight.rewards_by_round().items():
            round_index = int(round_index)
            if round_index not in self._rewards_by_round:
                self._rewards_by_round[round_index] = float(reward)
                row = self._row_for_round(round_index)
                if row is not None and "reward_mean" not in row:
                    row["reward_mean"] = float(reward)

    def ingest_metrics_state(self, state: Dict[str, object]) -> None:
        """Fold counter totals from a metrics ``dump_state`` payload in.

        Only the ``federated.*`` fleet counters are read; histogram
        digests stay with the registry that owns them.
        """
        counters = state.get("counters") or {}
        joins = counters.get("federated.joins")
        if joins:
            self.joins_total = max(self.joins_total, int(joins))
        leaves = counters.get("federated.leaves")
        if leaves:
            self.leaves_total = max(self.leaves_total, int(leaves))

    # -- views ---------------------------------------------------------
    @property
    def straggler_rate(self) -> float:
        if self.participants_total == 0:
            return 0.0
        return self.stragglers_total / self.participants_total

    @property
    def rounds_per_s(self) -> Optional[float]:
        """Wall-clock throughput from the round-duration EWMA."""
        duration = self.round_duration_ewma.value
        if not duration:
            return None
        return 1.0 / duration

    def snapshot(self, deterministic: bool = False) -> Dict[str, object]:
        """The rollup as one JSON-serialisable dict.

        ``deterministic=True`` drops every wall-clock-derived field, so
        same-seed runs produce byte-identical snapshots regardless of
        execution backend or machine speed.
        """
        out: Dict[str, object] = {
            "type": "rollup",
            "run_name": self.run_name,
            "run_fingerprint": self.run_fingerprint,
            "rounds": self.rounds,
            "rounds_aggregated": self.rounds_aggregated,
            "rounds_empty": self.rounds_empty,
            "participants_total": self.participants_total,
            "stragglers_total": self.stragglers_total,
            "straggler_rate": self.straggler_rate,
            "bytes_total": self.bytes_total,
            "quarantined_total": self.quarantined_total,
            "joins_total": self.joins_total,
            "leaves_total": self.leaves_total,
            "guard_transitions": self.guard_transitions,
            "fallback_entries": self.fallback_entries,
            "alerts_total": self.alerts_total,
            "fault_counts": dict(sorted(self.fault_counts.items())),
            "events_seen": self.events_seen,
            "reward_ewma": self.reward_ewma.value,
            "bytes_per_round": self.bytes_per_round.state(),
            "update_norm": self.update_norm.state(),
            "devices": {
                name: self.devices[name].as_dict()
                for name in sorted(self.devices)
            },
            "rounds_detail": [dict(row) for row in self.round_rows],
        }
        if self.tier_bytes_total:
            out["tier_bytes_total"] = dict(sorted(self.tier_bytes_total.items()))
        if self.device_states or self.controlplane_mode is not None:
            state_counts: Dict[str, int] = {}
            for state in self.device_states.values():
                state_counts[state] = state_counts.get(state, 0) + 1
            out["controlplane"] = {
                "mode": self.controlplane_mode,
                "mode_changes": self.mode_changes,
                "device_states": dict(sorted(self.device_states.items())),
                "state_counts": dict(sorted(state_counts.items())),
                "transitions": self.device_transitions,
                "deaths": self.deaths_total,
                "rejoins": self.rejoins_total,
            }
        if self.active_devices is not None:
            out["active_devices"] = self.active_devices
        if self.run_summary is not None:
            out["run_summary"] = dict(self.run_summary)
        if not deterministic:
            out["rounds_per_s"] = self.rounds_per_s
            out["round_duration_ewma_s"] = self.round_duration_ewma.value
        return out

    def render(self, deterministic: bool = False, last_rounds: int = 10) -> str:
        """The terminal dashboard body ``obs-watch`` refreshes in place."""
        lines: List[str] = []
        title = self.run_name or "run"
        fingerprint = (
            f" [{self.run_fingerprint[:12]}]" if self.run_fingerprint else ""
        )
        lines.append(f"fleet rollup — {title}{fingerprint}")
        lines.append(
            f"rounds: {self.rounds} ({self.rounds_aggregated} aggregated, "
            f"{self.rounds_empty} empty)   devices: {len(self.devices)}"
        )
        reward = self.reward_ewma.value
        lines.append(
            "reward ewma: "
            + (f"{reward:+.6g}" if reward is not None else "n/a")
            + f"   straggler rate: {100.0 * self.straggler_rate:.2f}%"
            + f"   bytes: {self.bytes_total}"
        )
        lines.append(
            f"quarantined: {self.quarantined_total}   "
            f"guard transitions: {self.guard_transitions} "
            f"({self.fallback_entries} fallback)   "
            f"churn: +{self.joins_total}/-{self.leaves_total}   "
            f"alerts: {self.alerts_total}"
        )
        if self.fault_counts:
            faults = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.fault_counts.items())
            )
            lines.append(f"faults: {faults}")
        if self.tier_bytes_total:
            tiers = ", ".join(
                f"{tier}={count}"
                for tier, count in sorted(self.tier_bytes_total.items())
            )
            lines.append(f"tier bytes: {tiers}")
        if self.device_states or self.controlplane_mode is not None:
            state_counts: Dict[str, int] = {}
            for state in self.device_states.values():
                state_counts[state] = state_counts.get(state, 0) + 1
            states = ", ".join(
                f"{state}={count}"
                for state, count in sorted(state_counts.items())
            )
            lines.append(
                f"control plane: mode={self.controlplane_mode or 'n/a'} "
                f"({self.mode_changes} changes)   "
                f"liveness: {states or 'n/a'}   "
                f"deaths: {self.deaths_total}   rejoins: {self.rejoins_total}"
            )
        if not deterministic:
            throughput = self.rounds_per_s
            if throughput is not None:
                lines.append(f"throughput: {throughput:.3f} rounds/s")
        if self.round_rows:
            lines.append("")
            lines.append(
                "| round | parts | strag | bytes | quar | alerts "
                "| reward | viol% |"
            )
            lines.append(
                "|------:|------:|------:|------:|-----:|-------:"
                "|-------:|------:|"
            )
            for row in self.round_rows[-last_rounds:]:
                reward_cell = (
                    f"{row['reward_mean']:+.4f}"
                    if row.get("reward_mean") is not None
                    else "-"
                )
                violation_cell = (
                    f"{100.0 * row['violation_rate']:.1f}"
                    if row.get("violation_rate") is not None
                    else "-"
                )
                lines.append(
                    f"| {row['round']} | {row['participants']} "
                    f"| {row['stragglers']} | {row['bytes']} "
                    f"| {row['quarantined']} | {row['alerts']} "
                    f"| {reward_cell} | {violation_cell} |"
                )
        if self.run_summary is not None:
            lines.append("")
            summary = ", ".join(
                f"{key}={_fmt(value)}"
                for key, value in sorted(self.run_summary.items())
            )
            lines.append(f"run finished: {summary}")
        return "\n".join(lines)

    # -- persistence ---------------------------------------------------
    def persist(self, store, run_id: int) -> None:
        """Record the per-round fleet series into a RunStore."""
        for series_name, row_key in sorted(ROLLUP_SERIES.items()):
            points = [
                (int(row["round"]), float(row[row_key]))
                for row in self.round_rows
                if row.get(row_key) is not None
            ]
            if points:
                store.record_series(run_id, series_name, points)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)
