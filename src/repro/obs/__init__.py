"""Observability layer: logging, metrics, tracing, flight recording,
profiling and offline run reports.

Six pillars, all stdlib+numpy only:

* :mod:`repro.obs.logging` — namespaced ``repro.*`` loggers with
  ``key=value`` or JSON formatting (:func:`setup_logging`,
  :func:`get_logger`);
* :mod:`repro.obs.metrics` — an in-process :class:`MetricsRegistry`
  (counters, gauges, histograms with quantile summaries, timers) with
  dict/JSONL/CSV exporters;
* :mod:`repro.obs.tracing` — a :class:`RoundTracer` producing one
  :class:`RoundSpan` per federated round with per-phase wall-time,
  transport bytes, stragglers and global-model drift;
* :mod:`repro.obs.flight` — a bounded per-control-step
  :class:`FlightRecorder` capturing device-level behaviour (state
  features, chosen OPP, exploration flag, reward, running ``P_crit``
  violations, thermal state, agent loss);
* :mod:`repro.obs.profile` — a hierarchical :class:`ScopeProfiler`
  (``with profile("agent.act")``) with self/cumulative tables plus an
  opt-in :func:`cprofile_capture` wrapper;
* :mod:`repro.obs.report` — offline Markdown run reports generated
  from flight-recorder and metrics JSONL artefacts
  (:func:`generate_report`, the ``obs-report`` CLI subcommand).

Instrumentation contract: every instrumented call site holds an
``Optional`` sink and emits behind one ``is not None`` check, so a run
with no sinks attached pays no measurable overhead (enforced by
``benchmarks/test_bench_overhead.py``). Timing values never flow into
seeded or asserted quantities, so telemetry cannot perturb
reproducibility. The :mod:`repro.obs.context` stack (thread-local)
lets the CLI attach sinks to runners without changing their
signatures.
"""

from repro.obs.context import (
    Telemetry,
    activate,
    active_flight,
    active_metrics,
    active_profiler,
    active_tracer,
    deactivate,
    get_active,
    telemetry,
)
from repro.obs.flight import FlightRecord, FlightRecorder
from repro.obs.logging import (
    JsonFormatter,
    KeyValueFormatter,
    get_logger,
    reset_logging,
    setup_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    timed,
)
from repro.obs.profile import (
    CProfileReport,
    ScopeProfiler,
    ScopeStats,
    cprofile_capture,
    profile,
)
from repro.obs.report import generate_report, load_metrics_jsonl, report_from_files
from repro.obs.tracing import (
    PHASE_AGGREGATE,
    PHASE_BROADCAST,
    PHASE_LOCAL_TRAIN,
    PHASE_UPLOAD,
    PhaseSpan,
    RoundSpan,
    RoundTracer,
)

__all__ = [
    "CProfileReport",
    "Counter",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "KeyValueFormatter",
    "MetricsRegistry",
    "PHASE_AGGREGATE",
    "PHASE_BROADCAST",
    "PHASE_LOCAL_TRAIN",
    "PHASE_UPLOAD",
    "PhaseSpan",
    "RoundSpan",
    "RoundTracer",
    "ScopeProfiler",
    "ScopeStats",
    "Telemetry",
    "activate",
    "active_flight",
    "active_metrics",
    "active_profiler",
    "active_tracer",
    "cprofile_capture",
    "deactivate",
    "generate_report",
    "get_active",
    "get_logger",
    "load_metrics_jsonl",
    "profile",
    "report_from_files",
    "reset_logging",
    "setup_logging",
    "telemetry",
    "timed",
]
