"""Observability layer: structured logging, metrics, round tracing.

Three independent pillars, all stdlib+numpy only:

* :mod:`repro.obs.logging` — namespaced ``repro.*`` loggers with
  ``key=value`` or JSON formatting (:func:`setup_logging`,
  :func:`get_logger`);
* :mod:`repro.obs.metrics` — an in-process :class:`MetricsRegistry`
  (counters, gauges, histograms with quantile summaries, timers) with
  dict/JSONL/CSV exporters;
* :mod:`repro.obs.tracing` — a :class:`RoundTracer` producing one
  :class:`RoundSpan` per federated round with per-phase wall-time,
  transport bytes, stragglers and global-model drift.

Instrumentation contract: every instrumented call site holds an
``Optional`` sink and emits behind one ``is not None`` check, so a run
with no sinks attached pays no measurable overhead (enforced by
``benchmarks/test_bench_overhead.py``). Timing values never flow into
seeded or asserted quantities, so telemetry cannot perturb
reproducibility. The :mod:`repro.obs.context` stack lets the CLI attach
sinks to runners without changing their signatures.
"""

from repro.obs.context import (
    Telemetry,
    activate,
    active_metrics,
    active_tracer,
    deactivate,
    get_active,
    telemetry,
)
from repro.obs.logging import (
    JsonFormatter,
    KeyValueFormatter,
    get_logger,
    reset_logging,
    setup_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    timed,
)
from repro.obs.tracing import (
    PHASE_AGGREGATE,
    PHASE_BROADCAST,
    PHASE_LOCAL_TRAIN,
    PHASE_UPLOAD,
    PhaseSpan,
    RoundSpan,
    RoundTracer,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "KeyValueFormatter",
    "MetricsRegistry",
    "PHASE_AGGREGATE",
    "PHASE_BROADCAST",
    "PHASE_LOCAL_TRAIN",
    "PHASE_UPLOAD",
    "PhaseSpan",
    "RoundSpan",
    "RoundTracer",
    "Telemetry",
    "activate",
    "active_metrics",
    "active_tracer",
    "deactivate",
    "get_active",
    "get_logger",
    "reset_logging",
    "setup_logging",
    "telemetry",
    "timed",
]
