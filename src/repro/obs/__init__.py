"""Observability layer: logging, metrics, tracing, flight recording,
profiling, offline run reports, streaming event sinks, cross-run
regression analytics and live fleet monitoring.

Eleven pillars, all stdlib+numpy only:

* :mod:`repro.obs.logging` — namespaced ``repro.*`` loggers with
  ``key=value`` or JSON formatting (:func:`setup_logging`,
  :func:`get_logger`);
* :mod:`repro.obs.metrics` — an in-process :class:`MetricsRegistry`
  (counters, gauges, histograms with quantile summaries, timers) with
  dict/JSONL/CSV exporters;
* :mod:`repro.obs.tracing` — a :class:`RoundTracer` producing one
  :class:`RoundSpan` per federated round with per-phase wall-time,
  transport bytes, stragglers and global-model drift;
* :mod:`repro.obs.flight` — a bounded per-control-step
  :class:`FlightRecorder` capturing device-level behaviour (state
  features, chosen OPP, exploration flag, reward, running ``P_crit``
  violations, thermal state, agent loss);
* :mod:`repro.obs.profile` — a hierarchical :class:`ScopeProfiler`
  (``with profile("agent.act")``) with self/cumulative tables plus an
  opt-in :func:`cprofile_capture` wrapper;
* :mod:`repro.obs.report` — offline Markdown run reports generated
  from flight-recorder and metrics JSONL artefacts
  (:func:`generate_report`, the ``obs-report`` CLI subcommand);
* :mod:`repro.obs.sink` — the streaming half: an :class:`EventPipeline`
  of pluggable :class:`TelemetrySink` backends (:class:`JsonlSink`,
  :class:`SqliteSink`, :class:`EventBuffer`, :class:`FanoutSink`)
  carrying round spans, fault/guard/quarantine events and run
  summaries out of a live run, merge-compatible with the parallel
  engine's worker telemetry;
* :mod:`repro.obs.store` — the persistent cross-run half: a
  SQLite-backed :class:`RunStore` registering runs by fingerprint with
  config, per-round series, events and final summaries, plus the
  append-only ``BENCH_history.jsonl`` trajectory;
* :mod:`repro.obs.diff` / :mod:`repro.obs.regress` — cross-run
  comparison (:func:`diff_runs`, the ``obs-diff`` subcommand) and
  regression detection over run history (robust z-scores,
  :func:`detect_regressions`, the ``bench --gate`` throughput gate);
* :mod:`repro.obs.sketch` / :mod:`repro.obs.rollup` — the live,
  constant-memory half: mergeable bounded estimators
  (:class:`QuantileDigest`, :class:`EwmaEstimator`,
  :class:`ReservoirSampler`) backing the :class:`Histogram`, and a
  streaming :class:`FleetRollup` turning the event stream into
  per-round fleet aggregates in O(1) memory per device;
* :mod:`repro.obs.alerts` / :mod:`repro.obs.exposition` /
  :mod:`repro.obs.watch` — live delivery: spec-string threshold/trend
  rules (:class:`AlertEngine`) emitting ``alert`` events, an opt-in
  :class:`MetricsServer` exposing ``/metrics`` (Prometheus text),
  ``/health`` and ``/rollup.json`` (``run --serve-metrics``), and the
  ``obs-watch`` terminal dashboard (:func:`watch`) tailing an events
  JSONL or polling a :class:`RunStore`.

Instrumentation contract: every instrumented call site holds an
``Optional`` sink and emits behind one ``is not None`` check, so a run
with no sinks attached pays no measurable overhead (enforced by
``benchmarks/test_bench_overhead.py``). Timing values never flow into
seeded or asserted quantities, so telemetry cannot perturb
reproducibility. The :mod:`repro.obs.context` stack (thread-local)
lets the CLI attach sinks to runners without changing their
signatures.
"""

from repro.obs.alerts import (
    AlertEngine,
    AlertRule,
    format_alerts_markdown,
    parse_alert_specs,
)
from repro.obs.context import (
    Telemetry,
    activate,
    active_events,
    active_flight,
    active_metrics,
    active_profiler,
    active_tracer,
    deactivate,
    get_active,
    telemetry,
)
from repro.obs.diff import (
    RunDiff,
    RunMetrics,
    diff_runs,
    format_diff_markdown,
    format_history_markdown,
    format_reward_curves,
    run_metrics_from_files,
    run_metrics_from_store,
    run_scalars,
)
from repro.obs.exposition import MetricsServer, prometheus_text
from repro.obs.flight import FlightRecord, FlightRecorder
from repro.obs.logging import (
    JsonFormatter,
    KeyValueFormatter,
    get_logger,
    reset_logging,
    setup_logging,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    timed,
)
from repro.obs.profile import (
    CProfileReport,
    ScopeProfiler,
    ScopeStats,
    cprofile_capture,
    profile,
)
from repro.obs.regress import (
    BenchGateResult,
    RegressionFlag,
    bench_key_metrics,
    check_bench_gate,
    detect_regressions,
    robust_z,
)
from repro.obs.report import (
    generate_report,
    load_metrics_jsonl,
    load_telemetry_jsonl,
    report_from_files,
)
from repro.obs.rollup import ROLLUP_SERIES, FleetRollup
from repro.obs.sink import (
    TELEMETRY_SCHEMA_VERSION,
    EventBuffer,
    EventPipeline,
    FanoutSink,
    JsonlSink,
    SqliteSink,
    TelemetrySink,
    iter_jsonl_rows,
)
from repro.obs.sketch import EwmaEstimator, QuantileDigest, ReservoirSampler
from repro.obs.store import (
    BENCH_HISTORY_SCHEMA_VERSION,
    RUN_STORE_SCHEMA_VERSION,
    RunStore,
    append_bench_history,
    ingest_training_result,
    load_bench_history,
)
from repro.obs.tracing import (
    PHASE_AGGREGATE,
    PHASE_BROADCAST,
    PHASE_LOCAL_TRAIN,
    PHASE_UPLOAD,
    PhaseSpan,
    RoundSpan,
    RoundTracer,
)
from repro.obs.watch import JsonlFollower, StoreFollower, watch

__all__ = [
    "AlertEngine",
    "AlertRule",
    "BENCH_HISTORY_SCHEMA_VERSION",
    "BenchGateResult",
    "CProfileReport",
    "Counter",
    "EventBuffer",
    "EventPipeline",
    "EwmaEstimator",
    "FanoutSink",
    "FleetRollup",
    "FlightRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonFormatter",
    "JsonlFollower",
    "JsonlSink",
    "KeyValueFormatter",
    "MetricsRegistry",
    "MetricsServer",
    "PHASE_AGGREGATE",
    "PHASE_BROADCAST",
    "PHASE_LOCAL_TRAIN",
    "PHASE_UPLOAD",
    "PhaseSpan",
    "QuantileDigest",
    "ROLLUP_SERIES",
    "RUN_STORE_SCHEMA_VERSION",
    "RegressionFlag",
    "ReservoirSampler",
    "RoundSpan",
    "RoundTracer",
    "RunDiff",
    "RunMetrics",
    "RunStore",
    "ScopeProfiler",
    "ScopeStats",
    "SqliteSink",
    "StoreFollower",
    "TELEMETRY_SCHEMA_VERSION",
    "Telemetry",
    "TelemetrySink",
    "activate",
    "active_events",
    "active_flight",
    "active_metrics",
    "active_profiler",
    "active_tracer",
    "append_bench_history",
    "bench_key_metrics",
    "check_bench_gate",
    "cprofile_capture",
    "deactivate",
    "detect_regressions",
    "diff_runs",
    "format_alerts_markdown",
    "format_diff_markdown",
    "format_history_markdown",
    "format_reward_curves",
    "generate_report",
    "get_active",
    "get_logger",
    "ingest_training_result",
    "iter_jsonl_rows",
    "load_bench_history",
    "load_metrics_jsonl",
    "load_telemetry_jsonl",
    "parse_alert_specs",
    "profile",
    "prometheus_text",
    "report_from_files",
    "reset_logging",
    "robust_z",
    "run_metrics_from_files",
    "run_metrics_from_store",
    "run_scalars",
    "setup_logging",
    "telemetry",
    "timed",
    "watch",
]
