"""In-process metrics: counters, gauges, histograms, timers.

The registry is the numeric half of the observability layer
(:mod:`repro.obs`). It is deliberately tiny and dependency-free: plain
Python objects, ``time.perf_counter`` for timing, and quantile
summaries computed on demand with :func:`numpy.quantile`. Instrumented
code holds an ``Optional[MetricsRegistry]`` and guards every emission
with a single ``is not None`` check, so an uninstrumented run pays one
pointer comparison per call site and nothing else.

Export paths: :meth:`MetricsRegistry.snapshot` (nested dict),
:meth:`MetricsRegistry.to_jsonl_lines` (one JSON object per metric,
ready for a ``.jsonl`` sink) and :meth:`MetricsRegistry.to_csv`
(flat ``name,kind,field,value`` rows for spreadsheets).

Timing values live only in histograms — nothing seeded or asserted by
the experiments reads them back, which keeps runs bit-reproducible
with or without metrics attached.
"""

from __future__ import annotations

import functools
import json
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.obs.sketch import QuantileDigest

#: Quantiles reported in histogram summaries (median, tail, far tail).
SUMMARY_QUANTILES = (0.5, 0.9, 0.99)


def _require_name(name: str) -> str:
    if not name or not isinstance(name, str):
        raise ConfigurationError(f"metric name must be a non-empty string, got {name!r}")
    return name


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = _require_name(name)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc by {amount})"
            )
        self.value += amount


class Gauge:
    """A value that can move in both directions (e.g. a round index)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = _require_name(name)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """A stream of observations with on-demand quantile summaries.

    Backed by a :class:`~repro.obs.sketch.QuantileDigest`, so memory is
    bounded regardless of how many observations arrive: small streams
    stay verbatim (quantiles exact), long streams compress into a fixed
    number of logarithmic cells while count/sum/min/max stay exact.
    """

    __slots__ = ("name", "_digest")

    def __init__(self, name: str) -> None:
        self.name = _require_name(name)
        self._digest = QuantileDigest()

    def observe(self, value: float) -> None:
        self._digest.add(float(value))

    @property
    def count(self) -> int:
        return self._digest.count

    @property
    def total(self) -> float:
        return float(self._digest.total)

    def state_cells(self) -> int:
        """Retained state entries — bounded, unlike the observation count."""
        return self._digest.state_cells()

    def quantile(self, q: float) -> float:
        if self._digest.count == 0:
            raise ConfigurationError(f"histogram {self.name!r} has no observations")
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        return self._digest.quantile(q)

    def summary(self) -> Dict[str, float]:
        """count/sum/min/max/mean plus the :data:`SUMMARY_QUANTILES`."""
        digest = self._digest
        if digest.count == 0:
            return {"count": 0, "sum": 0.0}
        out: Dict[str, float] = {
            "count": digest.count,
            "sum": float(digest.total),
            "min": float(digest.minimum),
            "max": float(digest.maximum),
            "mean": float(digest.mean()),
        }
        for q in SUMMARY_QUANTILES:
            out[f"p{int(q * 100)}"] = digest.quantile(q)
        return out

    def dump_state(self) -> Dict[str, object]:
        """The backing digest's canonical state (bounded, picklable)."""
        return self._digest.state()

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold a digest state (or a legacy raw sample list) in."""
        if isinstance(state, dict):
            self._digest.merge(QuantileDigest.from_state(state))
        else:
            for value in state:
                self._digest.add(float(value))


class MetricsRegistry:
    """Get-or-create store for all metrics of one run.

    One registry per run (or per experiment sweep). Metric kinds are
    namespaced by name only; re-registering a name with a different
    kind is an error rather than a silent shadow.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- get-or-create -------------------------------------------------
    def counter(self, name: str) -> Counter:
        self._check_kind(name, "counter")
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        self._check_kind(name, "gauge")
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        self._check_kind(name, "histogram")
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def _check_kind(self, name: str, kind: str) -> None:
        _require_name(name)
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {other_kind}, "
                    f"cannot reuse it as a {kind}"
                )

    # -- one-line emission helpers ------------------------------------
    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- timing --------------------------------------------------------
    @contextmanager
    def timer(self, name: str) -> Iterator[None]:
        """Observe the wall-time of a ``with`` block into histogram ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name).observe(time.perf_counter() - start)

    def timed(self, name: str) -> Callable:
        """Decorator form of :meth:`timer`."""

        def decorate(func: Callable) -> Callable:
            @functools.wraps(func)
            def wrapper(*args, **kwargs):
                with self.timer(name):
                    return func(*args, **kwargs)

            return wrapper

        return decorate

    # -- worker merge --------------------------------------------------
    def dump_state(self) -> Dict[str, Dict[str, object]]:
        """The registry's mergeable contents as one picklable dict.

        Unlike :meth:`snapshot`, histograms ship their *digest state*
        (not quantile summaries), so a parent registry merging a
        worker's dump via :meth:`merge_state` ends up with the same
        sketch a single-process run would hold. Digest states are
        bounded, so the payload crossing the worker pipe RPC stays
        O(metrics) instead of O(observations).
        """
        return {
            "counters": {n: c.value for n, c in self._counters.items()},
            "gauges": {n: g.value for n, g in self._gauges.items()},
            "histograms": {
                n: h.dump_state() for n, h in self._histograms.items()
            },
        }

    def merge_state(self, state: Dict[str, Dict[str, object]]) -> None:
        """Fold a :meth:`dump_state` dict from another registry in.

        Counters add, gauges take the incoming value (last write wins,
        matching what sequential emission would leave behind) and
        histograms merge digest states (legacy raw sample lists are
        still accepted). Used by the parallel execution backends to
        merge per-worker telemetry back into the run's ambient
        registry, always in deterministic device order.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(float(value))
        for name, hist_state in state.get("histograms", {}).items():
            self.histogram(name).merge_state(hist_state)

    # -- export --------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The full registry as one nested, JSON-serialisable dict."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }

    def to_jsonl_lines(self) -> List[str]:
        """One JSON object per metric (``{"metric", "kind", ...}``)."""
        lines = []
        for name, counter in sorted(self._counters.items()):
            lines.append(
                json.dumps({"metric": name, "kind": "counter", "value": counter.value})
            )
        for name, gauge in sorted(self._gauges.items()):
            lines.append(
                json.dumps({"metric": name, "kind": "gauge", "value": gauge.value})
            )
        for name, histogram in sorted(self._histograms.items()):
            lines.append(
                json.dumps(
                    {"metric": name, "kind": "histogram", **histogram.summary()}
                )
            )
        return lines

    def to_csv(self) -> str:
        """Flat ``name,kind,field,value`` rows (one per scalar)."""
        rows = ["name,kind,field,value"]
        for name, counter in sorted(self._counters.items()):
            rows.append(f"{name},counter,value,{counter.value}")
        for name, gauge in sorted(self._gauges.items()):
            rows.append(f"{name},gauge,value,{gauge.value}")
        for name, histogram in sorted(self._histograms.items()):
            for field, value in histogram.summary().items():
                rows.append(f"{name},histogram,{field},{value}")
        return "\n".join(rows) + "\n"

    def reset(self) -> None:
        """Drop every registered metric (tests and sweep reuse)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def timed(registry: Optional[MetricsRegistry], name: str) -> Callable:
    """Registry-optional decorator: no-op when ``registry`` is ``None``.

    Lets module-level code decorate functions unconditionally::

        @timed(metrics, "experiments.load_s")
        def load(): ...
    """

    def decorate(func: Callable) -> Callable:
        if registry is None:
            return func
        return registry.timed(name)(func)

    return decorate
