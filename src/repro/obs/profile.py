"""Hot-path scope profiler.

Before any perf PR can claim a win, wall-time must be attributable:
how much of a training run is ``agent.act`` versus the simulator step
versus aggregation? :class:`ScopeProfiler` answers that with
hierarchical ``perf_counter`` scopes::

    profiler = ScopeProfiler()
    with profiler.scope("control.run_steps"):
        with profiler.scope("agent.act"):
            ...

Nested scopes build slash-joined paths (``control.run_steps/agent.act``)
and every node tracks call count, cumulative time and child time, so
both *cumulative* and *self* columns come out of one pass. Hot loops
that already measure elapsed time can feed it in without a context
manager via :meth:`ScopeProfiler.add` (one dict update, no ``with``
overhead).

The module-level :func:`profile` helper resolves the ambient profiler
from :mod:`repro.obs.context`; with none active it returns a shared
no-op scope, so permanently instrumented call sites cost one context
lookup. For micro-level attribution there is an opt-in
:func:`cprofile_capture` wrapper around :mod:`cProfile` — far too slow
to leave attached, which is exactly why the scope profiler exists.

Aggregates export through :meth:`ScopeProfiler.export_to` as
``profile.<path>`` gauges on a :class:`~repro.obs.metrics.MetricsRegistry`,
which is how they reach ``--metrics-out`` files and the offline run
report.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from time import perf_counter
from typing import Dict, Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError
from repro.obs.context import active_profiler
from repro.obs.metrics import MetricsRegistry

#: Separator between nested scope names in a path.
PATH_SEPARATOR = "/"


@dataclass
class ScopeStats:
    """Accumulated timings of one scope path."""

    path: str
    count: int = 0
    total_s: float = 0.0
    child_s: float = 0.0

    @property
    def self_s(self) -> float:
        """Time spent in this scope excluding profiled children."""
        return max(self.total_s - self.child_s, 0.0)

    @property
    def name(self) -> str:
        """The leaf name (last path segment)."""
        return self.path.rsplit(PATH_SEPARATOR, 1)[-1]

    @property
    def depth(self) -> int:
        return self.path.count(PATH_SEPARATOR)


class _Scope:
    """One live ``with`` scope (class-based for low enter/exit cost)."""

    __slots__ = ("_profiler", "_name", "_path", "_start")

    def __init__(self, profiler: "ScopeProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Scope":
        self._path = self._profiler._push(self._name)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profiler._pop(self._path, perf_counter() - self._start)
        return False


class _NullScope:
    """Shared do-nothing scope for uninstrumented runs."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SCOPE = _NullScope()


class ScopeProfiler:
    """Collects hierarchical wall-time statistics for one run."""

    def __init__(self) -> None:
        self._stats: Dict[str, ScopeStats] = {}
        self._stack: List[str] = []

    # -- recording -----------------------------------------------------
    def scope(self, name: str) -> _Scope:
        """``with profiler.scope("agent.act"): ...``"""
        if not name:
            raise ConfigurationError("scope name must be non-empty")
        return _Scope(self, name)

    def add(self, name: str, elapsed_s: float) -> None:
        """Record an externally measured duration as a leaf scope.

        The duration is attributed under the currently open scope path
        (if any) and counted as child time of that parent, exactly as a
        ``with`` scope would be — but without context-manager overhead,
        which matters inside per-step loops.
        """
        path = self._child_path(name)
        self._record(path, elapsed_s)

    def _push(self, name: str) -> str:
        path = self._child_path(name)
        self._stack.append(path)
        return path

    def _pop(self, path: str, elapsed_s: float) -> None:
        self._stack.pop()
        self._record(path, elapsed_s)

    def _child_path(self, name: str) -> str:
        if self._stack:
            return self._stack[-1] + PATH_SEPARATOR + name
        return name

    def _record(self, path: str, elapsed_s: float) -> None:
        stats = self._stats.get(path)
        if stats is None:
            stats = self._stats[path] = ScopeStats(path=path)
        stats.count += 1
        stats.total_s += elapsed_s
        if self._stack:
            parent = self._stats.get(self._stack[-1])
            if parent is None:
                parent = self._stats[self._stack[-1]] = ScopeStats(
                    path=self._stack[-1]
                )
            parent.child_s += elapsed_s

    # -- views ---------------------------------------------------------
    @property
    def open_depth(self) -> int:
        """Currently open scopes (0 when no ``with`` block is active)."""
        return len(self._stack)

    def table(self) -> List[ScopeStats]:
        """All scope paths, deepest trees kept together, by cumulative time."""
        return sorted(
            self._stats.values(), key=lambda s: (-s.total_s, s.path)
        )

    def stats(self, path: str) -> ScopeStats:
        if path not in self._stats:
            raise ConfigurationError(f"no scope recorded under path {path!r}")
        return self._stats[path]

    def total_recorded_s(self) -> float:
        """Cumulative time of root scopes (no double counting)."""
        return sum(
            s.total_s for s in self._stats.values() if PATH_SEPARATOR not in s.path
        )

    def format_table(self) -> str:
        """A fixed-width self/cumulative table, one row per scope path."""
        rows = self.table()
        if not rows:
            return "profiler: no scopes recorded"
        width = max(len("scope"), *(len(s.path) for s in rows))
        lines = [
            f"{'scope':<{width}}  {'count':>8}  {'cum_s':>10}  {'self_s':>10}  {'mean_ms':>9}"
        ]
        for s in rows:
            mean_ms = 1000.0 * s.total_s / s.count if s.count else 0.0
            lines.append(
                f"{s.path:<{width}}  {s.count:>8}  {s.total_s:>10.4f}  "
                f"{s.self_s:>10.4f}  {mean_ms:>9.3f}"
            )
        return "\n".join(lines)

    # -- worker merge --------------------------------------------------
    def dump_rows(self) -> List[tuple]:
        """All stats as ``(path, count, total_s, child_s)`` rows.

        The picklable counterpart of the profiler itself: parallel
        device workers profile into a private instance, ship these rows
        across the thread/process boundary, and the parent folds them
        back in with :meth:`merge_rows`.
        """
        return [
            (s.path, s.count, s.total_s, s.child_s)
            for s in self._stats.values()
        ]

    def merge_rows(self, rows: Iterable[tuple]) -> None:
        """Fold :meth:`dump_rows` output from another profiler in.

        Merged paths are re-rooted under the currently open scope (if
        any), so a worker's ``control.run_steps/control.act`` lands as
        ``federated.local_train/control.run_steps/control.act`` when the
        orchestrator merges inside its ``federated.local_train`` scope —
        the same attribution a serial run produces. Worker root rows
        count as child time of the open scope.
        """
        prefix = self._stack[-1] + PATH_SEPARATOR if self._stack else ""
        parent: Optional[ScopeStats] = None
        if self._stack:
            parent = self._stats.get(self._stack[-1])
            if parent is None:
                parent = self._stats[self._stack[-1]] = ScopeStats(
                    path=self._stack[-1]
                )
        for path, count, total_s, child_s in rows:
            full = prefix + path
            stats = self._stats.get(full)
            if stats is None:
                stats = self._stats[full] = ScopeStats(path=full)
            stats.count += count
            stats.total_s += total_s
            stats.child_s += child_s
            if parent is not None and PATH_SEPARATOR not in path:
                parent.child_s += total_s

    # -- export --------------------------------------------------------
    def export_to(self, registry: MetricsRegistry) -> int:
        """Publish per-path aggregates as ``profile.*`` gauges.

        Three gauges per path (``...:cum_s``, ``...:self_s``,
        ``...:count``); returns the number of exported paths. Gauges —
        not histograms — because the profiler already aggregated.
        """
        for s in self._stats.values():
            registry.set_gauge(f"profile.{s.path}:cum_s", s.total_s)
            registry.set_gauge(f"profile.{s.path}:self_s", s.self_s)
            registry.set_gauge(f"profile.{s.path}:count", s.count)
        return len(self._stats)

    def reset(self) -> None:
        if self._stack:
            raise ConfigurationError(
                f"cannot reset while {len(self._stack)} scope(s) are open"
            )
        self._stats.clear()


def profile(name: str, profiler: Optional[ScopeProfiler] = None):
    """Scope under ``profiler`` or the ambient one; no-op when neither.

    The permanent instrumentation entry point::

        with profile("sim.step"):
            ...

    costs one context lookup plus a no-op enter/exit when no profiler
    is attached.
    """
    resolved = active_profiler(profiler)
    if resolved is None:
        return NULL_SCOPE
    return resolved.scope(name)


class CProfileReport:
    """Holds the formatted :mod:`pstats` output after capture."""

    def __init__(self) -> None:
        self.text: str = ""


@contextmanager
def cprofile_capture(
    sort: str = "cumulative", limit: int = 30
) -> Iterator[CProfileReport]:
    """Opt-in deterministic profiler around a block.

    ``with cprofile_capture() as report: ...`` — afterwards
    ``report.text`` holds the top-``limit`` rows sorted by ``sort``.
    Orders of magnitude slower than :class:`ScopeProfiler`; never
    attach it to a run whose wall-time you are reporting.
    """
    import cProfile
    import io
    import pstats

    report = CProfileReport()
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield report
    finally:
        profiler.disable()
        stream = io.StringIO()
        pstats.Stats(profiler, stream=stream).sort_stats(sort).print_stats(limit)
        report.text = stream.getvalue()
