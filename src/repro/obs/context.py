"""Ambient telemetry context.

Experiment runners have a uniform ``runner(config) -> str`` signature,
so the CLI cannot thread a registry/tracer argument through every
figure and ablation module. Instead it *activates* a
:class:`Telemetry` bundle here, and the instrumented entry points
(:func:`repro.experiments.training.train_federated`,
:func:`repro.federated.orchestrator.run_federated_training`,
...) pick it up as their default when no explicit ``metrics``/``tracer``
argument is passed. Explicit arguments always win over the ambient
context.

The context is a plain stack of bundles — nesting is allowed (an outer
sweep registry plus an inner per-run tracer) and :func:`telemetry`
guarantees balanced push/pop. Lookup is one list indexing, so the
default path (empty stack → ``None``) stays effectively free.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import RoundTracer


@dataclass(frozen=True)
class Telemetry:
    """One activated metrics/tracer pair (either may be ``None``)."""

    metrics: Optional[MetricsRegistry] = None
    tracer: Optional[RoundTracer] = None


_STACK: List[Telemetry] = []


def activate(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[RoundTracer] = None,
) -> Telemetry:
    """Push a telemetry bundle; pair every call with :func:`deactivate`."""
    bundle = Telemetry(metrics=metrics, tracer=tracer)
    _STACK.append(bundle)
    return bundle


def deactivate() -> None:
    """Pop the innermost bundle (no-op on an empty stack)."""
    if _STACK:
        _STACK.pop()


def get_active() -> Optional[Telemetry]:
    """The innermost activated bundle, or ``None``."""
    return _STACK[-1] if _STACK else None


def active_metrics(
    explicit: Optional[MetricsRegistry] = None,
) -> Optional[MetricsRegistry]:
    """``explicit`` if given, else the ambient registry (if any)."""
    if explicit is not None:
        return explicit
    bundle = get_active()
    return bundle.metrics if bundle is not None else None


def active_tracer(explicit: Optional[RoundTracer] = None) -> Optional[RoundTracer]:
    """``explicit`` if given, else the ambient tracer (if any)."""
    if explicit is not None:
        return explicit
    bundle = get_active()
    return bundle.tracer if bundle is not None else None


@contextmanager
def telemetry(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[RoundTracer] = None,
) -> Iterator[Telemetry]:
    """``with telemetry(registry, tracer): ...`` — balanced activation."""
    bundle = activate(metrics=metrics, tracer=tracer)
    try:
        yield bundle
    finally:
        deactivate()
