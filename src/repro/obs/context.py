"""Ambient telemetry context.

Experiment runners have a uniform ``runner(config) -> str`` signature,
so the CLI cannot thread a registry/tracer/flight-recorder/profiler
argument through every figure and ablation module. Instead it
*activates* a :class:`Telemetry` bundle here, and the instrumented
entry points (:func:`repro.experiments.training.train_federated`,
:func:`repro.federated.orchestrator.run_federated_training`,
...) pick it up as their default when no explicit ``metrics``/
``tracer``/``flight``/``profiler`` argument is passed. Explicit
arguments always win over the ambient context.

The context is a stack of bundles — nesting is allowed (an outer sweep
registry plus an inner per-run tracer) and :func:`telemetry`
guarantees balanced push/pop. The stack is *thread-local*: telemetry
activated on one thread is invisible to every other thread, so
concurrent runs (e.g. the async federated server's worker threads, or
parallel sweep drivers) cannot leak sinks into each other. Lookup is
one attribute access plus a list indexing, so the default path (empty
stack → ``None``) stays effectively free.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import RoundTracer

if TYPE_CHECKING:  # imported lazily to avoid cycles (profile imports us)
    from repro.obs.flight import FlightRecorder
    from repro.obs.profile import ScopeProfiler
    from repro.obs.sink import EventPipeline


@dataclass(frozen=True)
class Telemetry:
    """One activated bundle of sinks (any subset may be ``None``)."""

    metrics: Optional[MetricsRegistry] = None
    tracer: Optional[RoundTracer] = None
    flight: Optional["FlightRecorder"] = None
    profiler: Optional["ScopeProfiler"] = None
    events: Optional["EventPipeline"] = None


class _ThreadLocalStack(threading.local):
    """Each thread sees its own, initially empty, bundle stack."""

    def __init__(self) -> None:
        self.stack: List[Telemetry] = []


_LOCAL = _ThreadLocalStack()


def activate(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[RoundTracer] = None,
    flight: Optional["FlightRecorder"] = None,
    profiler: Optional["ScopeProfiler"] = None,
    events: Optional["EventPipeline"] = None,
) -> Telemetry:
    """Push a telemetry bundle; pair every call with :func:`deactivate`."""
    bundle = Telemetry(
        metrics=metrics,
        tracer=tracer,
        flight=flight,
        profiler=profiler,
        events=events,
    )
    _LOCAL.stack.append(bundle)
    return bundle


def deactivate() -> None:
    """Pop the innermost bundle (no-op on an empty stack)."""
    if _LOCAL.stack:
        _LOCAL.stack.pop()


def get_active() -> Optional[Telemetry]:
    """The innermost bundle activated *on this thread*, or ``None``."""
    stack = _LOCAL.stack
    return stack[-1] if stack else None


def active_metrics(
    explicit: Optional[MetricsRegistry] = None,
) -> Optional[MetricsRegistry]:
    """``explicit`` if given, else the ambient registry (if any)."""
    if explicit is not None:
        return explicit
    bundle = get_active()
    return bundle.metrics if bundle is not None else None


def active_tracer(explicit: Optional[RoundTracer] = None) -> Optional[RoundTracer]:
    """``explicit`` if given, else the ambient tracer (if any)."""
    if explicit is not None:
        return explicit
    bundle = get_active()
    return bundle.tracer if bundle is not None else None


def active_flight(
    explicit: Optional["FlightRecorder"] = None,
) -> Optional["FlightRecorder"]:
    """``explicit`` if given, else the ambient flight recorder (if any)."""
    if explicit is not None:
        return explicit
    bundle = get_active()
    return bundle.flight if bundle is not None else None


def active_profiler(
    explicit: Optional["ScopeProfiler"] = None,
) -> Optional["ScopeProfiler"]:
    """``explicit`` if given, else the ambient profiler (if any)."""
    if explicit is not None:
        return explicit
    bundle = get_active()
    return bundle.profiler if bundle is not None else None


def active_events(
    explicit: Optional["EventPipeline"] = None,
) -> Optional["EventPipeline"]:
    """``explicit`` if given, else the ambient event pipeline (if any)."""
    if explicit is not None:
        return explicit
    bundle = get_active()
    return bundle.events if bundle is not None else None


@contextmanager
def telemetry(
    metrics: Optional[MetricsRegistry] = None,
    tracer: Optional[RoundTracer] = None,
    flight: Optional["FlightRecorder"] = None,
    profiler: Optional["ScopeProfiler"] = None,
    events: Optional["EventPipeline"] = None,
) -> Iterator[Telemetry]:
    """``with telemetry(registry, tracer): ...`` — balanced activation."""
    bundle = activate(
        metrics=metrics,
        tracer=tracer,
        flight=flight,
        profiler=profiler,
        events=events,
    )
    try:
        yield bundle
    finally:
        deactivate()
