"""Offline run reports.

Turns the artefacts a telemetry-attached run leaves behind — a flight
recorder JSONL (``--flight-out``) and optionally the round-span/metrics
JSONL (``--metrics-out``) — into one human-readable Markdown report:
per-device OPP dwell histograms, power-violation rates per round,
reward/convergence curves (rendered with
:func:`repro.utils.ascii_plot.line_plot` and quantified with
:mod:`repro.analysis.convergence`), straggler and global-model drift
summaries, a device-vs-fleet divergence table, and the profiler's
self/cumulative table when one was exported.

Everything here is read-only post-processing: the generator never
touches a live run, so it is deliberately defensive about degenerate
inputs — empty traces, rounds with zero participants, devices that
never recorded a violation — and renders placeholders instead of
dividing by zero.

Exposed on the CLI as ``repro-power obs-report``.
"""

from __future__ import annotations

from statistics import fmean
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.convergence import plateau_round, tail_stability
from repro.errors import ConfigurationError
from repro.obs.flight import FlightRecorder
from repro.utils.ascii_plot import line_plot

#: At most this many series share one ASCII plot (marker alphabet size).
_MAX_PLOT_SERIES = 8


def load_telemetry_jsonl(
    path,
) -> Tuple[
    Optional[Dict[str, object]],
    List[Dict[str, object]],
    Optional[Dict[str, object]],
]:
    """Split a ``--metrics-out`` file into header, spans and snapshot.

    Rows of unknown type are ignored, and unparseable lines — the torn
    tail a kill-injected run leaves mid-write — are skipped with a
    warning (:func:`repro.obs.sink.iter_jsonl_rows`) rather than
    raising, so post-mortem reporting works on exactly the runs that
    died uncleanly.
    """
    # Imported here: sink has no report dependency.
    from repro.obs.sink import iter_jsonl_rows

    header: Optional[Dict[str, object]] = None
    spans: List[Dict[str, object]] = []
    snapshot: Optional[Dict[str, object]] = None
    for row in iter_jsonl_rows(path):
        kind = row.get("type")
        if kind == "header" and header is None:
            header = row
        elif kind == "round_span":
            spans.append(row)
        elif kind == "metrics_snapshot":
            snapshot = row
    return header, spans, snapshot


def load_metrics_jsonl(
    path,
) -> Tuple[List[Dict[str, object]], Optional[Dict[str, object]]]:
    """Split a ``--metrics-out`` file into round spans and the snapshot."""
    _, spans, snapshot = load_telemetry_jsonl(path)
    return spans, snapshot


def generate_report(
    flight: FlightRecorder,
    spans: Optional[Sequence[Dict[str, object]]] = None,
    snapshot: Optional[Dict[str, object]] = None,
    power_limit_w: Optional[float] = None,
    title: str = "Run report",
    alerts: Optional[Sequence[Dict[str, object]]] = None,
) -> str:
    """Render the full Markdown report from loaded artefacts.

    ``alerts`` takes the ``alert`` event rows a live run's alert rules
    emitted (see :mod:`repro.obs.alerts`); when given — even empty — an
    ``## Alerts`` section summarises them.
    """
    sections = [_overview(flight, spans, power_limit_w, title)]
    sections.append(_dwell_section(flight))
    sections.append(_violation_section(flight))
    sections.append(_reward_section(flight))
    if spans:
        sections.append(_rounds_section(spans))
    if alerts is not None:
        # Imported here: alerts has no report dependency.
        from repro.obs.alerts import format_alerts_markdown

        sections.append(format_alerts_markdown(alerts))
    sections.append(_divergence_section(flight))
    if snapshot is not None:
        profiler = _profiler_section(snapshot)
        if profiler:
            sections.append(profiler)
        sections.append(_snapshot_section(snapshot))
    return "\n\n".join(part for part in sections if part) + "\n"


# -- sections ----------------------------------------------------------
def _overview(
    flight: FlightRecorder,
    spans: Optional[Sequence[Dict[str, object]]],
    power_limit_w: Optional[float],
    title: str,
) -> str:
    devices = flight.devices()
    rounds_observed = {r.round_index for r in flight}
    lines = [f"# {title}", ""]
    lines.append(f"- devices: {len(devices)}" + (f" ({', '.join(devices)})" if devices else ""))
    lines.append(f"- flight records retained: {len(flight)}")
    if flight.records_dropped:
        lines.append(
            f"- records evicted by the ring buffer: {flight.records_dropped}"
        )
    lines.append(
        f"- rounds observed on-device: {len(rounds_observed)}"
        + (f" (0..{max(rounds_observed)})" if rounds_observed else "")
    )
    if spans is not None:
        lines.append(f"- federated round spans: {len(spans)}")
    if power_limit_w is not None:
        lines.append(f"- power constraint P_crit: {power_limit_w:.3f} W")
    lines.append(
        f"- fleet power-violation rate: {_percent(flight.violation_rate())}"
    )
    return "\n".join(lines)


def _dwell_section(flight: FlightRecorder) -> str:
    lines = ["## OPP dwell per device", ""]
    devices = flight.devices()
    if not devices:
        lines.append("_no flight records — nothing to histogram_")
        return "\n".join(lines)
    # Frequencies per OPP index come from the records themselves.
    freq_by_index: Dict[int, float] = {}
    for record in flight:
        freq_by_index.setdefault(record.action_index, record.action_frequency_hz)
    for device in devices:
        counts = flight.dwell_counts(device)
        total = sum(counts.values())
        lines.append(f"### {device}")
        lines.append("")
        lines.append("| OPP | freq [MHz] | steps | share | |")
        lines.append("|----:|-----------:|------:|------:|---|")
        for index, count in counts.items():
            share = count / total if total else 0.0
            bar = "#" * max(1, round(40 * share)) if count else ""
            freq_mhz = freq_by_index.get(index, 0.0) / 1e6
            lines.append(
                f"| {index} | {freq_mhz:.0f} | {count} | {_percent(share)} | `{bar}` |"
            )
        lines.append("")
    return "\n".join(lines).rstrip()


def _violation_section(flight: FlightRecorder) -> str:
    lines = ["## Power-constraint violations", ""]
    devices = flight.devices()
    if not devices:
        lines.append("_no flight records — no violation data_")
        return "\n".join(lines)
    lines.append("| device | steps | violations | rate |")
    lines.append("|--------|------:|-----------:|-----:|")
    counts = flight.violation_counts()
    steps = flight.steps_by_device()
    for device in devices:
        lines.append(
            f"| {device} | {steps.get(device, 0)} | {counts.get(device, 0)} "
            f"| {_percent(flight.violation_rate(device))} |"
        )
    per_round = flight.violations_by_round()
    if len(per_round) >= 2:
        lines.append("")
        lines.append("Fleet violation rate per round:")
        lines.append("")
        lines.append("```")
        lines.append(
            line_plot(
                {"violation_rate": [per_round[r] for r in sorted(per_round)]},
                title="P > P_crit rate vs round",
                y_min=0.0,
            )
        )
        lines.append("```")
    return "\n".join(lines)


def _reward_section(flight: FlightRecorder) -> str:
    lines = ["## Reward convergence", ""]
    devices = flight.devices()
    series: Dict[str, List[float]] = {}
    for device in devices:
        by_round = flight.rewards_by_round(device)
        if by_round:
            series[device] = [by_round[r] for r in sorted(by_round)]
    if not series:
        lines.append("_no flight records — no reward curves_")
        return "\n".join(lines)
    plotted = dict(list(series.items())[:_MAX_PLOT_SERIES])
    if any(len(curve) >= 2 for curve in plotted.values()):
        lines.append("```")
        lines.append(
            line_plot(plotted, title="mean training reward per round")
        )
        lines.append("```")
        lines.append("")
    if len(series) > len(plotted):
        lines.append(
            f"_({len(series) - len(plotted)} additional devices omitted "
            "from the plot; the table below covers all of them)_"
        )
        lines.append("")
    lines.append("| device | rounds | final reward | plateau round | tail stddev |")
    lines.append("|--------|-------:|-------------:|--------------:|------------:|")
    for device, curve in series.items():
        # plateau_round needs its smoothing window to fit the curve.
        plateau = plateau_round(curve, window=min(3, len(curve)))
        stability = tail_stability(curve)
        lines.append(
            f"| {device} | {len(curve)} | {curve[-1]:+.4f} "
            f"| {plateau} | {stability:.4f} |"
        )
    return "\n".join(lines)


def _rounds_section(spans: Sequence[Dict[str, object]]) -> str:
    lines = ["## Federated rounds", ""]
    durations = [float(s.get("duration_s", 0.0)) for s in spans]
    participant_counts = [len(s.get("participants", []) or []) for s in spans]
    straggler_counts: Dict[str, int] = {}
    straggler_rates: List[float] = []
    for span in spans:
        participants = span.get("participants", []) or []
        stragglers = span.get("stragglers", []) or []
        for client in stragglers:
            straggler_counts[str(client)] = straggler_counts.get(str(client), 0) + 1
        # A round with zero participants has no participation slots to
        # lose; count its straggler rate as zero instead of dividing.
        straggler_rates.append(
            len(stragglers) / len(participants) if participants else 0.0
        )
    aggregated = sum(1 for s in spans if s.get("aggregated"))
    lines.append(f"- rounds: {len(spans)} ({aggregated} aggregated)")
    lines.append(
        f"- mean round duration: {fmean(durations):.4f} s" if durations else "- mean round duration: n/a"
    )
    lines.append(
        "- mean participants per round: "
        + (f"{fmean(participant_counts):.2f}" if participant_counts else "n/a")
    )
    lines.append(
        "- mean straggler rate: "
        + (f"{_percent(fmean(straggler_rates))}" if straggler_rates else "n/a")
    )
    if straggler_counts:
        worst = sorted(straggler_counts.items(), key=lambda kv: (-kv[1], kv[0]))
        lines.append(
            "- stragglers: "
            + ", ".join(f"{client} x{count}" for client, count in worst)
        )
    phase_totals: Dict[str, List[float]] = {}
    for span in spans:
        for phase in span.get("phases", []) or []:
            phase_totals.setdefault(str(phase.get("name")), []).append(
                float(phase.get("duration_s", 0.0))
            )
    if phase_totals:
        lines.append("")
        lines.append("| phase | spans | total [s] | mean [ms] |")
        lines.append("|-------|------:|----------:|----------:|")
        for name, values in sorted(
            phase_totals.items(), key=lambda kv: -sum(kv[1])
        ):
            lines.append(
                f"| {name} | {len(values)} | {sum(values):.4f} "
                f"| {1000.0 * fmean(values):.3f} |"
            )
    drift = [
        float(s["update_norm"])
        for s in spans
        if s.get("update_norm") is not None
    ]
    if len(drift) >= 2:
        lines.append("")
        lines.append("```")
        lines.append(line_plot({"update_norm": drift}, title="global-model drift per round"))
        lines.append("```")
    return "\n".join(lines)


def _divergence_section(flight: FlightRecorder) -> str:
    lines = ["## Device vs fleet divergence", ""]
    devices = flight.devices()
    if not devices:
        lines.append("_no flight records — no divergence table_")
        return "\n".join(lines)
    fleet_records = flight.records
    if not fleet_records:
        lines.append("_all records were evicted or sampled out — no divergence table_")
        return "\n".join(lines)
    fleet_reward = fmean(r.reward for r in fleet_records)
    fleet_power = fmean(r.obs_power_w for r in fleet_records)
    fleet_violation = flight.violation_rate()
    lines.append(
        "| device | steps | mean reward | Δ reward | mean power [W] "
        "| Δ power | violation rate | Δ rate |"
    )
    lines.append("|--------|------:|------------:|---------:|---------------:|--------:|---------------:|-------:|")
    for device in devices:
        recs = flight.device_records(device)
        if not recs:
            continue
        reward = fmean(r.reward for r in recs)
        power = fmean(r.obs_power_w for r in recs)
        violation = flight.violation_rate(device)
        lines.append(
            f"| {device} | {len(recs)} | {reward:+.4f} | {reward - fleet_reward:+.4f} "
            f"| {power:.4f} | {power - fleet_power:+.4f} "
            f"| {_percent(violation)} | {violation - fleet_violation:+.4f} |"
        )
    lines.append("")
    lines.append(
        f"Fleet means: reward {fleet_reward:+.4f}, power {fleet_power:.4f} W, "
        f"violation rate {_percent(fleet_violation)}."
    )
    return "\n".join(lines)


def _profiler_section(snapshot: Dict[str, object]) -> str:
    gauges = snapshot.get("gauges")
    if not isinstance(gauges, dict):
        return ""
    rows: Dict[str, Dict[str, float]] = {}
    for name, value in gauges.items():
        if not name.startswith("profile.") or ":" not in name:
            continue
        path, field = name[len("profile.") :].rsplit(":", 1)
        rows.setdefault(path, {})[field] = float(value)
    if not rows:
        return ""
    lines = ["## Hot-path profile", ""]
    lines.append("| scope | count | cum [s] | self [s] |")
    lines.append("|-------|------:|--------:|---------:|")
    for path, fields in sorted(
        rows.items(), key=lambda kv: -kv[1].get("cum_s", 0.0)
    ):
        lines.append(
            f"| `{path}` | {int(fields.get('count', 0))} "
            f"| {fields.get('cum_s', 0.0):.4f} | {fields.get('self_s', 0.0):.4f} |"
        )
    return "\n".join(lines)


def _snapshot_section(snapshot: Dict[str, object]) -> str:
    lines = ["## Metrics snapshot", ""]
    counters = snapshot.get("counters")
    if isinstance(counters, dict) and counters:
        lines.append("| counter | value |")
        lines.append("|---------|------:|")
        for name, value in sorted(counters.items()):
            lines.append(f"| `{name}` | {value:g} |")
        lines.append("")
    histograms = snapshot.get("histograms")
    if isinstance(histograms, dict) and histograms:
        lines.append("| histogram | count | mean | p90 |")
        lines.append("|-----------|------:|-----:|----:|")
        for name, summary in sorted(histograms.items()):
            if not isinstance(summary, dict):
                continue
            lines.append(
                f"| `{name}` | {int(summary.get('count', 0))} "
                f"| {_maybe(summary.get('mean'))} | {_maybe(summary.get('p90'))} |"
            )
    if len(lines) == 2:
        lines.append("_snapshot contained no counters or histograms_")
    return "\n".join(lines).rstrip()


# -- small formatting helpers -----------------------------------------
def _percent(fraction: float) -> str:
    return f"{100.0 * fraction:.2f}%"


def _maybe(value) -> str:
    if value is None:
        return "n/a"
    return f"{float(value):.6g}"


def report_from_files(
    flight_path,
    metrics_path=None,
    power_limit_w: Optional[float] = None,
    title: str = "Run report",
    events_path=None,
) -> str:
    """Load artefacts from disk and render the report (CLI entry point).

    ``events_path`` points at a ``--events-out`` JSONL; its ``alert``
    rows (if any) feed the report's alerts section.
    """
    from repro.obs.sink import iter_jsonl_rows

    flight = FlightRecorder.from_jsonl(flight_path)
    spans: Optional[List[Dict[str, object]]] = None
    snapshot: Optional[Dict[str, object]] = None
    alerts: Optional[List[Dict[str, object]]] = None
    if metrics_path:
        spans, snapshot = load_metrics_jsonl(metrics_path)
    if events_path:
        alerts = [
            row
            for row in iter_jsonl_rows(events_path)
            if row.get("type") == "alert"
        ]
    if len(flight) == 0 and not spans:
        raise ConfigurationError(
            f"no flight records in {flight_path!r} and no round spans to "
            "report on — was the run started with --flight-out?"
        )
    return generate_report(
        flight,
        spans=spans,
        snapshot=snapshot,
        power_limit_w=power_limit_w,
        title=title,
        alerts=alerts,
    )
