"""Device-level flight recorder.

Round spans (:mod:`repro.obs.tracing`) explain what the *federation*
did; they say nothing about why one device converged slowly, how often
an agent exceeded ``P_crit``, or which OPPs it actually dwelled in.
The :class:`FlightRecorder` fills that gap: a bounded ring buffer that
captures one :class:`FlightRecord` per control step — the observed
state features, the chosen OPP, the exploration/greedy flag, the
reward, the running power-violation count, the thermal state, and the
agent loss whenever a train step fired.

The recorder follows the instrumentation contract of :mod:`repro.obs`:
call sites hold an ``Optional[FlightRecorder]`` and emit behind one
``is not None`` check, appends are O(1) (a ``deque`` with ``maxlen``),
and nothing recorded ever flows back into seeded or asserted
quantities. ``capacity`` bounds memory for arbitrarily long runs and
``sample_every`` thins the stream for very hot loops; both keep the
*running* counters exact because they are carried inside each record
rather than recomputed from whatever rows survived.

Export paths: JSONL (``dump_jsonl``/``from_jsonl`` round-trip, the
format ``repro-power run --flight-out`` writes and ``repro-power
obs-report`` reads) and NPZ (``dump_npz``, one array per field for
numpy post-processing).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import asdict, dataclass, fields
from typing import Deque, Dict, Iterable, Iterator, List, Optional

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FlightRecord:
    """Everything the recorder keeps about one control step.

    ``obs_*`` fields are the state features the agent acted *from*
    (the pre-action snapshot); ``action_index``/``action_frequency_hz``
    identify the OPP it chose; ``violations`` is the device's running
    ``P > P_crit`` count up to and including this step, so the total
    survives ring-buffer eviction; ``loss`` is set only on steps where
    the agent performed a gradient/table update.
    """

    device: str
    round_index: int
    step: int
    obs_frequency_hz: float
    obs_power_w: float
    obs_ipc: float
    obs_mpki: float
    action_index: int
    action_frequency_hz: float
    reward: float
    greedy: Optional[bool] = None
    violated: bool = False
    violations: int = 0
    temperature_c: Optional[float] = None
    loss: Optional[float] = None
    #: Whether a safety watchdog's fallback governor chose the action
    #: (always False for unguarded controllers).
    fallback: bool = False

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


_FIELD_NAMES = tuple(f.name for f in fields(FlightRecord))


class FlightRecorder:
    """Bounded per-step recorder for a fleet of devices.

    One recorder serves every device of a run (records carry the device
    id), so a single ``--flight-out`` file captures the whole fleet.
    ``capacity`` is the maximum number of *retained* records (oldest
    evicted first); ``sample_every`` keeps only every Nth step per
    device (N=1 keeps all).
    """

    def __init__(self, capacity: int = 65536, sample_every: int = 1) -> None:
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        if sample_every < 1:
            raise ConfigurationError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.capacity = capacity
        self.sample_every = sample_every
        self._records: Deque[FlightRecord] = deque(maxlen=capacity)
        self._appended = 0
        self._seen_by_device: Dict[str, int] = {}
        self._violations_by_device: Dict[str, int] = {}
        self._fallbacks_by_device: Dict[str, int] = {}

    # -- recording -----------------------------------------------------
    def record(self, record: FlightRecord) -> bool:
        """Append one step; returns whether the record was retained.

        Every offered step updates the recorder's exact per-device
        counters (steps seen, violations), even when ``sample_every``
        thins it out or the ring buffer later evicts it — so aggregate
        totals stay exact regardless of capacity or sampling, and they
        add up correctly when several sessions share one device name.
        """
        seen = self._seen_by_device.get(record.device, 0)
        self._seen_by_device[record.device] = seen + 1
        if record.violated:
            self._violations_by_device[record.device] = (
                self._violations_by_device.get(record.device, 0) + 1
            )
        if record.fallback:
            self._fallbacks_by_device[record.device] = (
                self._fallbacks_by_device.get(record.device, 0) + 1
            )
        if seen % self.sample_every != 0:
            return False
        self._records.append(record)
        self._appended += 1
        return True

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[FlightRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[FlightRecord]:
        """Retained records, oldest first (a copy)."""
        return list(self._records)

    @property
    def steps_seen(self) -> int:
        """Control steps offered to the recorder (before sampling)."""
        return sum(self._seen_by_device.values())

    @property
    def records_dropped(self) -> int:
        """Retained-then-evicted records (ring-buffer overflow)."""
        return self._appended - len(self._records)

    def clear(self) -> None:
        self._records.clear()
        self._appended = 0
        self._seen_by_device.clear()
        self._violations_by_device.clear()
        self._fallbacks_by_device.clear()

    # -- aggregate views ----------------------------------------------
    def devices(self) -> List[str]:
        """Device ids ever offered to the recorder, sorted.

        Based on the exact counters, so a device whose records were all
        evicted or sampled out still shows up in aggregate tables.
        """
        return sorted(self._seen_by_device)

    def device_records(self, device: str) -> List[FlightRecord]:
        return [r for r in self._records if r.device == device]

    def dwell_counts(self, device: Optional[str] = None) -> Dict[int, int]:
        """Steps spent per chosen OPP index (one device or the fleet)."""
        counts: Dict[int, int] = {}
        for record in self._records:
            if device is not None and record.device != device:
                continue
            counts[record.action_index] = counts.get(record.action_index, 0) + 1
        return dict(sorted(counts.items()))

    def steps_by_device(self) -> Dict[str, int]:
        """Steps offered per device (exact, before sampling/eviction)."""
        return dict(sorted(self._seen_by_device.items()))

    def violation_counts(self) -> Dict[str, int]:
        """``P > P_crit`` steps per device.

        Counted at ``record()`` time over *every* offered step, so the
        totals are exact under sampling and ring-buffer eviction (for a
        recorder rebuilt from a dump, they cover the dumped rows).
        Devices with zero violations still appear, with 0.
        """
        return {
            device: self._violations_by_device.get(device, 0)
            for device in sorted(self._seen_by_device)
        }

    def violation_rate(self, device: Optional[str] = None) -> float:
        """Fraction of offered steps that exceeded ``P_crit``.

        ``device=None`` gives the fleet-wide rate; an unknown device or
        an empty recorder yields 0.0 rather than dividing by zero.
        """
        if device is None:
            steps = sum(self._seen_by_device.values())
            hits = sum(self._violations_by_device.values())
        else:
            steps = self._seen_by_device.get(device, 0)
            hits = self._violations_by_device.get(device, 0)
        return hits / steps if steps else 0.0

    def fallback_counts(self) -> Dict[str, int]:
        """Watchdog-fallback steps per device (exact, like violations).

        Counted at ``record()`` time over every offered step, so the
        totals survive sampling and eviction. Devices that never fell
        back still appear, with 0.
        """
        return {
            device: self._fallbacks_by_device.get(device, 0)
            for device in sorted(self._seen_by_device)
        }

    def fallback_rate(self, device: Optional[str] = None) -> float:
        """Fraction of offered steps controlled by a safety fallback."""
        if device is None:
            steps = sum(self._seen_by_device.values())
            hits = sum(self._fallbacks_by_device.values())
        else:
            steps = self._seen_by_device.get(device, 0)
            hits = self._fallbacks_by_device.get(device, 0)
        return hits / steps if steps else 0.0

    def rewards_by_round(self, device: Optional[str] = None) -> Dict[int, float]:
        """Mean recorded reward per federated round."""
        sums: Dict[int, float] = {}
        counts: Dict[int, int] = {}
        for record in self._records:
            if device is not None and record.device != device:
                continue
            sums[record.round_index] = sums.get(record.round_index, 0.0) + record.reward
            counts[record.round_index] = counts.get(record.round_index, 0) + 1
        return {r: sums[r] / counts[r] for r in sorted(sums)}

    def violations_by_round(self, device: Optional[str] = None) -> Dict[int, float]:
        """Violation rate per federated round (retained records)."""
        hits: Dict[int, int] = {}
        counts: Dict[int, int] = {}
        for record in self._records:
            if device is not None and record.device != device:
                continue
            counts[record.round_index] = counts.get(record.round_index, 0) + 1
            if record.violated:
                hits[record.round_index] = hits.get(record.round_index, 0) + 1
        return {
            r: hits.get(r, 0) / counts[r] for r in sorted(counts)
        }

    # -- worker merge --------------------------------------------------
    def dump_worker_state(self):
        """Drain retained records and snapshot the exact counters.

        Returns ``(rows, seen_by_device, violations_by_device,
        fallbacks_by_device)`` where the counter dicts are *running
        totals* for every device this recorder has ever seen. Used by
        parallel execution workers: a per-device worker records into a
        private recorder (same ``capacity``/``sample_every`` as the
        run's recorder), drains it after each task, and ships the
        result across the thread/process boundary. Draining keeps the
        counters, so sampling phase and running violation/fallback
        counts stay continuous across rounds.
        """
        rows = list(self._records)
        self._records.clear()
        self._appended -= len(rows)
        return (
            rows,
            dict(self._seen_by_device),
            dict(self._violations_by_device),
            dict(self._fallbacks_by_device),
        )

    def merge_worker_state(
        self,
        rows: Iterable[FlightRecord],
        seen_by_device: Dict[str, int],
        violations_by_device: Dict[str, int],
        fallbacks_by_device: Optional[Dict[str, int]] = None,
    ) -> None:
        """Fold one worker's :meth:`dump_worker_state` into this recorder.

        Records append in the given order (the caller merges workers in
        deterministic device order, reproducing the serial interleaving)
        and the ring handles eviction exactly as live recording would.
        Counter totals *overwrite* this recorder's entries — each device
        lives in exactly one worker, so the worker's running totals are
        authoritative for its device.
        """
        for row in rows:
            self._records.append(row)
            self._appended += 1
        self._seen_by_device.update(seen_by_device)
        self._violations_by_device.update(violations_by_device)
        if fallbacks_by_device:
            self._fallbacks_by_device.update(fallbacks_by_device)

    # -- export --------------------------------------------------------
    def to_dicts(self) -> List[Dict[str, object]]:
        return [record.as_dict() for record in self._records]

    def to_jsonl_lines(self) -> List[str]:
        return [
            json.dumps({"type": "flight_record", **record.as_dict()})
            for record in self._records
        ]

    def dump_jsonl(self, path) -> int:
        """Write one JSON line per retained record; returns the row count."""
        lines = self.to_jsonl_lines()
        with open(path, "w") as handle:
            if lines:
                handle.write("\n".join(lines) + "\n")
        return len(lines)

    def dump_npz(self, path) -> int:
        """Write one array per record field (numpy-friendly export)."""
        import numpy as np

        columns: Dict[str, list] = {name: [] for name in _FIELD_NAMES}
        for record in self._records:
            row = record.as_dict()
            for name in _FIELD_NAMES:
                value = row[name]
                if name in ("temperature_c", "loss") and value is None:
                    value = np.nan
                if name == "greedy":
                    value = -1 if value is None else int(value)
                columns[name].append(value)
        np.savez_compressed(path, **{k: np.asarray(v) for k, v in columns.items()})
        return len(self._records)

    @classmethod
    def from_dicts(cls, rows: Iterable[Dict[str, object]]) -> "FlightRecorder":
        """Rebuild a recorder (unbounded enough to hold ``rows``)."""
        rows = list(rows)
        recorder = cls(capacity=max(1, len(rows)))
        known = set(_FIELD_NAMES)
        for row in rows:
            payload = {k: v for k, v in row.items() if k in known}
            recorder.record(FlightRecord(**payload))
        return recorder

    @classmethod
    def from_jsonl(cls, path) -> "FlightRecorder":
        """Load a recorder back from a ``dump_jsonl`` file.

        Non-record lines (header records, round spans in a mixed
        stream) are skipped, so the loader tolerates concatenated
        telemetry files — and unparseable lines (the torn tail of a
        killed run) are skipped with a warning rather than raising.
        """
        # Imported here: sink imports nothing from flight.
        from repro.obs.sink import iter_jsonl_rows

        rows: List[Dict[str, object]] = []
        for row in iter_jsonl_rows(path):
            if row.get("type", "flight_record") != "flight_record":
                continue
            rows.append(row)
        return cls.from_dicts(rows)
