"""Opt-in HTTP metrics exposition for a live run.

``repro-power run --serve-metrics PORT`` starts a
:class:`MetricsServer` — a stdlib ``http.server`` daemon thread — next
to the training loop, serving:

* ``/metrics`` — Prometheus text exposition (version 0.0.4) rendered
  from the run's :class:`~repro.obs.metrics.MetricsRegistry` and
  :class:`~repro.obs.rollup.FleetRollup`;
* ``/health`` — a tiny JSON liveness document (status, rounds seen);
* ``/rollup.json`` — the full fleet rollup snapshot.

The server is read-only and lock-free by design: handlers snapshot the
live registry/rollup on each request, and because the training thread
mutates them concurrently, the snapshot is retried a few times on the
rare mid-mutation ``RuntimeError`` instead of taking a lock on the hot
training path — the exposition side pays the cost, never the run.
Binding to port 0 picks a free port (tests); :attr:`MetricsServer.port`
reports the bound port after :meth:`start`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.obs.logging import get_logger

__all__ = ["MetricsServer", "prometheus_text"]

_LOG = get_logger("obs.http")

#: How many times a handler re-tries a snapshot torn by the run thread.
_SNAPSHOT_RETRIES = 5

#: Histogram summary fields exported as Prometheus quantile samples.
_QUANTILE_FIELDS = (("p50", "0.5"), ("p90", "0.9"), ("p99", "0.99"))


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric name from a dotted repro metric name."""
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def prometheus_text(
    snapshot: Optional[Dict[str, object]] = None,
    rollup: Optional[Dict[str, object]] = None,
) -> str:
    """Render a registry snapshot + rollup snapshot as Prometheus text.

    Pure function of its inputs so the format is directly testable; the
    HTTP handler only adds the snapshotting and transport around it.
    """
    lines = []
    snapshot = snapshot or {}
    for name, value in sorted((snapshot.get("counters") or {}).items()):
        metric = f"repro_{_sanitize(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {float(value):g}")
    for name, value in sorted((snapshot.get("gauges") or {}).items()):
        metric = f"repro_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {float(value):g}")
    for name, summary in sorted((snapshot.get("histograms") or {}).items()):
        if not isinstance(summary, dict) or not summary.get("count"):
            continue
        metric = f"repro_{_sanitize(name)}"
        lines.append(f"# TYPE {metric} summary")
        for field, quantile in _QUANTILE_FIELDS:
            if field in summary:
                lines.append(
                    f'{metric}{{quantile="{quantile}"}} '
                    f"{float(summary[field]):g}"
                )
        lines.append(f"{metric}_sum {float(summary.get('sum', 0.0)):g}")
        lines.append(f"{metric}_count {int(summary.get('count', 0))}")
    if rollup:
        fleet_gauges = (
            ("rounds", "repro_fleet_rounds_total"),
            ("rounds_aggregated", "repro_fleet_rounds_aggregated_total"),
            ("participants_total", "repro_fleet_participants_total"),
            ("stragglers_total", "repro_fleet_stragglers_total"),
            ("straggler_rate", "repro_fleet_straggler_rate"),
            ("bytes_total", "repro_fleet_bytes_total"),
            ("quarantined_total", "repro_fleet_quarantined_total"),
            ("guard_transitions", "repro_fleet_guard_transitions_total"),
            ("alerts_total", "repro_fleet_alerts_total"),
            ("joins_total", "repro_fleet_joins_total"),
            ("leaves_total", "repro_fleet_leaves_total"),
        )
        for key, metric in fleet_gauges:
            value = rollup.get(key)
            if value is None:
                continue
            kind = "counter" if metric.endswith("_total") else "gauge"
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {float(value):g}")
        reward = rollup.get("reward_ewma")
        if reward is not None:
            lines.append("# TYPE repro_fleet_reward_ewma gauge")
            lines.append(f"repro_fleet_reward_ewma {float(reward):g}")
        throughput = rollup.get("rounds_per_s")
        if throughput is not None:
            lines.append("# TYPE repro_fleet_rounds_per_s gauge")
            lines.append(f"repro_fleet_rounds_per_s {float(throughput):g}")
        for kind, count in sorted(
            (rollup.get("fault_counts") or {}).items()
        ):
            lines.append(
                f'repro_fleet_faults_total{{kind="{kind}"}} {int(count)}'
            )
    return "\n".join(lines) + "\n"


class MetricsServer:
    """A daemon-thread HTTP server exposing live run telemetry."""

    def __init__(
        self,
        metrics=None,
        rollup=None,
        port: int = 0,
        host: str = "127.0.0.1",
    ) -> None:
        if not 0 <= port <= 65535:
            raise ConfigurationError(
                f"--serve-metrics port must be in 0..65535, got {port}"
            )
        self.metrics = metrics
        self.rollup = rollup
        self.host = host
        self.port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- snapshotting (concurrent with the training thread) -------------
    def _snapshot_metrics(self) -> Optional[Dict[str, object]]:
        if self.metrics is None:
            return None
        for _ in range(_SNAPSHOT_RETRIES):
            try:
                return self.metrics.snapshot()
            except RuntimeError:  # dict mutated mid-iteration; retry
                continue
        return None

    def _snapshot_rollup(self) -> Optional[Dict[str, object]]:
        if self.rollup is None:
            return None
        for _ in range(_SNAPSHOT_RETRIES):
            try:
                return self.rollup.snapshot()
            except RuntimeError:
                continue
        return None

    # -- lifecycle ------------------------------------------------------
    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        if self._httpd is not None:
            return self.port
        server = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = prometheus_text(
                        server._snapshot_metrics(),
                        server._snapshot_rollup(),
                    ).encode()
                    content_type = "text/plain; version=0.0.4"
                elif path == "/health":
                    rollup = server._snapshot_rollup() or {}
                    body = json.dumps(
                        {
                            "status": "ok",
                            "rounds": rollup.get("rounds", 0),
                            "events_seen": rollup.get("events_seen", 0),
                        }
                    ).encode()
                    content_type = "application/json"
                elif path == "/rollup.json":
                    body = json.dumps(
                        server._snapshot_rollup() or {}, sort_keys=True
                    ).encode()
                    content_type = "application/json"
                else:
                    self.send_error(404, "unknown path")
                    return
                self.send_response(200)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, format, *args):  # noqa: A002
                _LOG.debug("http %s", format % args)

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()
        _LOG.info(
            "metrics server listening",
            extra={"host": self.host, "port": self.port},
        )
        return self.port

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def __enter__(self) -> "MetricsServer":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
