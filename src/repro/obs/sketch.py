"""Mergeable constant-memory estimators: the streaming sketch layer.

Every sink built before this module either keeps raw samples
(histograms, flight records) or defers aggregation to the end of the
run. At the ROADMAP's fleet-scale target (10k devices, long-horizon
runs) neither survives: per-sample state is O(steps) memory, and
end-of-run aggregation gives a live operator nothing to look at. The
three estimators here bound memory by construction and are what the
live observability layer (:mod:`repro.obs.rollup`,
:mod:`repro.obs.exposition`, ``obs-watch``) is built on:

* :class:`QuantileDigest` — a fixed-cell quantile sketch. Small
  streams (≤ ``max_exact`` observations) are kept verbatim, so
  quantiles stay *exact* where exactness is cheap; past that the
  digest compresses into logarithmic cells (à la DDSketch's
  relative-error buckets) capped at ``max_cells``. Count, sum, min and
  max are always tracked exactly.
* :class:`EwmaEstimator` — an exponentially weighted moving average
  for rates and throughputs (rounds/s, bytes/s), one float of state.
* :class:`ReservoirSampler` — a seeded bounded sample of a stream,
  implemented as bottom-k over deterministic per-key hash priorities
  rather than the classic RNG-walk reservoir.

Merge determinism contract: the parallel execution engine merges
worker telemetry in deterministic device order, and the serial/thread/
process bit-identity suites compare the results exactly. All three
sketches therefore merge as *pure functions of the input multiset*:
cell keys depend only on the value, the exact buffer is canonically
sorted on export, exact→cell compression triggers on the observation
*count* alone, EWMA merge is a count-weighted mean, and reservoir
retention is decided by per-key hashes. Two runs that observed the
same values — in any interleaving — expose identical state (the one
caveat: cell *collapse* beyond ``max_cells`` folds tail cells in scan
order, so streams wide enough to overflow the cell budget are bounded
and deterministic per merge order, but no longer order-free).
"""

from __future__ import annotations

import hashlib
import math
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "EwmaEstimator",
    "QuantileDigest",
    "ReservoirSampler",
]

#: Default number of verbatim observations before compressing to cells.
DEFAULT_MAX_EXACT = 128

#: Default cap on the number of logarithmic cells after compression.
DEFAULT_MAX_CELLS = 512

#: Default cell growth factor: ~1% relative width per cell.
DEFAULT_GAMMA = 1.02

#: Magnitudes below this collapse into the dedicated zero cell.
_ZERO_EPSILON = 1e-12


class QuantileDigest:
    """A bounded-memory quantile sketch with deterministic merge.

    State is one of two shapes:

    * **exact** — up to ``max_exact`` raw observations (quantiles are
      computed with :func:`numpy.quantile`, bit-equal to the unbounded
      histogram this sketch replaced);
    * **cells** — logarithmic buckets ``key -> count`` where a positive
      value ``v`` lands in cell ``ceil(log_gamma(v))``. Each cell spans
      a fixed *relative* width, so the quantile estimate's relative
      error is bounded by ``(gamma - 1) / 2`` regardless of scale.

    The transition fires when the observation count crosses
    ``max_exact`` — a property of the multiset, not the insertion
    order — and compresses every buffered value through the same
    value→cell map later insertions use. Merging follows the same
    rule, so a digest merged from per-device worker shards is
    cell-for-cell identical to one that saw the serial interleaving.
    """

    __slots__ = (
        "max_exact",
        "max_cells",
        "gamma",
        "count",
        "total",
        "minimum",
        "maximum",
        "_log_gamma",
        "_exact",
        "_cells",
        "_zero_count",
    )

    def __init__(
        self,
        max_exact: int = DEFAULT_MAX_EXACT,
        max_cells: int = DEFAULT_MAX_CELLS,
        gamma: float = DEFAULT_GAMMA,
    ) -> None:
        if max_exact < 0:
            raise ConfigurationError(
                f"max_exact must be >= 0, got {max_exact}"
            )
        if max_cells < 8:
            raise ConfigurationError(
                f"max_cells must be >= 8, got {max_cells}"
            )
        if not gamma > 1.0:
            raise ConfigurationError(f"gamma must be > 1, got {gamma}")
        self.max_exact = int(max_exact)
        self.max_cells = int(max_cells)
        self.gamma = float(gamma)
        self._log_gamma = math.log(self.gamma)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self._exact: Optional[List[float]] = []
        self._cells: Optional[Dict[int, int]] = None
        self._zero_count = 0

    # -- recording -----------------------------------------------------
    def add(self, value: float) -> None:
        """Fold one observation in (O(1), no allocation after warm-up)."""
        value = float(value)
        if math.isnan(value):
            raise ConfigurationError("cannot add NaN to a quantile digest")
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if self._cells is None:
            self._exact.append(value)
            if len(self._exact) > self.max_exact:
                self._compress()
        else:
            self._add_to_cells(value, 1)

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    # -- cell plumbing -------------------------------------------------
    def _key(self, value: float) -> int:
        """The cell key of one non-zero value.

        Positive magnitudes use even keys ``2 * k``, negative ones odd
        keys ``2 * k + 1``, where ``k = ceil(log_gamma(|v|))`` — a pure
        function of the value, which is what makes merges
        order-independent.
        """
        magnitude = abs(value)
        k = math.ceil(math.log(magnitude) / self._log_gamma)
        return 2 * k if value > 0 else 2 * k + 1

    def _add_to_cells(self, value: float, count: int) -> None:
        if abs(value) < _ZERO_EPSILON:
            self._zero_count += count
            return
        key = self._key(value)
        cells = self._cells
        cells[key] = cells.get(key, 0) + count
        if len(cells) > self.max_cells:
            self._collapse()

    def _compress(self) -> None:
        """Switch from the exact buffer to cells (count-triggered)."""
        self._cells = {}
        buffered = self._exact
        self._exact = None
        for value in buffered:
            self._add_to_cells(value, 1)

    def _cell_value(self, key: int) -> float:
        """The representative (mid-cell) value of one cell key."""
        k = key >> 1
        representative = (
            self.gamma ** (k - 1) * (1.0 + self.gamma) / 2.0
        )
        return representative if key % 2 == 0 else -representative

    def _collapse(self) -> None:
        """Fold the smallest-representative cells together.

        Runs only when a stream spans more than ``max_cells`` distinct
        cells (hundreds of decades at the default gamma). The lowest
        cells merge pairwise until the budget holds; min/max/count/sum
        stay exact throughout, so only deep-tail quantile resolution
        degrades.
        """
        cells = self._cells
        while len(cells) > self.max_cells:
            ordered = sorted(cells, key=self._cell_value)
            lowest, second = ordered[0], ordered[1]
            cells[second] += cells.pop(lowest)

    # -- queries -------------------------------------------------------
    @property
    def is_exact(self) -> bool:
        """Whether quantiles are still computed from raw observations."""
        return self._cells is None

    def state_cells(self) -> int:
        """Number of retained state entries (memory-bound regression hook)."""
        if self._cells is None:
            return len(self._exact)
        return len(self._cells) + (1 if self._zero_count else 0)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            raise ConfigurationError("digest has no observations")
        if self._cells is None:
            return float(np.quantile(self._exact, q))
        if q <= 0.0:
            return self.minimum
        if q >= 1.0:
            return self.maximum
        target = q * (self.count - 1)
        entries: List[Tuple[float, int]] = [
            (self._cell_value(key), cell_count)
            for key, cell_count in self._cells.items()
        ]
        if self._zero_count:
            entries.append((0.0, self._zero_count))
        entries.sort()
        cumulative = 0
        for representative, cell_count in entries:
            cumulative += cell_count
            if cumulative - 1 >= target:
                return float(
                    min(max(representative, self.minimum), self.maximum)
                )
        return self.maximum

    def mean(self) -> float:
        if self.count == 0:
            raise ConfigurationError("digest has no observations")
        return self.total / self.count

    # -- merge / serialisation -----------------------------------------
    def merge(self, other: "QuantileDigest") -> None:
        """Fold another digest in (order-independent below the cell cap)."""
        if other.count == 0:
            return
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        if (
            self._cells is None
            and other._cells is None
            and len(self._exact) + len(other._exact) <= self.max_exact
        ):
            self._exact.extend(other._exact)
            return
        if self._cells is None:
            self._compress()
        if other._cells is None:
            for value in other._exact:
                self._add_to_cells(value, 1)
        else:
            self._zero_count += other._zero_count
            for key, cell_count in other._cells.items():
                self._cells[key] = self._cells.get(key, 0) + cell_count
            if len(self._cells) > self.max_cells:
                self._collapse()

    def state(self) -> Dict[str, object]:
        """A JSON/pickle-friendly canonical snapshot of the digest.

        The exact buffer is exported *sorted*, so two digests holding
        the same multiset serialise identically regardless of the
        insertion order — the property the cross-backend bit-identity
        suites lean on.
        """
        out: Dict[str, object] = {
            "kind": "quantile_digest",
            "max_exact": self.max_exact,
            "max_cells": self.max_cells,
            "gamma": self.gamma,
            "count": self.count,
            "sum": self.total,
        }
        if self.count:
            out["min"] = self.minimum
            out["max"] = self.maximum
        if self._cells is None:
            out["exact"] = sorted(self._exact)
        else:
            out["cells"] = {
                str(key): self._cells[key] for key in sorted(self._cells)
            }
            out["zero"] = self._zero_count
        return out

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "QuantileDigest":
        digest = cls(
            max_exact=int(state.get("max_exact", DEFAULT_MAX_EXACT)),
            max_cells=int(state.get("max_cells", DEFAULT_MAX_CELLS)),
            gamma=float(state.get("gamma", DEFAULT_GAMMA)),
        )
        digest.count = int(state.get("count", 0))
        digest.total = float(state.get("sum", 0.0))
        if digest.count:
            digest.minimum = float(state["min"])
            digest.maximum = float(state["max"])
        if "cells" in state:
            digest._exact = None
            digest._cells = {
                int(key): int(value)
                for key, value in state["cells"].items()
            }
            digest._zero_count = int(state.get("zero", 0))
        else:
            digest._exact = [float(v) for v in state.get("exact", [])]
        return digest


class EwmaEstimator:
    """Exponentially weighted moving average — one float of state.

    ``update(value)`` folds one observation in with smoothing ``alpha``
    (the first observation seeds the average). ``rate(elapsed_s)``
    helpers are left to callers; this class is deliberately just the
    estimator so it can track rewards, rates and throughputs alike.
    Merge is a count-weighted mean, which is associative and
    commutative — deterministic regardless of device merge order.
    """

    __slots__ = ("alpha", "count", "_value")

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must be in (0, 1], got {alpha}"
            )
        self.alpha = float(alpha)
        self.count = 0
        self._value = 0.0

    def update(self, value: float) -> float:
        value = float(value)
        if self.count == 0:
            self._value = value
        else:
            self._value += self.alpha * (value - self._value)
        self.count += 1
        return self._value

    @property
    def value(self) -> Optional[float]:
        """The current average, or ``None`` before any observation."""
        return self._value if self.count else None

    def merge(self, other: "EwmaEstimator") -> None:
        if other.count == 0:
            return
        if self.count == 0:
            self._value = other._value
        else:
            total = self.count + other.count
            self._value = (
                self.count * self._value + other.count * other._value
            ) / total
        self.count += other.count

    def state(self) -> Dict[str, object]:
        return {
            "kind": "ewma",
            "alpha": self.alpha,
            "count": self.count,
            "value": self._value,
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "EwmaEstimator":
        estimator = cls(alpha=float(state.get("alpha", 0.3)))
        estimator.count = int(state.get("count", 0))
        estimator._value = float(state.get("value", 0.0))
        return estimator


def _priority(seed: int, key: str) -> float:
    """A deterministic pseudo-uniform priority in ``[0, 1)`` for ``key``."""
    digest = hashlib.blake2b(
        f"{seed}:{key}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


class ReservoirSampler:
    """A seeded bounded sample with order-independent merge.

    Classic reservoir sampling retains items by walking an RNG whose
    state depends on arrival order — merging two reservoirs then needs
    fresh randomness and loses determinism. This sampler instead gives
    every item a priority hashed from ``(seed, key)`` and keeps the
    ``capacity`` smallest priorities (bottom-k): retention is a pure
    function of the key set, every key is equally likely under the
    hash, and merging shards is just bottom-k over the union. Keys must
    be unique per logical item (e.g. ``"round:device:step"``) — the
    natural identifiers the telemetry stream already carries.
    """

    __slots__ = ("capacity", "seed", "items_seen", "_entries")

    def __init__(self, capacity: int = 64, seed: int = 0) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self.seed = int(seed)
        self.items_seen = 0
        #: ``(priority, key, item)`` rows, kept sorted ascending.
        self._entries: List[Tuple[float, str, object]] = []

    def add(self, item: object, key: Optional[str] = None) -> None:
        key = str(item) if key is None else str(key)
        self.items_seen += 1
        priority = _priority(self.seed, key)
        entries = self._entries
        if len(entries) >= self.capacity and priority >= entries[-1][0]:
            return
        entries.append((priority, key, item))
        entries.sort(key=lambda row: (row[0], row[1]))
        del entries[self.capacity :]

    def sample(self) -> List[object]:
        """The retained items, in priority order (deterministic)."""
        return [item for _, _, item in self._entries]

    def keys(self) -> List[str]:
        return [key for _, key, _ in self._entries]

    def __len__(self) -> int:
        return len(self._entries)

    def merge(self, other: "ReservoirSampler") -> None:
        """Bottom-k over the union of both reservoirs' survivors."""
        if other.seed != self.seed:
            raise ConfigurationError(
                f"cannot merge reservoirs with different seeds "
                f"({self.seed} vs {other.seed})"
            )
        self.items_seen += other.items_seen
        merged = {key: (p, key, item) for p, key, item in self._entries}
        for priority, key, item in other._entries:
            merged.setdefault(key, (priority, key, item))
        self._entries = sorted(
            merged.values(), key=lambda row: (row[0], row[1])
        )[: self.capacity]

    def state(self) -> Dict[str, object]:
        return {
            "kind": "reservoir",
            "capacity": self.capacity,
            "seed": self.seed,
            "items_seen": self.items_seen,
            "entries": [
                [priority, key, item]
                for priority, key, item in self._entries
            ],
        }

    @classmethod
    def from_state(cls, state: Dict[str, object]) -> "ReservoirSampler":
        sampler = cls(
            capacity=int(state.get("capacity", 64)),
            seed=int(state.get("seed", 0)),
        )
        sampler.items_seen = int(state.get("items_seen", 0))
        sampler._entries = [
            (float(priority), str(key), item)
            for priority, key, item in state.get("entries", [])
        ]
        return sampler
