"""Regression detection over run history: robust z-scores and gates.

Comparing two runs (:mod:`repro.obs.diff`) answers "did B get worse
than A"; this module answers "did the *latest* run get worse than its
own history". Both questions use the same robust statistics as the
update-quarantine layer (:mod:`repro.guard.quarantine`): a median/MAD
z-score, so one historical outlier cannot shift the baseline the way a
mean/stdev would.

Two consumers:

* :func:`detect_regressions` — scalar summaries of stored runs
  (``repro-power obs-history``), flagging any direction-aware metric
  whose latest value sits beyond a z threshold;
* :func:`check_bench_gate` — the CI throughput gate over
  ``BENCH_history.jsonl``: fail when a key train-steps/s metric drops
  more than ``max_drop`` below the median of the stored baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ConfigurationError

#: Scale factor turning a MAD into a stdev-comparable sigma (same
#: constant the quarantine layer uses).
_MAD_SIGMA = 1.4826

#: Direction of "good" for the run-summary metrics obs-history checks.
SUMMARY_DIRECTIONS: Dict[str, str] = {
    "reward_mean_final": "higher",
    "violation_rate": "lower",
    "straggler_rate": "lower",
    "wire_bytes": "lower",
    "wall_time_s": "lower",
    "train_steps_per_s": "higher",
}


def robust_z(value: float, history: Sequence[float]) -> float:
    """``(value - median) / (1.4826 * MAD)`` over ``history``.

    With fewer than two points — or a zero MAD (constant history) —
    the score is 0.0 when the value equals the median and ±inf
    otherwise, so a deviation from a perfectly stable baseline is
    still flagged.
    """
    values = [float(v) for v in history]
    if not values:
        return 0.0
    center = median(values)
    mad = median(abs(v - center) for v in values)
    deviation = float(value) - center
    if mad == 0.0:
        if deviation == 0.0:
            return 0.0
        return float("inf") if deviation > 0 else float("-inf")
    return deviation / (_MAD_SIGMA * mad)


@dataclass(frozen=True)
class RegressionFlag:
    """One metric whose latest value regressed beyond the threshold."""

    metric: str
    value: float
    baseline_median: float
    z: float
    direction: str

    def describe(self) -> str:
        return (
            f"{self.metric}: {self.value:.6g} vs baseline median "
            f"{self.baseline_median:.6g} (robust z = {self.z:+.2f}, "
            f"{self.direction} is better)"
        )


def detect_regressions(
    history: Sequence[Mapping[str, object]],
    latest: Mapping[str, object],
    directions: Optional[Mapping[str, str]] = None,
    z_threshold: float = 3.5,
    min_history: int = 3,
) -> List[RegressionFlag]:
    """Flag direction-aware metrics of ``latest`` that left the baseline.

    ``history`` holds the *prior* runs' scalar summaries (latest
    excluded). Metrics with fewer than ``min_history`` baseline points
    are skipped — a two-run store has no distribution to score
    against. Only deviations in the *bad* direction count.
    """
    if z_threshold <= 0:
        raise ConfigurationError(
            f"z_threshold must be > 0, got {z_threshold}"
        )
    directions = dict(directions) if directions is not None else dict(
        SUMMARY_DIRECTIONS
    )
    flags: List[RegressionFlag] = []
    for metric in sorted(directions):
        direction = directions[metric]
        if direction not in ("higher", "lower"):
            raise ConfigurationError(
                f"direction for {metric!r} must be 'higher' or 'lower',"
                f" got {direction!r}"
            )
        value = latest.get(metric)
        if not isinstance(value, (int, float)):
            continue
        baseline = [
            float(entry[metric])
            for entry in history
            if isinstance(entry.get(metric), (int, float))
        ]
        if len(baseline) < min_history:
            continue
        z = robust_z(float(value), baseline)
        bad = z < -z_threshold if direction == "higher" else z > z_threshold
        if bad:
            flags.append(
                RegressionFlag(
                    metric=metric,
                    value=float(value),
                    baseline_median=median(baseline),
                    z=z,
                    direction=direction,
                )
            )
    return flags


# -- bench throughput gate ---------------------------------------------

#: Dotted paths into a bench document whose drop the gate watches.
BENCH_KEY_METRICS = (
    "single_step.train_steps_per_s",
    "drivers.federated.train_steps_per_s",
    "drivers.local_only.train_steps_per_s",
    "drivers.collab_profit.train_steps_per_s",
    "fleet.per_scale.32.batched.train_steps_per_s",
    "fleet.per_scale.256.batched.train_steps_per_s",
)


def bench_key_metrics(document: Mapping[str, object]) -> Dict[str, float]:
    """Extract the gate's throughput numbers from one bench document."""
    out: Dict[str, float] = {}
    for path in BENCH_KEY_METRICS:
        node: object = document
        for part in path.split("."):
            if not isinstance(node, Mapping) or part not in node:
                node = None
                break
            node = node[part]
        if isinstance(node, (int, float)):
            out[path] = float(node)
    return out


@dataclass(frozen=True)
class BenchGateResult:
    """Outcome of one throughput-gate evaluation."""

    regressions: List[RegressionFlag]
    baselines: Dict[str, float]
    compared: int

    @property
    def ok(self) -> bool:
        return not self.regressions


def check_bench_gate(
    history: Sequence[Mapping[str, object]],
    latest: Mapping[str, float],
    max_drop: float = 0.3,
    baseline_window: int = 5,
) -> BenchGateResult:
    """Fail when a key metric drops > ``max_drop`` below its baseline.

    ``history`` is the prior ``BENCH_history.jsonl`` entries (each with
    a ``key_metrics`` mapping); the baseline per metric is the median
    of its last ``baseline_window`` historical values. An empty history
    passes trivially — the first bench run *creates* the baseline.
    """
    if not 0.0 < max_drop < 1.0:
        raise ConfigurationError(
            f"max_drop must be in (0, 1), got {max_drop}"
        )
    if baseline_window < 1:
        raise ConfigurationError(
            f"baseline_window must be >= 1, got {baseline_window}"
        )
    regressions: List[RegressionFlag] = []
    baselines: Dict[str, float] = {}
    compared = 0
    for metric in sorted(latest):
        values = [
            float(entry["key_metrics"][metric])
            for entry in history
            if isinstance(entry.get("key_metrics"), Mapping)
            and isinstance(entry["key_metrics"].get(metric), (int, float))
        ]
        if not values:
            continue
        baseline = median(values[-baseline_window:])
        baselines[metric] = baseline
        compared += 1
        floor = (1.0 - max_drop) * baseline
        value = float(latest[metric])
        if value < floor:
            regressions.append(
                RegressionFlag(
                    metric=metric,
                    value=value,
                    baseline_median=baseline,
                    z=robust_z(value, values[-baseline_window:]),
                    direction="higher",
                )
            )
    return BenchGateResult(
        regressions=regressions, baselines=baselines, compared=compared
    )
