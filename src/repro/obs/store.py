"""Persistent cross-run storage: the SQLite-backed :class:`RunStore`.

One run at a time is what the in-memory sinks see; the questions the
paper's claims hang on — did the violation rate regress against last
week's baseline, is the fleet backend still ≥10× serial — need *runs
compared against other runs*. The :class:`RunStore` keeps that history
in a single SQLite file (stdlib :mod:`sqlite3`, no new dependencies):

* ``runs`` — one row per run, keyed by an auto id and registered with
  the :func:`repro.faults.recovery.run_fingerprint` of its
  configuration, plus seed/backend/config JSON and (once the run
  finishes) a final summary JSON;
* ``series`` — per-round time series (``reward_mean``, ``bytes``,
  ``duration_s``, ...) for cross-run curve diffs;
* ``events`` — the streamed telemetry event rows
  (:class:`repro.obs.sink.SqliteSink` writes here);
* ``bench`` — full speed-benchmark documents
  (:mod:`repro.experiments.bench`).

The module also owns the ``BENCH_history.jsonl`` trajectory
(:func:`append_bench_history` / :func:`load_bench_history`): compact
schema-versioned entries the CI throughput gate reads, append-only so
the trajectory across PRs survives where ``BENCH_speed.json`` is
overwritten.
"""

from __future__ import annotations

import json
import sqlite3
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.obs.sink import TELEMETRY_SCHEMA_VERSION, iter_jsonl_rows

#: Bump when the SQLite table layout changes.
RUN_STORE_SCHEMA_VERSION = 1

#: Bump when the ``BENCH_history.jsonl`` entry shape changes.
BENCH_HISTORY_SCHEMA_VERSION = 1

_TABLES = """
CREATE TABLE IF NOT EXISTS runs (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    fingerprint TEXT NOT NULL,
    name TEXT NOT NULL,
    seed INTEGER,
    backend TEXT,
    repro_version TEXT,
    schema_version INTEGER NOT NULL,
    created_unix REAL NOT NULL,
    status TEXT NOT NULL,
    config_json TEXT,
    summary_json TEXT
);
CREATE TABLE IF NOT EXISTS series (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    round INTEGER NOT NULL,
    metric TEXT NOT NULL,
    value REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS events (
    run_id INTEGER NOT NULL REFERENCES runs(id),
    seq INTEGER NOT NULL,
    type TEXT NOT NULL,
    payload_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS bench (
    id INTEGER PRIMARY KEY AUTOINCREMENT,
    created_unix REAL NOT NULL,
    schema_version INTEGER NOT NULL,
    document_json TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_series_run ON series(run_id, metric);
CREATE INDEX IF NOT EXISTS idx_events_run ON events(run_id, seq);
CREATE INDEX IF NOT EXISTS idx_runs_fingerprint ON runs(fingerprint);
"""


class RunStore:
    """Registry of runs, their series/events, and bench documents."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._connection = sqlite3.connect(self.path)
        self._connection.row_factory = sqlite3.Row
        self._connection.executescript(_TABLES)
        self._connection.commit()

    # -- run lifecycle -------------------------------------------------
    def register_run(
        self,
        name: str,
        fingerprint: str,
        seed: Optional[int] = None,
        backend: Optional[str] = None,
        repro_version: Optional[str] = None,
        config: Optional[Dict[str, object]] = None,
    ) -> int:
        """Insert a run in ``running`` state; returns its store id."""
        cursor = self._connection.execute(
            "INSERT INTO runs (fingerprint, name, seed, backend,"
            " repro_version, schema_version, created_unix, status,"
            " config_json) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                fingerprint,
                name,
                seed,
                backend,
                repro_version,
                TELEMETRY_SCHEMA_VERSION,
                time.time(),
                "running",
                json.dumps(config, sort_keys=True, default=repr)
                if config is not None
                else None,
            ),
        )
        self._connection.commit()
        return int(cursor.lastrowid)

    def finish_run(self, run_id: int, summary: Dict[str, object]) -> None:
        """Mark a run finished and attach its final scalar summary."""
        self._require_run(run_id)
        self._connection.execute(
            "UPDATE runs SET status = ?, summary_json = ? WHERE id = ?",
            ("finished", json.dumps(summary, sort_keys=True), run_id),
        )
        self._connection.commit()

    # -- writers -------------------------------------------------------
    def record_series(
        self,
        run_id: int,
        metric: str,
        points: Iterable[Tuple[int, float]],
    ) -> None:
        """Append ``(round, value)`` points for one per-round metric."""
        rows = [
            (run_id, int(round_index), metric, float(value))
            for round_index, value in points
        ]
        if not rows:
            return
        self._connection.executemany(
            "INSERT INTO series (run_id, round, metric, value)"
            " VALUES (?, ?, ?, ?)",
            rows,
        )
        self._connection.commit()

    def record_events(
        self, run_id: int, rows: Iterable[Dict[str, object]]
    ) -> None:
        """Append streamed event rows (the :class:`SqliteSink` path)."""
        payload = [
            (
                run_id,
                int(row.get("seq", index)),
                str(row.get("type", "unknown")),
                json.dumps(row, sort_keys=True, default=repr),
            )
            for index, row in enumerate(rows)
        ]
        if not payload:
            return
        self._connection.executemany(
            "INSERT INTO events (run_id, seq, type, payload_json)"
            " VALUES (?, ?, ?, ?)",
            payload,
        )
        self._connection.commit()

    def record_bench(self, document: Dict[str, object]) -> int:
        """Store one full speed-benchmark document; returns its id."""
        cursor = self._connection.execute(
            "INSERT INTO bench (created_unix, schema_version, document_json)"
            " VALUES (?, ?, ?)",
            (
                time.time(),
                int(document.get("schema_version", 0)),
                json.dumps(document, sort_keys=True),
            ),
        )
        self._connection.commit()
        return int(cursor.lastrowid)

    # -- queries -------------------------------------------------------
    def run(self, run_id: int) -> Dict[str, object]:
        """One run row as a dict (config/summary JSON decoded)."""
        row = self._connection.execute(
            "SELECT * FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise ConfigurationError(
                f"run id {run_id} not found in store {self.path!r}"
            )
        return self._decode_run(row)

    def runs(
        self,
        name: Optional[str] = None,
        fingerprint: Optional[str] = None,
    ) -> List[Dict[str, object]]:
        """All runs (optionally filtered), oldest first."""
        query = "SELECT * FROM runs"
        clauses, params = [], []
        if name is not None:
            clauses.append("name = ?")
            params.append(name)
        if fingerprint is not None:
            clauses.append("fingerprint = ?")
            params.append(fingerprint)
        if clauses:
            query += " WHERE " + " AND ".join(clauses)
        query += " ORDER BY id"
        rows = self._connection.execute(query, params).fetchall()
        return [self._decode_run(row) for row in rows]

    def series(
        self, run_id: int, metric: Optional[str] = None
    ) -> Dict[str, List[Tuple[int, float]]]:
        """Per-round series of one run: ``{metric: [(round, value)]}``."""
        self._require_run(run_id)
        query = "SELECT round, metric, value FROM series WHERE run_id = ?"
        params: List[object] = [run_id]
        if metric is not None:
            query += " AND metric = ?"
            params.append(metric)
        query += " ORDER BY metric, round"
        out: Dict[str, List[Tuple[int, float]]] = {}
        for row in self._connection.execute(query, params):
            out.setdefault(row["metric"], []).append(
                (int(row["round"]), float(row["value"]))
            )
        return out

    def events(
        self,
        run_id: int,
        event_type: Optional[str] = None,
        after_seq: Optional[int] = None,
    ) -> List[Dict[str, object]]:
        """The stored event rows of one run, in sequence order.

        ``after_seq`` returns only rows with a strictly greater
        sequence number — the incremental query ``obs-watch`` polls a
        live store with.
        """
        self._require_run(run_id)
        query = "SELECT payload_json FROM events WHERE run_id = ?"
        params: List[object] = [run_id]
        if event_type is not None:
            query += " AND type = ?"
            params.append(event_type)
        if after_seq is not None:
            query += " AND seq > ?"
            params.append(int(after_seq))
        query += " ORDER BY seq"
        return [
            json.loads(row["payload_json"])
            for row in self._connection.execute(query, params)
        ]

    def bench_history(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Stored bench documents, oldest first (last ``limit`` if set)."""
        rows = self._connection.execute(
            "SELECT document_json FROM bench ORDER BY id"
        ).fetchall()
        documents = [json.loads(row["document_json"]) for row in rows]
        if limit is not None:
            documents = documents[-limit:]
        return documents

    # -- ingestion -----------------------------------------------------
    def ingest_telemetry(
        self,
        run_id: int,
        tracer=None,
        flight=None,
        metrics=None,
    ) -> Dict[str, object]:
        """Fold a finished run's in-memory sinks into series + summary.

        Accepts any subset of the run's sinks; returns the summary dict
        it attached via :meth:`finish_run`.
        """
        # Imported here: diff imports store's siblings, not the reverse.
        from repro.obs.diff import run_scalars

        spans = (
            [span.as_dict() for span in tracer.rounds]
            if tracer is not None
            else []
        )
        snapshot = metrics.snapshot() if metrics is not None else None
        if spans:
            self.record_series(
                run_id,
                "bytes",
                [(s["round"], s["bytes"]) for s in spans],
            )
            self.record_series(
                run_id,
                "duration_s",
                [(s["round"], s["duration_s"]) for s in spans],
            )
            self.record_series(
                run_id,
                "stragglers",
                [(s["round"], len(s["stragglers"])) for s in spans],
            )
            self.record_series(
                run_id,
                "update_norm",
                [
                    (s["round"], s["update_norm"])
                    for s in spans
                    if s.get("update_norm") is not None
                ],
            )
        if flight is not None:
            rewards = flight.rewards_by_round()
            if rewards:
                self.record_series(
                    run_id,
                    "reward_mean",
                    sorted(rewards.items()),
                )
            violations = flight.violations_by_round()
            if violations:
                self.record_series(
                    run_id,
                    "violations",
                    sorted(violations.items()),
                )
        summary = run_scalars(spans, snapshot=snapshot, flight=flight)
        self.finish_run(run_id, summary)
        return summary

    # -- plumbing ------------------------------------------------------
    def _require_run(self, run_id: int) -> None:
        row = self._connection.execute(
            "SELECT id FROM runs WHERE id = ?", (run_id,)
        ).fetchone()
        if row is None:
            raise ConfigurationError(
                f"run id {run_id} not found in store {self.path!r}"
            )

    @staticmethod
    def _decode_run(row: sqlite3.Row) -> Dict[str, object]:
        out = dict(row)
        for key in ("config_json", "summary_json"):
            raw = out.pop(key)
            out[key[: -len("_json")]] = (
                json.loads(raw) if raw is not None else None
            )
        return out

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def ingest_training_result(
    store: RunStore,
    result,
    config,
    name: str,
    backend: str = "serial",
) -> int:
    """Register a completed driver run and ingest its evaluation curves.

    The programmatic companion to the CLI's ``--store`` flag: hand it a
    :class:`~repro.experiments.training.TrainingResult` and the config
    it ran under, get back the new run's store id with per-round
    ``reward_mean`` series and a scalar summary attached.
    """
    from repro import __version__
    from repro.faults.recovery import run_fingerprint

    fingerprint = run_fingerprint(
        name=name,
        config=config,
        assignments=sorted(result.assignments.items()),
        backend=backend,
    )
    run_id = store.register_run(
        name=name,
        fingerprint=fingerprint,
        seed=config.seed,
        backend=backend,
        repro_version=__version__,
        config={"repr": repr(config)},
    )
    evaluations = list(result.round_evaluations)
    store.record_series(
        run_id,
        "reward_mean",
        [
            (index, round_eval.overall_mean("reward_mean"))
            for index, round_eval in enumerate(evaluations)
        ],
    )
    summary: Dict[str, object] = {
        "communication_bytes": result.communication_bytes,
        "train_steps": config.total_training_steps * len(result.assignments),
    }
    if evaluations:
        summary["reward_mean_final"] = evaluations[-1].overall_mean(
            "reward_mean"
        )
        summary["rounds"] = len(evaluations)
    federated = result.federated_result
    if federated is not None:
        summary["wire_bytes"] = federated.total_bytes_communicated
        summary["straggler_rate"] = federated.straggler_rate
        summary["violation_rate"] = federated.power_violation_rate()
        summary["aggregations"] = federated.aggregations_completed
    store.finish_run(run_id, summary)
    return run_id


def append_bench_history(
    entry: Dict[str, object], path: str = "BENCH_history.jsonl"
) -> None:
    """Append one schema-versioned bench entry to the JSONL trajectory."""
    with open(path, "a") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


def load_bench_history(path: str) -> List[Dict[str, object]]:
    """All parseable bench-history entries, oldest first.

    Torn trailing lines (a bench run killed mid-append) are skipped
    with a warning, like every other JSONL loader in :mod:`repro.obs`.
    """
    return list(iter_jsonl_rows(path))
