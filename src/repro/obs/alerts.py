"""Threshold and trend alert rules over the live fleet rollup.

Rules are declared as compact spec strings in the ``FaultPlan``/
``ChurnPlan`` idiom — the CLI's ``--alerts`` flag takes either a
comma-separated rule list or a path to a JSON rule file::

    --alerts "straggler_rate>0.25@3,reward_mean<-1.0"
    --alerts alerts.json     # [{"metric": ..., "op": ..., ...}, ...]

One rule reads ``metric OP threshold`` with an optional ``@window``
suffix: the comparison must hold for ``window`` *consecutive* evaluated
rounds before the alert fires (a trend guard against one-round blips).
A fired rule re-arms once the condition clears, so a persistent breach
raises one alert per excursion, not one per round.

The :class:`AlertEngine` is evaluated by the
:class:`~repro.obs.rollup.FleetRollup` against each completed round
row; triggered alerts become ``alert`` events in the run's pipeline —
they stream to JSONL/SQLite sinks like any native event and are
summarised into the run report. Alert decisions read only
deterministic row fields (rewards, rates, counts — never wall-clock
durations, unless a user explicitly writes a rule against one), so the
event stream stays bit-identical across execution backends.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "ALERT_OPS",
    "AlertEngine",
    "AlertRule",
    "format_alerts_markdown",
    "parse_alert_specs",
]

#: Comparison operators a rule may use, longest first for parsing.
ALERT_OPS = (">=", "<=", ">", "<")

_OP_FUNCS = {
    ">": lambda value, threshold: value > threshold,
    "<": lambda value, threshold: value < threshold,
    ">=": lambda value, threshold: value >= threshold,
    "<=": lambda value, threshold: value <= threshold,
}


@dataclass(frozen=True)
class AlertRule:
    """One threshold/trend rule (immutable; engine state lives outside)."""

    metric: str
    op: str
    threshold: float
    window: int = 1
    severity: str = "warn"

    def __post_init__(self) -> None:
        if not self.metric:
            raise ConfigurationError("alert rule needs a metric name")
        if self.op not in _OP_FUNCS:
            raise ConfigurationError(
                f"alert op must be one of {', '.join(ALERT_OPS)}, "
                f"got {self.op!r}"
            )
        if self.window < 1:
            raise ConfigurationError(
                f"alert window must be >= 1, got {self.window}"
            )

    def breached(self, value: float) -> bool:
        return _OP_FUNCS[self.op](float(value), self.threshold)

    def describe(self) -> str:
        spec = f"{self.metric}{self.op}{self.threshold:g}"
        if self.window > 1:
            spec += f"@{self.window}"
        return spec

    @classmethod
    def from_spec(cls, spec: str, severity: str = "warn") -> "AlertRule":
        """Parse one ``metric OP threshold[@window]`` spec string."""
        text = spec.strip()
        if not text:
            raise ConfigurationError("empty alert rule spec")
        window = 1
        if "@" in text:
            text, _, window_text = text.rpartition("@")
            try:
                window = int(window_text)
            except ValueError:
                raise ConfigurationError(
                    f"alert window must be an integer, got {window_text!r} "
                    f"in {spec!r}"
                ) from None
        for op in ALERT_OPS:
            if op in text:
                metric, _, threshold_text = text.partition(op)
                try:
                    threshold = float(threshold_text)
                except ValueError:
                    raise ConfigurationError(
                        f"alert threshold must be a number, got "
                        f"{threshold_text!r} in {spec!r}"
                    ) from None
                return cls(
                    metric=metric.strip(),
                    op=op,
                    threshold=threshold,
                    window=window,
                    severity=severity,
                )
        raise ConfigurationError(
            f"alert rule {spec!r} has no comparison operator "
            f"({', '.join(ALERT_OPS)})"
        )

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "AlertRule":
        unknown = set(doc) - {"metric", "op", "threshold", "window", "severity"}
        if unknown:
            raise ConfigurationError(
                f"unknown alert rule keys: {', '.join(sorted(unknown))}"
            )
        return cls(
            metric=str(doc.get("metric", "")),
            op=str(doc.get("op", ">")),
            threshold=float(doc.get("threshold", 0.0)),
            window=int(doc.get("window", 1)),
            severity=str(doc.get("severity", "warn")),
        )


def parse_alert_specs(spec: str) -> List[AlertRule]:
    """Parse a CLI ``--alerts`` value: rule list or JSON file path."""
    text = spec.strip()
    if not text:
        raise ConfigurationError("--alerts given an empty spec")
    path = pathlib.Path(text)
    if text.endswith(".json") or path.is_file():
        try:
            docs = json.loads(path.read_text())
        except OSError as error:
            raise ConfigurationError(
                f"cannot read alert rule file {text!r}: {error}"
            ) from error
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"alert rule file {text!r} is not valid JSON: {error}"
            ) from error
        if not isinstance(docs, list):
            raise ConfigurationError(
                f"alert rule file {text!r} must hold a JSON list of rules"
            )
        return [AlertRule.from_dict(doc) for doc in docs]
    return [
        AlertRule.from_spec(part)
        for part in text.split(",")
        if part.strip()
    ]


class AlertEngine:
    """Evaluates a rule set against streaming round rows.

    Tracks one consecutive-breach counter per rule; when a counter
    reaches the rule's window the alert fires (edge-triggered) and the
    rule stays latched until the condition clears. :attr:`fired` keeps
    every alert event raised, for the run report.
    """

    def __init__(self, rules: Sequence[AlertRule]) -> None:
        self.rules = list(rules)
        self.fired: List[Dict[str, object]] = []
        self._streaks = [0 for _ in self.rules]

    def evaluate(self, row: Dict[str, object]) -> List[Dict[str, object]]:
        """Check one round row; return the alert events it triggers."""
        alerts: List[Dict[str, object]] = []
        for index, rule in enumerate(self.rules):
            value = row.get(rule.metric)
            if value is None:
                continue
            if rule.breached(float(value)):
                self._streaks[index] += 1
                if self._streaks[index] == rule.window:
                    alert = {
                        "type": "alert",
                        "rule": rule.describe(),
                        "metric": rule.metric,
                        "value": float(value),
                        "threshold": rule.threshold,
                        "op": rule.op,
                        "window": rule.window,
                        "severity": rule.severity,
                        "round": row.get("round"),
                    }
                    self.fired.append(alert)
                    alerts.append(alert)
            else:
                self._streaks[index] = 0
        return alerts

    @property
    def alerts_fired(self) -> int:
        return len(self.fired)


def format_alerts_markdown(
    alerts: Sequence[Dict[str, object]],
    rules: Optional[Sequence[AlertRule]] = None,
) -> str:
    """Render fired alert events as the run report's ``## Alerts`` section."""
    lines = ["## Alerts", ""]
    if rules:
        lines.append(
            "Rules: " + ", ".join(f"`{rule.describe()}`" for rule in rules)
        )
        lines.append("")
    if not alerts:
        lines.append("_no alerts fired_")
        return "\n".join(lines)
    lines.append("| round | severity | rule | value |")
    lines.append("|------:|----------|------|------:|")
    for alert in alerts:
        round_cell = alert.get("round")
        value = alert.get("value")
        lines.append(
            f"| {round_cell if round_cell is not None else '-'} "
            f"| {alert.get('severity', 'warn')} "
            f"| `{alert.get('rule', '?')}` "
            f"| {f'{float(value):.6g}' if value is not None else '-'} |"
        )
    return "\n".join(lines)
