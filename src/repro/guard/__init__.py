"""Safety guardrails, anomaly quarantine and fleet churn.

``repro.faults`` *injects* failures; this package makes runs *degrade
gracefully* under them. Three pillars:

* :mod:`repro.guard.watchdog` — a device-side safety governor that
  monitors the neural agent every control step and swaps in a
  power-cap fallback through an ``ACTIVE → FALLBACK → PROBATION``
  state machine;
* :mod:`repro.guard.quarantine` — server-side anomaly scoring with
  per-device EWMA reputations that excludes repeat offenders from
  aggregation for a cooldown;
* :mod:`repro.guard.churn` — seeded join/leave/rejoin membership
  schedules handled identically by every execution backend.

:mod:`repro.guard.context` provides the CLI's ambient activation
(``--guard``/``--quarantine``/``--churn``) and the end-of-run
:class:`~repro.guard.context.GuardReport`.
"""

from repro.guard.churn import (
    CHURN_KINDS,
    DEFAULT_CHURN_SPEC,
    ChurnEvent,
    ChurnPlan,
)
from repro.guard.context import (
    GuardConfig,
    GuardReport,
    consume_guard_report,
    get_active_guard,
    guard,
    publish_guard_report,
    resolve_guard,
)
from repro.guard.quarantine import QuarantineConfig, QuarantineManager
from repro.guard.watchdog import (
    STATE_ACTIVE,
    STATE_FALLBACK,
    STATE_PROBATION,
    GuardedController,
    WatchdogConfig,
    guard_controller,
)

__all__ = [
    "CHURN_KINDS",
    "DEFAULT_CHURN_SPEC",
    "ChurnEvent",
    "ChurnPlan",
    "GuardConfig",
    "GuardReport",
    "GuardedController",
    "QuarantineConfig",
    "QuarantineManager",
    "STATE_ACTIVE",
    "STATE_FALLBACK",
    "STATE_PROBATION",
    "WatchdogConfig",
    "consume_guard_report",
    "get_active_guard",
    "guard",
    "guard_controller",
    "publish_guard_report",
    "resolve_guard",
]
