"""Ambient guard configuration and the end-of-run guard report.

Mirrors :mod:`repro.faults.context`: experiment runners share the
uniform ``runner(config) -> str`` signature, so the CLI cannot thread
``--guard``/``--quarantine``/``--churn`` through every figure module.
Instead the CLI *activates* a :class:`GuardConfig` here and
:func:`repro.experiments.training.train_federated` picks it up as its
default when no explicit guard arguments are passed. Explicit
arguments win field-by-field; the empty stack resolves to "no
watchdog, no quarantine, static fleet" — existing callers see zero
behaviour change.

The module also carries the *guard report* back out of the uniform
runner signature: the training driver publishes a
:class:`GuardReport` after a guarded run, and the CLI consumes it to
decide whether the run ended fully degraded (every device on its
fallback governor) — which maps to a dedicated exit code, distinct
from the injected-kill code.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union


@dataclass(frozen=True)
class GuardConfig:
    """One activated guard preference bundle.

    ``watchdog`` may be ``True`` (defaults) or a
    :class:`~repro.guard.watchdog.WatchdogConfig`; ``quarantine`` may
    be ``True``, a :class:`~repro.guard.quarantine.QuarantineConfig` or
    a live :class:`~repro.guard.quarantine.QuarantineManager`;
    ``churn`` a :class:`~repro.guard.churn.ChurnPlan` or a spec string
    (resolved against the run's rounds/devices by the training
    driver).
    """

    watchdog: Optional[Union[bool, object]] = None
    quarantine: Optional[Union[bool, object]] = None
    churn: Optional[Union[object, str]] = None


@dataclass(frozen=True)
class GuardReport:
    """Fleet health at the end of one guarded federated run."""

    #: Final watchdog state per guarded device.
    device_states: Dict[str, str] = field(default_factory=dict)
    #: Watchdog trips per device.
    trip_counts: Dict[str, int] = field(default_factory=dict)
    #: Control steps spent on the fallback governor per device.
    fallback_steps: Dict[str, int] = field(default_factory=dict)
    #: Total guarded control steps per device.
    guarded_steps: Dict[str, int] = field(default_factory=dict)
    #: Devices the server quarantined at least once.
    quarantined_devices: Tuple[str, ...] = ()
    #: Total quarantine exclusion events across the run.
    quarantine_events: int = 0

    @property
    def fully_degraded(self) -> bool:
        """True when every guarded device ended on its fallback."""
        states = self.device_states
        return bool(states) and all(
            state != "active" for state in states.values()
        )


class _ThreadLocalStack(threading.local):
    def __init__(self) -> None:
        self.stack: List[GuardConfig] = []
        self.report: Optional[GuardReport] = None


_LOCAL = _ThreadLocalStack()


def get_active_guard() -> Optional[GuardConfig]:
    """The innermost config activated on this thread, or ``None``."""
    stack = _LOCAL.stack
    return stack[-1] if stack else None


def resolve_guard(
    watchdog: Optional[Union[bool, object]] = None,
    quarantine: Optional[Union[bool, object]] = None,
    churn: Optional[Union[object, str]] = None,
) -> GuardConfig:
    """Effective guard settings for a driver call.

    Explicit arguments win field-by-field; otherwise the ambient
    config applies; otherwise everything stays off.
    """
    ambient = get_active_guard()
    if ambient is not None:
        if watchdog is None:
            watchdog = ambient.watchdog
        if quarantine is None:
            quarantine = ambient.quarantine
        if churn is None:
            churn = ambient.churn
    return GuardConfig(watchdog=watchdog, quarantine=quarantine, churn=churn)


@contextmanager
def guard(
    watchdog: Optional[Union[bool, object]] = None,
    quarantine: Optional[Union[bool, object]] = None,
    churn: Optional[Union[object, str]] = None,
) -> Iterator[GuardConfig]:
    """``with guard(watchdog=True): ...`` — balanced push/pop."""
    config = GuardConfig(
        watchdog=watchdog, quarantine=quarantine, churn=churn
    )
    _LOCAL.stack.append(config)
    try:
        yield config
    finally:
        _LOCAL.stack.pop()


def publish_guard_report(report: GuardReport) -> None:
    """Record the latest guarded run's report for this thread."""
    _LOCAL.report = report


def consume_guard_report() -> Optional[GuardReport]:
    """Pop the latest report (``None`` if no guarded run published one)."""
    report = _LOCAL.report
    _LOCAL.report = None
    return report
