"""Server-side anomaly quarantine for incoming federated updates.

Robust aggregators (``repro.federated.aggregators``) blunt a single
round's outliers but have no memory: a device that uploads garbage
every round keeps getting a vote. This module adds the missing
*membership* defence — each incoming update is scored against the
fleet before aggregation, each device carries an EWMA reputation
across rounds, and repeat offenders are excluded outright for a
cooldown. Quarantine composes with (never replaces) the robust
aggregators: it trims the contributor list, then whatever aggregator
the run uses pools the survivors.

Scoring per round (at least ``min_updates`` finite updates required
for the fleet statistics):

* ``delta_i = flatten(update_i) - flatten(global)`` — the update as a
  deviation from the model the device received.
* **Norm z-score** — ``z_i = (|delta_i| - median) / (1.4826 * MAD)``
  over the fleet's delta norms; ``z_i > z_threshold`` flags the update
  *provided* the norm also exceeds ``norm_ratio_floor`` times the
  fleet median (with few contributors the MAD collapses and the
  z-score alone would flag healthy heterogeneous updates). Median/MAD
  keep the screen itself robust to the outliers it is hunting.
* **Cosine-to-consensus** — cosine similarity of ``delta_i`` to the
  coordinate-wise median delta; below ``cosine_threshold`` (i.e.
  pointing away from the fleet's direction) flags the update.
* Non-finite updates are flagged unconditionally.

Reputation: ``rep_i <- (1 - alpha) * rep_i + alpha * flagged_i`` after
every scored round. A device that is flagged while its reputation is
already at or above ``quarantine_threshold`` is banned for
``cooldown_rounds`` rounds; a re-ban needs a *fresh* offence after the
cooldown expires, so healthy devices decay back to good standing. The
whole manager state round-trips through plain dicts and is persisted
inside ``RunSnapshot`` for bit-identical crash recovery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Guards the MAD denominator when the fleet's norms are all identical.
_MAD_EPSILON = 1.0e-12
#: Scales MAD to the standard deviation of a normal distribution.
_MAD_SIGMA = 1.4826


@dataclass(frozen=True)
class QuarantineConfig:
    """Thresholds of the quarantine scorer."""

    #: Robust z-score above which an update's norm is an outlier.
    z_threshold: float = 4.0
    #: A z-flag only sticks when the norm also exceeds this multiple of
    #: the fleet median — with few contributors the MAD collapses and
    #: the z-score alone would flag healthy heterogeneous updates.
    norm_ratio_floor: float = 3.0
    #: Minimum cosine similarity to the consensus delta direction.
    cosine_threshold: float = -0.5
    #: EWMA weight of the newest flag in the reputation update.
    reputation_alpha: float = 0.5
    #: Reputation at/above which a fresh offence triggers a ban.
    quarantine_threshold: float = 0.5
    #: Rounds an offender sits out once banned.
    cooldown_rounds: int = 2
    #: Minimum finite updates before the fleet statistics apply.
    min_updates: int = 3

    def __post_init__(self) -> None:
        if self.z_threshold <= 0.0:
            raise ConfigurationError("z_threshold must be positive")
        if self.norm_ratio_floor < 1.0:
            raise ConfigurationError("norm_ratio_floor must be >= 1")
        if not -1.0 <= self.cosine_threshold <= 1.0:
            raise ConfigurationError("cosine_threshold must be in [-1, 1]")
        if not 0.0 < self.reputation_alpha <= 1.0:
            raise ConfigurationError("reputation_alpha must be in (0, 1]")
        if not 0.0 < self.quarantine_threshold <= 1.0:
            raise ConfigurationError(
                "quarantine_threshold must be in (0, 1]"
            )
        if int(self.cooldown_rounds) < 1:
            raise ConfigurationError("cooldown_rounds must be >= 1")
        if int(self.min_updates) < 2:
            raise ConfigurationError("min_updates must be >= 2")


def _flatten(parameters: Sequence[np.ndarray]) -> np.ndarray:
    return np.concatenate(
        [np.asarray(p, dtype=np.float64).ravel() for p in parameters]
    )


class QuarantineManager:
    """Scores updates, tracks reputations and bans repeat offenders."""

    def __init__(self, config: Optional[QuarantineConfig] = None) -> None:
        self.config = config if config is not None else QuarantineConfig()
        #: EWMA suspicion per device in [0, 1].
        self.reputation: Dict[str, float] = {}
        #: Device -> first round index at which it may contribute again.
        self.banned_until: Dict[str, int] = {}
        #: Lifetime flagged-update count per device.
        self.offenses: Dict[str, int] = {}
        self.rounds_scored = 0
        self.total_exclusions = 0
        #: Devices excluded in the most recent round (banned + flagged).
        self.last_excluded: List[str] = []
        #: Per-device score detail of the most recent round.
        self.last_scores: Dict[str, Dict[str, float]] = {}

    # -- scoring -------------------------------------------------------
    def _score(
        self,
        contributors: Sequence[str],
        parameter_sets: Sequence[List[np.ndarray]],
        reference: Sequence[np.ndarray],
    ) -> Dict[str, bool]:
        """Flag suspicious updates among ``contributors``."""
        base = _flatten(reference)
        deltas: Dict[str, np.ndarray] = {}
        flagged: Dict[str, bool] = {}
        self.last_scores = {}
        for client_id, parameters in zip(contributors, parameter_sets):
            delta = _flatten(parameters) - base
            if not np.all(np.isfinite(delta)):
                flagged[client_id] = True
                self.last_scores[client_id] = {
                    "norm": float("inf"), "z": float("inf"), "cosine": 0.0,
                }
                continue
            deltas[client_id] = delta
            flagged[client_id] = False
        if len(deltas) >= self.config.min_updates:
            ids = list(deltas)
            norms = np.array([np.linalg.norm(deltas[i]) for i in ids])
            median = float(np.median(norms))
            mad = float(np.median(np.abs(norms - median)))
            scale = _MAD_SIGMA * mad + _MAD_EPSILON
            consensus = np.median(
                np.stack([deltas[i] for i in ids]), axis=0
            )
            consensus_norm = float(np.linalg.norm(consensus))
            for index, client_id in enumerate(ids):
                z = float((norms[index] - median) / scale)
                if consensus_norm > 0.0 and norms[index] > 0.0:
                    cosine = float(
                        np.dot(deltas[client_id], consensus)
                        / (norms[index] * consensus_norm)
                    )
                else:
                    cosine = 1.0
                self.last_scores[client_id] = {
                    "norm": float(norms[index]), "z": z, "cosine": cosine,
                }
                outsized = norms[index] > self.config.norm_ratio_floor * max(
                    median, _MAD_EPSILON
                )
                if z > self.config.z_threshold and outsized:
                    flagged[client_id] = True
                elif cosine < self.config.cosine_threshold:
                    flagged[client_id] = True
        else:
            for client_id, delta in deltas.items():
                self.last_scores[client_id] = {
                    "norm": float(np.linalg.norm(delta)), "z": 0.0,
                    "cosine": 1.0,
                }
        return flagged

    def filter_round(
        self,
        round_index: int,
        contributors: Sequence[str],
        parameter_sets: Sequence[List[np.ndarray]],
        reference: Sequence[np.ndarray],
    ) -> Tuple[List[str], List[List[np.ndarray]], List[str]]:
        """Screen one round's updates before aggregation.

        Returns ``(kept_ids, kept_parameter_sets, excluded_ids)``.
        ``reference`` is the current global model (what the devices
        received at broadcast). May keep nobody — the server turns that
        into a skipped round under the tolerant straggler policy.
        """
        config = self.config
        self.rounds_scored += 1
        banned = [
            cid
            for cid in contributors
            if self.banned_until.get(cid, 0) > round_index
        ]
        scored_ids = [cid for cid in contributors if cid not in banned]
        scored_sets = [
            parameters
            for cid, parameters in zip(contributors, parameter_sets)
            if cid not in banned
        ]
        flagged = self._score(scored_ids, scored_sets, reference)
        alpha = config.reputation_alpha
        excluded = list(banned)
        for client_id in scored_ids:
            flag = flagged.get(client_id, False)
            before = self.reputation.get(client_id, 0.0)
            self.reputation[client_id] = (1.0 - alpha) * before + alpha * (
                1.0 if flag else 0.0
            )
            if not flag:
                continue
            self.offenses[client_id] = self.offenses.get(client_id, 0) + 1
            excluded.append(client_id)
            # Repeat offender: suspicion already at the threshold when a
            # fresh offence arrives -> sit out the cooldown.
            if before >= config.quarantine_threshold:
                self.banned_until[client_id] = (
                    round_index + 1 + config.cooldown_rounds
                )
        kept = [cid for cid in contributors if cid not in set(excluded)]
        kept_sets = [
            parameters
            for cid, parameters in zip(contributors, parameter_sets)
            if cid in set(kept)
        ]
        self.total_exclusions += len(excluded)
        self.last_excluded = list(excluded)
        return kept, kept_sets, list(excluded)

    # -- persistence ---------------------------------------------------
    def state(self) -> Dict[str, object]:
        """Plain-dict snapshot for ``RunSnapshot`` persistence."""
        return {
            "reputation": dict(self.reputation),
            "banned_until": dict(self.banned_until),
            "offenses": dict(self.offenses),
            "rounds_scored": self.rounds_scored,
            "total_exclusions": self.total_exclusions,
        }

    def restore_state(self, state: Dict[str, object]) -> None:
        """Restore a snapshot taken by :meth:`state`."""
        if not isinstance(state, dict) or "reputation" not in state:
            raise ConfigurationError(
                f"not a quarantine state snapshot: {type(state).__name__}"
            )
        self.reputation = {
            str(k): float(v) for k, v in state["reputation"].items()
        }
        self.banned_until = {
            str(k): int(v) for k, v in state.get("banned_until", {}).items()
        }
        self.offenses = {
            str(k): int(v) for k, v in state.get("offenses", {}).items()
        }
        self.rounds_scored = int(state.get("rounds_scored", 0))
        self.total_exclusions = int(state.get("total_exclusions", 0))

    def describe(self) -> str:
        """One line for logs: reputations and active bans."""
        reps = ", ".join(
            f"{cid}={rep:.2f}" for cid, rep in sorted(self.reputation.items())
        )
        bans = ", ".join(
            f"{cid}<r{until}" for cid, until in sorted(self.banned_until.items())
        )
        return (
            f"quarantine: {self.total_exclusions} exclusions over "
            f"{self.rounds_scored} rounds; rep[{reps}]; bans[{bans or '-'}]"
        )
