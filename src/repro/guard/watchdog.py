"""Device-side safety governor for the neural DVFS agent.

The paper's contract is the power constraint ``P_crit`` (Section III-B);
its enforcement is only as reliable as the policy network enforcing it.
A poisoned broadcast, a diverging update or a degenerate softmax can all
turn the learned controller into a heater. This module wraps the
:class:`~repro.control.neural.NeuralPowerController` in a watchdog that
checks the agent's health every control step and, on any trip, hands
control to a :class:`~repro.control.governors.PowerCapGovernor` — the
strongest non-learning fallback in the baseline zoo — until the agent
proves itself healthy again.

The wrapper is a state machine::

    ACTIVE --trip--> FALLBACK --cooldown--> PROBATION --N clean--> ACTIVE
       ^                ^                       |
       |                +------dirty shadow-----+
       +---- (normal operation) ----------------+

* **ACTIVE** — the neural agent controls the device. Each step the
  watchdog scans the policy parameters (finiteness, absolute norm,
  growth versus the last known-good snapshot), the predicted Q-values,
  the recent action stream (stuck detection) and the rolling power
  record (sustained ``P > P_crit``).
* **FALLBACK** — the power-cap governor controls the device for at
  least ``fallback_steps`` steps. If the trip was caused by corrupted
  parameters, the last known-good snapshot is restored first. The agent
  keeps learning off-policy from the governor's ``(s, a, r)`` triples,
  so it re-converges *while* the device stays safe.
* **PROBATION** — the governor still acts, but the agent is
  shadow-evaluated on every observed state. ``probation_steps``
  consecutive clean shadow steps re-admit the agent; a single dirty one
  trips straight back to FALLBACK.

The wrapper delegates ``.agent`` / ``.reward`` / ``.normalizer`` to the
inner controller, so every existing integration point — federated
clients, flight records, checkpoint capture, worker-side parameter
installs — works unchanged. It is picklable and therefore survives both
process-backend shipping and ``RunSnapshot`` capture.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.control.base import PowerController
from repro.control.governors import PowerCapGovernor
from repro.errors import ConfigurationError
from repro.sim.processor import ProcessorSnapshot

#: Watchdog states.
STATE_ACTIVE = "active"
STATE_FALLBACK = "fallback"
STATE_PROBATION = "probation"

#: Trip reasons (stable strings for metrics/reports).
TRIP_NON_FINITE_PARAMETERS = "non_finite_parameters"
TRIP_PARAMETER_EXPLOSION = "parameter_explosion"
TRIP_UPDATE_EXPLOSION = "update_explosion"
TRIP_NON_FINITE_Q = "non_finite_q_values"
TRIP_NON_FINITE_LOSS = "non_finite_loss"
TRIP_STUCK_ACTION = "stuck_action"
TRIP_POWER_WINDOW = "power_violation_window"
TRIP_PROBATION_FAILURE = "probation_failure"

#: Trip reasons that imply the parameters themselves are damaged and the
#: last known-good snapshot must be restored before learning continues.
_RESTORE_REASONS = frozenset(
    {
        TRIP_NON_FINITE_PARAMETERS,
        TRIP_PARAMETER_EXPLOSION,
        TRIP_UPDATE_EXPLOSION,
        TRIP_NON_FINITE_Q,
        TRIP_NON_FINITE_LOSS,
    }
)


@dataclass(frozen=True)
class WatchdogConfig:
    """Trip thresholds and probation schedule of the safety watchdog.

    The defaults are deliberately loose: a healthy training run must
    never trip (the guard-off/guard-on equivalence test enforces this),
    while a byzantine-scaled model install or a NaN'd policy trips on
    the very step it would first act.
    """

    #: Absolute L2-norm ceiling on the flattened policy parameters.
    param_norm_limit: float = 1.0e6
    #: Maximum norm growth factor versus the last known-good snapshot.
    norm_ratio_limit: float = 10.0
    #: Identical *exploring* actions in a row that count as stuck.
    stuck_window: int = 64
    #: Length of the rolling power-violation window (control steps).
    violation_window: int = 30
    #: Fraction of the window that must violate ``P_crit`` to trip.
    violation_trip_fraction: float = 0.8
    #: Minimum steps spent in FALLBACK before probation starts.
    fallback_steps: int = 15
    #: Consecutive clean shadow-evaluated steps required to re-admit.
    probation_steps: int = 15
    #: Refresh cadence (clean ACTIVE steps) of the known-good snapshot.
    snapshot_every: int = 25

    def __post_init__(self) -> None:
        for name in (
            "param_norm_limit",
            "norm_ratio_limit",
            "violation_trip_fraction",
        ):
            if getattr(self, name) <= 0.0:
                raise ConfigurationError(f"{name} must be positive")
        for name in (
            "stuck_window",
            "violation_window",
            "fallback_steps",
            "probation_steps",
            "snapshot_every",
        ):
            if int(getattr(self, name)) < 1:
                raise ConfigurationError(f"{name} must be >= 1")
        if self.violation_trip_fraction > 1.0:
            raise ConfigurationError(
                "violation_trip_fraction must be in (0, 1]"
            )


def _flat_norm(parameters: List[np.ndarray]) -> float:
    """L2 norm of a parameter list, ``inf`` if any entry is non-finite."""
    total = 0.0
    for parameter in parameters:
        if not np.all(np.isfinite(parameter)):
            return float("inf")
        total += float(np.sum(np.square(parameter, dtype=np.float64)))
    return float(np.sqrt(total))


class GuardedController(PowerController):
    """A :class:`PowerController` wrapping an agent behind a watchdog.

    ``inner`` must expose ``.agent`` (a
    :class:`~repro.rl.agent.NeuralBanditAgent`), ``.reward`` and
    ``.normalizer`` — i.e. a
    :class:`~repro.control.neural.NeuralPowerController`. ``fallback``
    is any non-learning controller, canonically a
    :class:`~repro.control.governors.PowerCapGovernor` built on the same
    OPP table and power budget.
    """

    name = "guarded-neural"

    def __init__(
        self,
        inner: PowerController,
        fallback: PowerController,
        config: Optional[WatchdogConfig] = None,
        device_name: str = "",
    ) -> None:
        if not hasattr(inner, "agent") or not hasattr(inner, "normalizer"):
            raise ConfigurationError(
                "GuardedController wraps a neural controller exposing "
                f".agent and .normalizer, got {type(inner).__name__}"
            )
        self.inner = inner
        self.fallback = fallback
        self.config = config if config is not None else WatchdogConfig()
        self.device_name = device_name
        self.state = STATE_ACTIVE
        #: True iff the *latest* select_action came from the fallback.
        self.last_action_fallback = False
        self.trip_count = 0
        self.trip_reasons: Dict[str, int] = {}
        self.steps_total = 0
        self.fallback_steps_total = 0
        #: Bounded transition log: (step, from_state, to_state, reason).
        self.transitions: Deque[Tuple[int, str, str, str]] = deque(maxlen=64)
        #: Lifetime transition count (never truncated, unlike the log);
        #: lets a :class:`~repro.control.runtime.ControlSession` drain
        #: only the *new* entries into the telemetry event stream.
        self.transitions_total = 0
        self._fallback_remaining = 0
        self._probation_clean = 0
        self._recent_actions: Deque[int] = deque(maxlen=self.config.stuck_window)
        self._violation_flags: Deque[bool] = deque(
            maxlen=self.config.violation_window
        )
        self._since_snapshot = 0
        self._last_good = [p.copy() for p in self.inner.agent.get_parameters()]
        self._last_good_norm = _flat_norm(self._last_good)

    # -- delegation ----------------------------------------------------
    @property
    def agent(self):
        """The wrapped learning agent (installs land on it directly)."""
        return self.inner.agent

    @property
    def reward(self):
        """The inner reward calculator (Eq. 4 continuity)."""
        return self.inner.reward

    @property
    def normalizer(self):
        return self.inner.normalizer

    @property
    def on_fallback(self) -> bool:
        """Whether the safe governor currently controls the device."""
        return self.state != STATE_ACTIVE

    # -- health checks -------------------------------------------------
    def _power_limit(self) -> Optional[float]:
        return getattr(self.inner.reward, "power_limit_w", None)

    def _parameter_health(self) -> Optional[str]:
        """Check the live policy parameters; a reason string on failure."""
        norm = _flat_norm(self.inner.agent.get_parameters())
        if not np.isfinite(norm):
            return TRIP_NON_FINITE_PARAMETERS
        if norm > self.config.param_norm_limit:
            return TRIP_PARAMETER_EXPLOSION
        if norm > self.config.norm_ratio_limit * max(self._last_good_norm, 1.0):
            return TRIP_UPDATE_EXPLOSION
        return None

    def _q_health(self, snapshot: ProcessorSnapshot) -> Optional[str]:
        state = self.inner.normalizer.vectorize(snapshot)
        values = self.inner.agent.predict_rewards(state)
        if not np.all(np.isfinite(values)):
            return TRIP_NON_FINITE_Q
        return None

    def _shadow_clean(self, snapshot: ProcessorSnapshot) -> bool:
        """Probation shadow evaluation: healthy params and finite Q."""
        return (
            self._parameter_health() is None
            and self._q_health(snapshot) is None
        )

    def _take_snapshot(self) -> None:
        self._last_good = [p.copy() for p in self.inner.agent.get_parameters()]
        self._last_good_norm = _flat_norm(self._last_good)
        self._since_snapshot = 0

    def _transition(self, to_state: str, reason: str) -> None:
        self.transitions.append(
            (self.steps_total, self.state, to_state, reason)
        )
        self.transitions_total += 1
        self.state = to_state

    def _trip(self, reason: str) -> None:
        """Hand control to the fallback, restoring parameters if damaged."""
        self.trip_count += 1
        self.trip_reasons[reason] = self.trip_reasons.get(reason, 0) + 1
        if reason in _RESTORE_REASONS:
            self.inner.agent.set_parameters(
                self._last_good, reset_optimizer=True
            )
        self._transition(STATE_FALLBACK, reason)
        self._fallback_remaining = self.config.fallback_steps
        self._probation_clean = 0
        self._recent_actions.clear()
        self._violation_flags.clear()

    # -- PowerController protocol --------------------------------------
    def select_action(
        self, snapshot: ProcessorSnapshot, explore: bool = True
    ) -> int:
        self.steps_total += 1
        if self.state == STATE_ACTIVE:
            reason = self._parameter_health() or self._q_health(snapshot)
            if reason is not None:
                self._trip(reason)
        if self.state == STATE_ACTIVE:
            action = self.inner.select_action(snapshot, explore)
            if explore and self._recent_actions.maxlen > 1:
                self._recent_actions.append(action)
                if (
                    len(self._recent_actions) == self._recent_actions.maxlen
                    and len(set(self._recent_actions)) == 1
                    and getattr(self.inner.agent, "num_actions", 2) > 1
                ):
                    self._trip(TRIP_STUCK_ACTION)
            if self.state == STATE_ACTIVE:
                self.last_action_fallback = False
                return action
        # FALLBACK or PROBATION: the safe governor acts.
        self.last_action_fallback = True
        self.fallback_steps_total += 1
        action = self.fallback.select_action(snapshot, explore)
        if self.state == STATE_FALLBACK:
            self._fallback_remaining -= 1
            if self._fallback_remaining <= 0:
                self._transition(STATE_PROBATION, "cooldown_elapsed")
                self._probation_clean = 0
        elif self.state == STATE_PROBATION:
            if self._shadow_clean(snapshot):
                self._probation_clean += 1
                if self._probation_clean >= self.config.probation_steps:
                    self._transition(STATE_ACTIVE, "probation_passed")
                    self._take_snapshot()
                    self._recent_actions.clear()
                    self._violation_flags.clear()
            else:
                self._trip(TRIP_PROBATION_FAILURE)
        return action

    def compute_reward(self, snapshot: ProcessorSnapshot) -> float:
        reward = self.inner.compute_reward(snapshot)
        limit = self._power_limit()
        if limit is not None:
            self._violation_flags.append(bool(snapshot.power_w > limit))
            window = self._violation_flags
            if (
                self.state == STATE_ACTIVE
                and len(window) == window.maxlen
                and sum(window)
                >= self.config.violation_trip_fraction * window.maxlen
            ):
                self._trip(TRIP_POWER_WINDOW)
        return reward

    def learn(
        self, snapshot: ProcessorSnapshot, action: int, reward: float
    ) -> None:
        agent = self.inner.agent
        updates_before = getattr(agent, "update_count", 0)
        # Off-policy during fallback: the governor's action still forms a
        # valid (s, a, r) triple for the contextual bandit.
        self.inner.learn(snapshot, action, reward)
        if getattr(agent, "update_count", 0) != updates_before:
            reason = self._parameter_health()
            if reason is None:
                loss = getattr(agent, "last_loss", None)
                if loss is not None and not np.isfinite(loss):
                    reason = TRIP_NON_FINITE_LOSS
            if reason is not None:
                if self.state == STATE_ACTIVE:
                    self._trip(reason)
                elif self.state == STATE_PROBATION:
                    self._trip(TRIP_PROBATION_FAILURE)
        if self.state == STATE_ACTIVE:
            self._since_snapshot += 1
            if (
                self._since_snapshot >= self.config.snapshot_every
                and self._parameter_health() is None
            ):
                self._take_snapshot()

    # -- reporting -----------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """A plain-dict health summary for reports and metrics export."""
        return {
            "device": self.device_name,
            "state": self.state,
            "trips": self.trip_count,
            "trip_reasons": dict(self.trip_reasons),
            "steps": self.steps_total,
            "fallback_steps": self.fallback_steps_total,
        }


def guard_controller(
    inner: PowerController,
    opp_table,
    config: Optional[WatchdogConfig] = None,
    device_name: str = "",
    power_limit_w: Optional[float] = None,
) -> GuardedController:
    """Wrap ``inner`` with a watchdog backed by a power-cap governor.

    The fallback governor inherits the controller's own power budget
    unless ``power_limit_w`` overrides it.
    """
    limit = power_limit_w
    if limit is None:
        limit = getattr(getattr(inner, "reward", None), "power_limit_w", 0.6)
    fallback = PowerCapGovernor(opp_table, power_limit_w=float(limit))
    return GuardedController(
        inner, fallback, config=config, device_name=device_name
    )
