"""Declarative, seeded fleet-membership schedules.

Real edge fleets are not static: devices power down, lose connectivity
for hours, and come back wanting the latest policy. A
:class:`ChurnPlan` is the membership counterpart of
:class:`~repro.faults.plan.FaultPlan` — a fully materialised, seeded
schedule of ``join``/``leave`` events over a ``rounds × devices`` grid
that resolves to an *active roster per round*. The orchestrator
consults the roster before drawing participants:

* a **leaver** simply stops appearing in the participant list from its
  leave round — the protocol is round-synchronous, so its last upload
  was already aggregated and nothing stalls;
* a **rejoiner** (or a late joiner absent from round 0) reappears in
  the roster and bootstraps from the *current* global model at the
  next broadcast, exactly like any other participant;
* a round whose roster is empty is skipped outright (the global model
  carries over), never aborted.

Because the plan is plain data and membership is decided driver-side,
all three execution backends see identical rosters and produce
identical runs. The plan never lets the *scheduled* fleet go empty:
``random`` refuses to draw a leave that would strand zero devices.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError
from repro.utils.rng import generator_from_root

#: Membership event kinds.
CHURN_KINDS = ("leave", "join")

#: Spec used when the CLI passes ``--churn`` without a value.
DEFAULT_CHURN_SPEC = "leave=0.15,rejoin=0.5,seed=11"


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change, applied at the *start* of its round."""

    kind: str
    round_index: int
    device: str

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ConfigurationError(
                f"unknown churn kind {self.kind!r}; known: {', '.join(CHURN_KINDS)}"
            )
        if self.round_index < 0:
            raise ConfigurationError(
                f"churn round_index must be >= 0, got {self.round_index}"
            )
        if not self.device:
            raise ConfigurationError("churn event needs a device")


class ChurnPlan:
    """An immutable, fully materialised membership schedule."""

    def __init__(
        self,
        events: Sequence[ChurnEvent],
        devices: Sequence[str],
        num_rounds: int,
        seed: int = 0,
        initial_absent: Sequence[str] = (),
    ) -> None:
        if num_rounds <= 0:
            raise ConfigurationError(
                f"num_rounds must be positive, got {num_rounds}"
            )
        if not devices:
            raise ConfigurationError("need at least one device to plan churn for")
        self.devices: Tuple[str, ...] = tuple(devices)
        self.num_rounds = int(num_rounds)
        self.seed = int(seed)
        self.initial_absent: Tuple[str, ...] = tuple(initial_absent)
        roster = set(self.devices)
        for name in self.initial_absent:
            if name not in roster:
                raise ConfigurationError(
                    f"initially absent device {name!r} not in the device list"
                )
        self.events: Tuple[ChurnEvent, ...] = tuple(events)
        by_round: Dict[int, List[ChurnEvent]] = {}
        for event in self.events:
            if event.device not in roster:
                raise ConfigurationError(
                    f"churn event device {event.device!r} not in the device list"
                )
            if event.round_index >= self.num_rounds:
                raise ConfigurationError(
                    f"churn event at round {event.round_index} is outside the "
                    f"{self.num_rounds}-round schedule"
                )
            by_round.setdefault(event.round_index, []).append(event)
        # Materialise per-round membership by replaying events in order.
        present = {name: name not in self.initial_absent for name in self.devices}
        self._active: List[Tuple[str, ...]] = []
        for round_index in range(self.num_rounds):
            for event in by_round.get(round_index, ()):
                present[event.device] = event.kind == "join"
            self._active.append(
                tuple(name for name in self.devices if present[name])
            )

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChurnPlan):
            return NotImplemented
        return (
            self.events == other.events
            and self.devices == other.devices
            and self.num_rounds == other.num_rounds
            and self.initial_absent == other.initial_absent
            and self.seed == other.seed
        )

    def active(self, round_index: int) -> Tuple[str, ...]:
        """The roster for ``round_index``, in stable device order."""
        if not 0 <= round_index < self.num_rounds:
            raise ConfigurationError(
                f"round {round_index} outside the {self.num_rounds}-round plan"
            )
        return self._active[round_index]

    def joins(self, round_index: int) -> Tuple[str, ...]:
        """Devices newly present versus the previous round."""
        if round_index <= 0:
            return ()
        previous = set(self._active[round_index - 1])
        return tuple(
            name for name in self.active(round_index) if name not in previous
        )

    def leaves(self, round_index: int) -> Tuple[str, ...]:
        """Devices newly absent versus the previous round."""
        if round_index <= 0:
            return ()
        current = set(self.active(round_index))
        return tuple(
            name for name in self._active[round_index - 1] if name not in current
        )

    @property
    def ever_active(self) -> Tuple[str, ...]:
        """Every device that participates in at least one round."""
        seen = set()
        for roster in self._active:
            seen.update(roster)
        return tuple(name for name in self.devices if name in seen)

    def counts_by_kind(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def describe(self) -> str:
        """E.g. ``join×3 leave×4, 1 late joiner (seed 11)``."""
        parts = [
            f"{kind}×{count}"
            for kind, count in sorted(self.counts_by_kind().items())
        ]
        body = " ".join(parts) if parts else "static fleet"
        if self.initial_absent:
            body += f", {len(self.initial_absent)} late joiner(s)"
        return f"{body} (seed {self.seed})"

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "num_rounds": self.num_rounds,
            "devices": list(self.devices),
            "initial_absent": list(self.initial_absent),
            "events": [asdict(event) for event in self.events],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChurnPlan":
        try:
            events = [ChurnEvent(**entry) for entry in data.get("events", [])]
            return cls(
                events,
                devices=list(data["devices"]),
                num_rounds=int(data["num_rounds"]),
                seed=int(data.get("seed", 0)),
                initial_absent=list(data.get("initial_absent", [])),
            )
        except (TypeError, KeyError) as error:
            raise ConfigurationError(f"malformed churn plan: {error}") from error

    @classmethod
    def from_json(cls, text: str) -> "ChurnPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"invalid churn-plan JSON: {error}") from error
        if not isinstance(data, dict):
            raise ConfigurationError("churn-plan JSON must be an object")
        return cls.from_dict(data)

    def save(self, path: Union[str, pathlib.Path]) -> None:
        pathlib.Path(path).write_text(self.to_json(), encoding="utf-8")

    @classmethod
    def load(cls, path: Union[str, pathlib.Path]) -> "ChurnPlan":
        path = pathlib.Path(path)
        if not path.exists():
            raise ConfigurationError(f"churn-plan file {path} does not exist")
        return cls.from_json(path.read_text(encoding="utf-8"))

    # -- generation ----------------------------------------------------
    @classmethod
    def random(
        cls,
        num_rounds: int,
        devices: Sequence[str],
        seed: int = 0,
        leave_rate: float = 0.0,
        rejoin_rate: float = 0.5,
        late_joiners: int = 0,
    ) -> "ChurnPlan":
        """Seeded rate-based churn over a ``rounds × devices`` grid.

        One uniform draw happens per (round, device) in fixed
        round-major order regardless of the rates, so schedules are
        stable under rate changes the same way fault schedules are. A
        present device leaves with ``leave_rate`` (refused when it
        would empty the fleet); an absent one rejoins with
        ``rejoin_rate``. The last ``late_joiners`` devices start absent
        and are each given a guaranteed join round.
        """
        if num_rounds <= 0:
            raise ConfigurationError(
                f"num_rounds must be positive, got {num_rounds}"
            )
        if not devices:
            raise ConfigurationError("need at least one device to plan churn for")
        for name, rate in (("leave", leave_rate), ("rejoin", rejoin_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} rate must be in [0, 1], got {rate}"
                )
        if not 0 <= late_joiners < len(devices):
            raise ConfigurationError(
                f"late_joiners must be in [0, {len(devices)}), got {late_joiners}"
            )
        devices = list(devices)
        initial_absent = tuple(devices[len(devices) - late_joiners:])
        rng = generator_from_root(seed, 13)
        events: List[ChurnEvent] = []
        join_rounds: Dict[str, int] = {}
        for name in initial_absent:
            join_rounds[name] = int(rng.integers(1, max(2, num_rounds)))
        present = {name: name not in initial_absent for name in devices}
        present_count = sum(present.values())
        for round_index in range(1, num_rounds):
            for name in devices:
                if join_rounds.get(name) == round_index and not present[name]:
                    events.append(ChurnEvent("join", round_index, name))
                    present[name] = True
                    present_count += 1
                    join_rounds.pop(name)
                draw = rng.random()
                if present[name]:
                    if draw < leave_rate and present_count > 1:
                        events.append(ChurnEvent("leave", round_index, name))
                        present[name] = False
                        present_count -= 1
                else:
                    if draw < rejoin_rate:
                        events.append(ChurnEvent("join", round_index, name))
                        present[name] = True
                        present_count += 1
                        join_rounds.pop(name, None)
        return cls(
            events,
            devices=devices,
            num_rounds=num_rounds,
            seed=seed,
            initial_absent=initial_absent,
        )

    @classmethod
    def from_spec(
        cls, spec: str, num_rounds: int, devices: Sequence[str]
    ) -> "ChurnPlan":
        """Build a plan from a CLI spec string or a JSON plan file.

        A spec naming an existing file (or ending in ``.json``) is
        loaded as an explicit event list; its roster and round count
        must match the run. Otherwise it is parsed as comma-separated
        ``key=value`` pairs::

            leave=0.15,rejoin=0.5,late=1,seed=11

        ``leave``/``rejoin`` are per-(round, device) probabilities,
        ``late`` the number of late-joining devices.
        """
        spec = spec.strip()
        path = pathlib.Path(spec)
        if spec.endswith(".json") or path.exists():
            plan = cls.load(path)
            if plan.devices != tuple(devices) or plan.num_rounds != num_rounds:
                raise ConfigurationError(
                    f"churn-plan file {path} was built for "
                    f"{len(plan.devices)} devices × {plan.num_rounds} rounds, "
                    f"the run has {len(tuple(devices))} × {num_rounds}"
                )
            return plan
        kwargs: Dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigurationError(
                    f"churn spec entry {part!r} is not key=value"
                )
            key, _, value = part.partition("=")
            key = key.strip()
            value = value.strip()
            try:
                if key == "leave":
                    kwargs["leave_rate"] = float(value)
                elif key == "rejoin":
                    kwargs["rejoin_rate"] = float(value)
                elif key == "late":
                    kwargs["late_joiners"] = int(value)
                elif key == "seed":
                    kwargs["seed"] = int(value)
                else:
                    raise ConfigurationError(f"unknown churn spec key {key!r}")
            except ValueError as error:
                raise ConfigurationError(
                    f"bad value for churn spec key {key!r}: {error}"
                ) from error
        return cls.random(num_rounds, list(devices), **kwargs)
