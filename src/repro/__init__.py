"""repro — Federated RL for power-efficient DVFS on edge devices.

A from-scratch reproduction of Dietrich et al., "Federated
Reinforcement Learning for Optimizing the Power Efficiency of Edge
Devices" (DATE 2025): neural contextual-bandit DVFS controllers on
simulated Jetson-Nano-class devices, collaboratively trained with
federated averaging, evaluated against local-only training and the
tabular Profit+CollabPolicy state of the art.

Quick start::

    from repro import (
        FederatedPowerControlConfig, scenario_applications, train_federated,
    )

    config = FederatedPowerControlConfig().scaled(rounds=25)
    result = train_federated(scenario_applications(2), config)
    print(result.eval_series("device-A"))

See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
paper-vs-reproduction numbers.
"""

from repro.control import (
    ControlSession,
    NeuralPowerController,
    PowerController,
    ProfitController,
    build_neural_controller,
    build_profit_controller,
)
from repro.errors import (
    ConfigurationError,
    FederationError,
    PolicyError,
    ReproError,
    SimulationError,
)
from repro.experiments import (
    FederatedPowerControlConfig,
    SCENARIOS,
    TrainingResult,
    scenario_applications,
    six_app_split,
    train_collab_profit,
    train_federated,
    train_local_only,
)
from repro.federated import (
    FederatedClient,
    FederatedServer,
    InMemoryTransport,
    federated_average,
    run_federated_training,
)
from repro.obs import (
    MetricsRegistry,
    RoundTracer,
    get_logger,
    setup_logging,
)
from repro.rl import (
    NeuralBanditAgent,
    PowerEfficiencyReward,
    ReplayBuffer,
    TabularBanditAgent,
)
from repro.sim import (
    DeviceEnvironment,
    EdgeDevice,
    JETSON_NANO_OPP_TABLE,
    SimulatedProcessor,
    build_default_device,
    splash2_suite,
)

__version__ = "1.0.0"

__all__ = [
    "ConfigurationError",
    "ControlSession",
    "DeviceEnvironment",
    "EdgeDevice",
    "FederatedClient",
    "FederatedPowerControlConfig",
    "FederatedServer",
    "FederationError",
    "InMemoryTransport",
    "JETSON_NANO_OPP_TABLE",
    "MetricsRegistry",
    "NeuralBanditAgent",
    "NeuralPowerController",
    "PolicyError",
    "PowerController",
    "PowerEfficiencyReward",
    "ProfitController",
    "ReplayBuffer",
    "ReproError",
    "RoundTracer",
    "SCENARIOS",
    "SimulatedProcessor",
    "SimulationError",
    "TabularBanditAgent",
    "TrainingResult",
    "__version__",
    "build_default_device",
    "build_neural_controller",
    "build_profit_controller",
    "federated_average",
    "get_logger",
    "run_federated_training",
    "scenario_applications",
    "setup_logging",
    "six_app_split",
    "splash2_suite",
    "train_collab_profit",
    "train_federated",
    "train_local_only",
]
