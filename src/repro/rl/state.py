"""State-vector construction.

The neural agent's state is ``s = (f, P, ipc, mr, mpki)``
(Section III-A). Raw magnitudes span five orders of magnitude
(frequency in Hz vs. miss rate in [0, 1]), which would cripple a
32-neuron network, so :class:`StateNormalizer` maps each feature to a
comparable O(1) range using fixed physical scales — fixed, because
every federated client must apply the *same* normalisation for
parameter averaging to make sense.
"""

from __future__ import annotations

import numpy as np

from repro.sim.processor import ProcessorSnapshot
from repro.utils.validation import require_positive

#: Number of state features the paper's network consumes.
NUM_STATE_FEATURES = 5


class StateNormalizer:
    """Fixed-scale normaliser mapping a snapshot to the 5-feature state.

    Parameters give the physical scale of each feature; the output is
    the raw value divided by its scale (miss rate is already in
    [0, 1] and passes through).
    """

    def __init__(
        self,
        max_frequency_hz: float,
        power_scale_w: float = 1.0,
        ipc_scale: float = 1.5,
        mpki_scale: float = 30.0,
    ) -> None:
        self.max_frequency_hz = require_positive("max_frequency_hz", max_frequency_hz)
        self.power_scale_w = require_positive("power_scale_w", power_scale_w)
        self.ipc_scale = require_positive("ipc_scale", ipc_scale)
        self.mpki_scale = require_positive("mpki_scale", mpki_scale)

    @property
    def num_features(self) -> int:
        return NUM_STATE_FEATURES

    def vectorize(self, snapshot: ProcessorSnapshot) -> np.ndarray:
        """The normalised state ``(f, P, ipc, mr, mpki)`` as ``float64``."""
        return np.array(
            [
                snapshot.frequency_hz / self.max_frequency_hz,
                snapshot.power_w / self.power_scale_w,
                snapshot.ipc / self.ipc_scale,
                snapshot.miss_rate,
                snapshot.mpki / self.mpki_scale,
            ],
            dtype=np.float64,
        )

    def vectorize_raw(
        self,
        frequency_hz: float,
        power_w: float,
        ipc: float,
        miss_rate: float,
        mpki: float,
    ) -> np.ndarray:
        """Same normalisation from bare values (for tests and tools)."""
        return np.array(
            [
                frequency_hz / self.max_frequency_hz,
                power_w / self.power_scale_w,
                ipc / self.ipc_scale,
                miss_rate,
                mpki / self.mpki_scale,
            ],
            dtype=np.float64,
        )
