"""The paper's neural contextual-bandit DVFS agent (Algorithm 1).

The agent maintains an MLP ``mu(s, a, theta)`` estimating the expected
reward of every V/f level in the observed state (Eq. 1). Acting samples
from the softmax policy over those estimates (Eq. 3) at an
exponentially decaying temperature; learning minimises the Huber
regression loss (Eq. 2) over batches drawn from a replay buffer, with
one optimisation step every ``H`` interactions.

The agent is deliberately unaware of federated learning: the federated
client (:mod:`repro.federated.client`) treats it as a container of
parameters, so the identical agent class serves the local-only
baseline and the federated system.
"""

from __future__ import annotations

from typing import Optional, List, Sequence

import numpy as np

from repro.errors import PolicyError
from repro.nn.losses import HuberLoss
from repro.nn.network import MLP
from repro.nn.optimizers import Adam
from repro.rl.policies import GreedyPolicy, SoftmaxPolicy
from repro.rl.replay import ReplayBuffer
from repro.rl.schedules import ExponentialDecaySchedule
from repro.utils.rng import SeedLike, as_generator, spawn_generator


class NeuralBanditAgent:
    """Reinforcement learning with a policy network (Algorithm 1).

    Defaults reproduce Table I exactly: a single hidden layer of 32
    ReLU neurons, Adam with learning rate 0.005, Huber loss, replay
    capacity 4,000, batch size 128, an optimisation step every 20
    interactions, and a softmax temperature decaying from 0.9 towards
    0.01 at rate 0.0005 per step.
    """

    def __init__(
        self,
        num_actions: int,
        num_features: int = 5,
        hidden_layers: Sequence[int] = (32,),
        learning_rate: float = 0.005,
        batch_size: int = 128,
        update_interval: int = 20,
        replay_capacity: int = 4000,
        temperature_schedule: Optional[ExponentialDecaySchedule] = None,
        loss: Optional[HuberLoss] = None,
        replay: Optional[object] = None,
        seed: SeedLike = None,
    ) -> None:
        if num_actions <= 0:
            raise PolicyError(f"num_actions must be positive, got {num_actions}")
        if num_features <= 0:
            raise PolicyError(f"num_features must be positive, got {num_features}")
        if batch_size <= 0:
            raise PolicyError(f"batch_size must be positive, got {batch_size}")
        if update_interval <= 0:
            raise PolicyError(
                f"update_interval must be positive, got {update_interval}"
            )
        root = as_generator(seed)
        self.num_actions = num_actions
        self.num_features = num_features
        self.batch_size = batch_size
        self.update_interval = update_interval
        self.network = MLP(
            (num_features, *hidden_layers, num_actions), seed=spawn_generator(root, 0)
        )
        self.optimizer = Adam(learning_rate=learning_rate)
        # A custom buffer (e.g. PrioritizedReplayBuffer) may be injected;
        # it must provide add/sample/__len__ like ReplayBuffer.
        self.replay = (
            replay
            if replay is not None
            else ReplayBuffer(replay_capacity, seed=spawn_generator(root, 1))
        )
        self.loss = loss or HuberLoss()
        self.temperature_schedule = temperature_schedule or ExponentialDecaySchedule(
            initial=0.9, rate=0.0005, minimum=0.01
        )
        self._softmax = SoftmaxPolicy(seed=spawn_generator(root, 2))
        self._greedy = GreedyPolicy()
        self._step_count = 0
        self._update_count = 0
        self._last_loss: Optional[float] = None
        self._last_action_greedy: Optional[bool] = None

    @property
    def step_count(self) -> int:
        """Environment interactions observed so far (t in Algorithm 1)."""
        return self._step_count

    @property
    def update_count(self) -> int:
        """Gradient updates applied so far."""
        return self._update_count

    @property
    def temperature(self) -> float:
        """Current softmax temperature tau (decays with step_count)."""
        return self.temperature_schedule.value(self._step_count)

    @property
    def last_loss(self) -> Optional[float]:
        """Training loss of the most recent update, if any."""
        return self._last_loss

    @property
    def last_action_greedy(self) -> Optional[bool]:
        """Whether the latest action matched the greedy argmax.

        ``None`` before any action. The flight recorder reads this to
        label each control step as exploration or exploitation.
        """
        return self._last_action_greedy

    def predict_rewards(self, state: np.ndarray) -> np.ndarray:
        """``mu(s, a, theta)`` for every action (Algorithm 1, line 4)."""
        state = self._check_state(state)
        return self.network.predict(state)

    def act(self, state: np.ndarray) -> int:
        """Sample an action from the softmax policy (lines 4-6)."""
        values = self.predict_rewards(state)
        action = self._softmax.select(values, self.temperature)
        self._last_action_greedy = bool(action == int(np.argmax(values)))
        return action

    def act_greedy(self, state: np.ndarray) -> int:
        """Exploit: the action with the highest predicted reward."""
        self._last_action_greedy = True
        return self._greedy.select(self.predict_rewards(state))

    def action_probabilities(self, state: np.ndarray) -> np.ndarray:
        """The current policy ``pi(a | s)`` (Eq. 3), for analysis."""
        return self._softmax.probabilities(self.predict_rewards(state), self.temperature)

    def observe(self, state: np.ndarray, action: int, reward: float) -> None:
        """Store an interaction and learn on schedule (lines 8-13).

        Advances the step counter (which also decays the temperature,
        line 9) and triggers a gradient update every
        ``update_interval`` steps.
        """
        state = self._check_state(state)
        if not 0 <= action < self.num_actions:
            raise PolicyError(
                f"action {action} outside [0, {self.num_actions - 1}]"
            )
        self.replay.add(state, action, reward)
        self._step_count += 1
        if self._step_count % self.update_interval == 0:
            self.update()

    def update(self) -> float:
        """One gradient step on a replay batch (lines 11-12).

        Only the output corresponding to each sample's taken action
        receives a loss gradient — the network never gets a training
        signal for counterfactual actions.
        """
        if len(self.replay) == 0:
            raise PolicyError("cannot update from an empty replay buffer")
        sample = self.replay.sample(self.batch_size)
        if len(sample) == 4:
            states, actions, rewards, sample_indices = sample
        else:
            states, actions, rewards = sample
            sample_indices = None
        predictions = self.network.forward(states)
        batch_rows = np.arange(actions.shape[0])
        taken = predictions[batch_rows, actions]
        # One residual pass yields both the training signal and the
        # reported loss — no second Huber forward over the batch.
        if hasattr(self.loss, "value_and_gradient"):
            loss_value, residual_grad = self.loss.value_and_gradient(taken, rewards)
        else:  # injected custom losses only need value/gradient
            residual_grad = self.loss.gradient(taken, rewards)
            loss_value = self.loss.value(taken, rewards)

        grad_output = np.zeros_like(predictions)
        grad_output[batch_rows, actions] = residual_grad
        self.network.zero_gradients()
        self.network.backward(grad_output)
        self.optimizer.step(self.network.parameters, self.network.gradients)

        if sample_indices is not None and hasattr(self.replay, "update_priorities"):
            self.replay.update_priorities(sample_indices, np.abs(taken - rewards))

        self._update_count += 1
        self._last_loss = loss_value
        return self._last_loss

    def get_parameters(self) -> List[np.ndarray]:
        """Deep copies of the policy-network parameters (theta)."""
        return self.network.get_parameters()

    def set_parameters(
        self, parameters: Sequence[np.ndarray], reset_optimizer: bool = True
    ) -> None:
        """Replace theta, e.g. with a freshly broadcast global model.

        The optimiser's moment estimates describe the *previous*
        parameter trajectory, so they are reset by default whenever a
        foreign model is installed.
        """
        self.network.set_parameters(parameters)
        if reset_optimizer:
            self.optimizer.reset()

    def restore_progress(self, step_count: int) -> None:
        """Reset the interaction counter, e.g. from a checkpoint.

        The counter drives the temperature schedule, so restoring it
        resumes exploration where the saved agent left off.
        """
        if step_count < 0:
            raise PolicyError(f"step_count must be >= 0, got {step_count}")
        self._step_count = step_count

    def _check_state(self, state: np.ndarray) -> np.ndarray:
        state = np.asarray(state, dtype=np.float64)
        if state.shape != (self.num_features,):
            raise PolicyError(
                f"state must have shape ({self.num_features},), got {state.shape}"
            )
        return state
