"""Table-based contextual bandit (the learner inside *Profit* [6]).

Maintains one row of action-value estimates per discretised state,
updated with a constant learning rate (0.1, "a typical value for
table-based approaches", Section IV-B), and explores epsilon-greedily
with exponential decay to a minimum of 0.01.

Beyond plain Q-values, the agent tracks per-state visit counts and
reward sums because the *CollabPolicy* aggregation scheme [11]
exchanges ``(best action, average reward, visit count)`` tuples per
state (see :mod:`repro.federated.collab`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from repro.errors import PolicyError
from repro.rl.policies import EpsilonGreedyPolicy, GreedyPolicy
from repro.rl.schedules import ExponentialDecaySchedule
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class StateStatistics:
    """The per-state tuple CollabPolicy shares: (pi*, r_bar, n)."""

    best_action: int
    average_reward: float
    visit_count: int


class TabularBanditAgent:
    """Epsilon-greedy value-table learner over discretised states."""

    def __init__(
        self,
        num_actions: int,
        learning_rate: float = 0.1,
        epsilon_schedule: Optional[ExponentialDecaySchedule] = None,
        initial_value: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        if num_actions <= 0:
            raise PolicyError(f"num_actions must be positive, got {num_actions}")
        if not 0.0 < learning_rate <= 1.0:
            raise PolicyError(
                f"learning_rate must be in (0, 1], got {learning_rate}"
            )
        self.num_actions = num_actions
        self.learning_rate = learning_rate
        self.initial_value = initial_value
        self.epsilon_schedule = epsilon_schedule or ExponentialDecaySchedule(
            initial=1.0, rate=0.0005, minimum=0.01
        )
        rng = as_generator(seed)
        self._epsilon_greedy = EpsilonGreedyPolicy(seed=rng)
        self._greedy = GreedyPolicy()
        self._table: Dict[Hashable, np.ndarray] = {}
        self._visits: Dict[Hashable, np.ndarray] = {}
        self._reward_sum: Dict[Hashable, float] = {}
        self._step_count = 0
        self._last_action_greedy: Optional[bool] = None

    @property
    def step_count(self) -> int:
        return self._step_count

    @property
    def epsilon(self) -> float:
        """Current exploration rate."""
        return self.epsilon_schedule.value(self._step_count)

    @property
    def num_known_states(self) -> int:
        """States with at least one table row allocated."""
        return len(self._table)

    def values(self, state_key: Hashable) -> np.ndarray:
        """Action-value row for a state (allocated on first touch)."""
        if state_key not in self._table:
            self._table[state_key] = np.full(
                self.num_actions, self.initial_value, dtype=np.float64
            )
            self._visits[state_key] = np.zeros(self.num_actions, dtype=np.int64)
            self._reward_sum[state_key] = 0.0
        return self._table[state_key]

    @property
    def last_action_greedy(self) -> Optional[bool]:
        """Whether the latest action matched the table argmax.

        ``None`` before any action; read by the flight recorder to tag
        steps as exploration vs exploitation.
        """
        return self._last_action_greedy

    def act(self, state_key: Hashable) -> int:
        """Epsilon-greedy action at the current (decaying) epsilon."""
        row = self.values(state_key)
        action = self._epsilon_greedy.select(row, self.epsilon)
        self._last_action_greedy = bool(action == int(np.argmax(row)))
        return action

    def act_greedy(self, state_key: Hashable) -> int:
        """Exploit the current value estimates."""
        self._last_action_greedy = True
        return self._greedy.select(self.values(state_key))

    def observe(self, state_key: Hashable, action: int, reward: float) -> None:
        """Running-mean style update ``Q += lr * (r - Q)``."""
        if not 0 <= action < self.num_actions:
            raise PolicyError(f"action {action} outside [0, {self.num_actions - 1}]")
        row = self.values(state_key)
        row[action] += self.learning_rate * (reward - row[action])
        self._visits[state_key][action] += 1
        self._reward_sum[state_key] += reward
        self._step_count += 1

    def state_statistics(self, state_key: Hashable) -> Optional[StateStatistics]:
        """The CollabPolicy tuple for one state, or None if unvisited."""
        if state_key not in self._table:
            return None
        visits = int(self._visits[state_key].sum())
        if visits == 0:
            return None
        return StateStatistics(
            best_action=int(np.argmax(self._table[state_key])),
            average_reward=self._reward_sum[state_key] / visits,
            visit_count=visits,
        )

    def visited_states(self) -> Tuple[Hashable, ...]:
        """Keys of every state with at least one observation."""
        return tuple(
            key for key, visits in self._visits.items() if visits.sum() > 0
        )

    def table_num_entries(self) -> int:
        """Allocated Q-entries (rows x actions), for overhead analysis."""
        return len(self._table) * self.num_actions
