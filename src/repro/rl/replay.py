"""Experience replay buffer.

Stores the ``C`` most recent ``(state, action, reward)`` tuples (Lin,
1992; Table I: capacity 4,000) in a ring. Contextual bandits need no
next-state, so a transition is exactly the triple of Algorithm 1,
line 8. The buffer also knows its wire-format storage footprint, which
reproduces the paper's "replay buffer requires an additional 100 kB"
overhead figure (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, PolicyError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Transition:
    """One interaction: state vector, chosen action, observed reward."""

    state: np.ndarray
    action: int
    reward: float


class ReplayBuffer:
    """Fixed-capacity FIFO ring of transitions with uniform sampling.

    Storage is columnar — one preallocated ``(capacity, features)``
    state matrix plus action/reward vectors — so sampling a batch is
    three fancy-indexing gathers instead of a Python-level loop over
    transition objects. Sampling draws are bit-identical to the
    object-per-transition implementation (the RNG consumption is
    unchanged), which keeps seeded runs reproducible across versions.
    """

    def __init__(self, capacity: int, seed: SeedLike = None) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rng = as_generator(seed)
        self._states: np.ndarray = np.empty((0, 0), dtype=np.float64)
        self._actions: np.ndarray = np.empty(capacity, dtype=np.int64)
        self._rewards: np.ndarray = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._next_slot = 0

    def __len__(self) -> int:
        return self._size

    def add(self, state: np.ndarray, action: int, reward: float) -> None:
        """Append a transition, evicting the oldest once at capacity."""
        state = np.asarray(state, dtype=np.float64)
        if state.ndim != 1:
            raise PolicyError(f"state must be 1-D, got shape {state.shape}")
        if self._states.shape[1] == 0:
            self._states = np.empty(
                (self.capacity, state.shape[0]), dtype=np.float64
            )
        elif state.shape[0] != self._states.shape[1]:
            raise PolicyError(
                f"state has {state.shape[0]} features but the buffer stores "
                f"{self._states.shape[1]}"
            )
        if self._size < self.capacity:
            slot = self._size
            self._size += 1
        else:
            slot = self._next_slot
            self._next_slot = (self._next_slot + 1) % self.capacity
        self._states[slot, :] = state
        self._actions[slot] = int(action)
        self._rewards[slot] = float(reward)

    def sample(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Uniform batch as ``(states, actions, rewards)`` arrays.

        When fewer than ``batch_size`` transitions are stored, samples
        with replacement from what is available (early training rounds
        must still produce full batches, per Algorithm 1 line 11).
        """
        if batch_size <= 0:
            raise PolicyError(f"batch_size must be positive, got {batch_size}")
        if self._size == 0:
            raise PolicyError("cannot sample from an empty replay buffer")
        replace = self._size < batch_size
        indices = self._rng.choice(self._size, size=batch_size, replace=replace)
        return (
            self._states[indices],
            self._actions[indices],
            self._rewards[indices],
        )

    def transitions(self) -> List[Transition]:
        """The stored transitions as objects (oldest slot order).

        A compatibility/introspection view; the hot paths never build
        these.
        """
        return [
            Transition(
                self._states[i].copy(),
                int(self._actions[i]),
                float(self._rewards[i]),
            )
            for i in range(self._size)
        ]

    def storage_bytes(self, state_features: int = 5) -> int:
        """Wire-format bytes for a full buffer.

        An embedded implementation stores each sample as ``float32``
        state features, one action byte and a ``float32`` reward:
        ``capacity * (4 * features + 1 + 4)`` — 100 kB for the paper's
        capacity of 4,000 with 5 features.
        """
        if state_features <= 0:
            raise ConfigurationError(
                f"state_features must be positive, got {state_features}"
            )
        return self.capacity * (4 * state_features + 1 + 4)

    def clear(self) -> None:
        """Drop all stored transitions."""
        self._size = 0
        self._next_slot = 0
