"""Experience replay buffer.

Stores the ``C`` most recent ``(state, action, reward)`` tuples (Lin,
1992; Table I: capacity 4,000) in a ring. Contextual bandits need no
next-state, so a transition is exactly the triple of Algorithm 1,
line 8. The buffer also knows its wire-format storage footprint, which
reproduces the paper's "replay buffer requires an additional 100 kB"
overhead figure (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, PolicyError
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class Transition:
    """One interaction: state vector, chosen action, observed reward."""

    state: np.ndarray
    action: int
    reward: float


class ReplayBuffer:
    """Fixed-capacity FIFO ring of transitions with uniform sampling.

    Storage is columnar — one preallocated ``(capacity, features)``
    state matrix plus action/reward vectors — so sampling a batch is
    three fancy-indexing gathers instead of a Python-level loop over
    transition objects. Sampling draws are bit-identical to the
    object-per-transition implementation (the RNG consumption is
    unchanged), which keeps seeded runs reproducible across versions.
    """

    def __init__(self, capacity: int, seed: SeedLike = None) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._rng = as_generator(seed)
        self._states: np.ndarray = np.empty((0, 0), dtype=np.float64)
        self._actions: np.ndarray = np.empty(capacity, dtype=np.int64)
        self._rewards: np.ndarray = np.empty(capacity, dtype=np.float64)
        self._size = 0
        self._next_slot = 0

    def __len__(self) -> int:
        return self._size

    def add(self, state: np.ndarray, action: int, reward: float) -> None:
        """Append a transition, evicting the oldest once at capacity."""
        state = np.asarray(state, dtype=np.float64)
        if state.ndim != 1:
            raise PolicyError(f"state must be 1-D, got shape {state.shape}")
        if self._states.shape[1] == 0:
            self._states = np.empty(
                (self.capacity, state.shape[0]), dtype=np.float64
            )
        elif state.shape[0] != self._states.shape[1]:
            raise PolicyError(
                f"state has {state.shape[0]} features but the buffer stores "
                f"{self._states.shape[1]}"
            )
        if self._size < self.capacity:
            slot = self._size
            self._size += 1
        else:
            slot = self._next_slot
            self._next_slot = (self._next_slot + 1) % self.capacity
        self._states[slot, :] = state
        self._actions[slot] = int(action)
        self._rewards[slot] = float(reward)

    def sample(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Uniform batch as ``(states, actions, rewards)`` arrays.

        When fewer than ``batch_size`` transitions are stored, samples
        with replacement from what is available (early training rounds
        must still produce full batches, per Algorithm 1 line 11).
        """
        if batch_size <= 0:
            raise PolicyError(f"batch_size must be positive, got {batch_size}")
        if self._size == 0:
            raise PolicyError("cannot sample from an empty replay buffer")
        replace = self._size < batch_size
        indices = self._rng.choice(self._size, size=batch_size, replace=replace)
        return (
            self._states[indices],
            self._actions[indices],
            self._rewards[indices],
        )

    def transitions(self) -> List[Transition]:
        """The stored transitions as objects (oldest slot order).

        A compatibility/introspection view; the hot paths never build
        these.
        """
        return [
            Transition(
                self._states[i].copy(),
                int(self._actions[i]),
                float(self._rewards[i]),
            )
            for i in range(self._size)
        ]

    def storage_bytes(self, state_features: int = 5) -> int:
        """Wire-format bytes for a full buffer.

        An embedded implementation stores each sample as ``float32``
        state features, one action byte and a ``float32`` reward:
        ``capacity * (4 * features + 1 + 4)`` — 100 kB for the paper's
        capacity of 4,000 with 5 features.
        """
        if state_features <= 0:
            raise ConfigurationError(
                f"state_features must be positive, got {state_features}"
            )
        return self.capacity * (4 * state_features + 1 + 4)

    def clear(self) -> None:
        """Drop all stored transitions."""
        self._size = 0
        self._next_slot = 0


class StackedReplayStore:
    """Columnar replay storage for a whole fleet: ``(D, capacity, F)``.

    The batched execution backend keeps every eligible device's replay
    contents in one array stack so a control step appends all devices'
    transitions with a handful of fancy-index writes, and an update
    step gathers every device's sample batch in one indexing call per
    column. Ring semantics per row are identical to
    :class:`ReplayBuffer` — fill slots ``0..capacity-1`` first, then
    evict round-robin from ``next_slot`` — and sampling *indices* are
    drawn from each device's own buffer RNG with the exact argument
    pattern ``ReplayBuffer.sample`` uses, so a batched run consumes
    every RNG stream bit-identically to serial.

    Devices whose buffers are not plain :class:`ReplayBuffer` (e.g.
    prioritized replay) never enter a stack; the backend falls back to
    per-device sampling for them.
    """

    def __init__(self, num_devices: int, capacity: int, features: int) -> None:
        if num_devices <= 0:
            raise ConfigurationError(
                f"num_devices must be positive, got {num_devices}"
            )
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if features <= 0:
            raise ConfigurationError(f"features must be positive, got {features}")
        self.num_devices = int(num_devices)
        self.capacity = int(capacity)
        self.features = int(features)
        self.states = np.zeros(
            (num_devices, capacity, features), dtype=np.float64
        )
        self.actions = np.zeros((num_devices, capacity), dtype=np.int64)
        self.rewards = np.zeros((num_devices, capacity), dtype=np.float64)
        self.sizes = np.zeros(num_devices, dtype=np.int64)
        self.next_slots = np.zeros(num_devices, dtype=np.int64)
        # Reused gather outputs for sample_rows (multi-megabyte at
        # fleet scale; fresh allocations per update cost more than the
        # gathers themselves).
        self._scratch: dict = {}

    def _buf(self, key: str, shape, dtype) -> np.ndarray:
        buffer = self._scratch.get(key)
        if buffer is None or buffer.shape != shape or buffer.dtype != dtype:
            buffer = np.empty(shape, dtype=dtype)
            self._scratch[key] = buffer
        return buffer

    # -- row <-> per-device buffer transfer ----------------------------
    def adopt_row(self, row: int, buffer: ReplayBuffer) -> None:
        """Copy one device buffer's live contents into stack row ``row``."""
        if buffer.capacity != self.capacity:
            raise ConfigurationError(
                f"buffer capacity {buffer.capacity} != stack capacity "
                f"{self.capacity}"
            )
        size = buffer._size
        if size > 0:
            if buffer._states.shape[1] != self.features:
                raise ConfigurationError(
                    f"buffer stores {buffer._states.shape[1]} features, "
                    f"stack expects {self.features}"
                )
            self.states[row, :size] = buffer._states[:size]
            self.actions[row, :size] = buffer._actions[:size]
            self.rewards[row, :size] = buffer._rewards[:size]
        self.sizes[row] = size
        self.next_slots[row] = buffer._next_slot

    def export_row(self, row: int, buffer: ReplayBuffer) -> None:
        """Write stack row ``row`` back into a per-device buffer."""
        size = int(self.sizes[row])
        if size > 0 and buffer._states.shape[1] == 0:
            # Mirror the buffer's lazy state-matrix allocation.
            buffer._states = np.empty(
                (buffer.capacity, self.features), dtype=np.float64
            )
        if size > 0:
            buffer._states[:size] = self.states[row, :size]
            buffer._actions[:size] = self.actions[row, :size]
            buffer._rewards[:size] = self.rewards[row, :size]
        buffer._size = size
        buffer._next_slot = int(self.next_slots[row])

    # -- stacked operations --------------------------------------------
    def append_rows(
        self,
        rows: np.ndarray,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
    ) -> None:
        """Append one transition per device in ``rows`` (vectorised).

        Equivalent to calling ``ReplayBuffer.add`` once per device:
        rows still filling write to slot ``size``; full rows overwrite
        slot ``next_slot`` and advance it modulo capacity.
        """
        sizes = self.sizes[rows]
        at_capacity = sizes >= self.capacity
        slots = np.where(at_capacity, self.next_slots[rows], sizes)
        self.states[rows, slots] = states
        self.actions[rows, slots] = actions
        self.rewards[rows, slots] = rewards
        self.sizes[rows] = np.where(at_capacity, sizes, sizes + 1)
        self.next_slots[rows] = np.where(
            at_capacity,
            (self.next_slots[rows] + 1) % self.capacity,
            self.next_slots[rows],
        )

    def sample_rows(
        self, rows: Sequence[int], rngs: Sequence[np.random.Generator],
        batch_size: int,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample a batch per device; gather all batches in one pass.

        ``rngs[i]`` must be device ``rows[i]``'s *own* buffer RNG — the
        index draw per device is exactly ``ReplayBuffer.sample``'s
        (``choice`` with replacement only while under-filled), so the
        stream advances as serial would. Returns stacked
        ``(states, actions, rewards)`` of shapes ``(E, B, F)``,
        ``(E, B)``, ``(E, B)``.
        """
        if batch_size <= 0:
            raise PolicyError(f"batch_size must be positive, got {batch_size}")
        index_matrix = np.empty((len(rows), batch_size), dtype=np.int64)
        for position, (row, rng) in enumerate(zip(rows, rngs)):
            size = int(self.sizes[row])
            if size == 0:
                raise PolicyError("cannot sample from an empty replay buffer")
            replace = size < batch_size
            index_matrix[position] = rng.choice(
                size, size=batch_size, replace=replace
            )
        # One flat take per column beats a broadcasting double fancy
        # index ~2.6x; the gathered values are identical either way.
        offsets = np.asarray(rows, dtype=np.int64)[:, None] * self.capacity
        flat_index = (offsets + index_matrix).ravel()
        shape = (len(rows), batch_size)
        flat = len(flat_index)
        states = np.take(
            self.states.reshape(-1, self.features),
            flat_index,
            axis=0,
            out=self._buf("states", (flat, self.features), np.float64),
        )
        actions = np.take(
            self.actions.ravel(),
            flat_index,
            out=self._buf("actions", (flat,), np.int64),
        )
        rewards = np.take(
            self.rewards.ravel(),
            flat_index,
            out=self._buf("rewards", (flat,), np.float64),
        )
        return (
            states.reshape(*shape, self.features),
            actions.reshape(shape),
            rewards.reshape(shape),
        )
