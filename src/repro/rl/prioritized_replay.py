"""Prioritised experience replay (extension).

The related work (zTT [5], discussed in Section II) prioritises samples
with extreme rewards to track environment changes faster. This buffer
implements the standard proportional scheme (Schaul et al., 2016)
adapted to the contextual-bandit setting: each transition's priority is
its last absolute prediction error, and sampling probability is
``priority^alpha`` (normalised). New samples enter at the current
maximum priority so they are revisited at least once.

The agent integrates it transparently: when its buffer's ``sample``
also returns indices, the agent feeds the fresh |prediction − reward|
errors back via :meth:`PrioritizedReplayBuffer.update_priorities`.
The ``ablation_replay`` experiment measures what prioritisation buys on
the paper's workload.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import ConfigurationError, PolicyError
from repro.rl.replay import Transition
from repro.utils.rng import SeedLike, as_generator


class PrioritizedReplayBuffer:
    """Ring buffer with proportional prioritised sampling."""

    def __init__(
        self,
        capacity: int,
        alpha: float = 0.6,
        min_priority: float = 0.01,
        seed: SeedLike = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError(f"capacity must be positive, got {capacity}")
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0, 1], got {alpha}")
        if min_priority <= 0.0:
            raise ConfigurationError(
                f"min_priority must be positive, got {min_priority}"
            )
        self.capacity = capacity
        self.alpha = alpha
        self.min_priority = min_priority
        self._rng = as_generator(seed)
        self._storage: List[Transition] = []
        self._priorities: List[float] = []
        self._next_slot = 0

    def __len__(self) -> int:
        return len(self._storage)

    def add(self, state: np.ndarray, action: int, reward: float) -> None:
        """Append a transition at the current maximum priority."""
        state = np.asarray(state, dtype=np.float64)
        if state.ndim != 1:
            raise PolicyError(f"state must be 1-D, got shape {state.shape}")
        transition = Transition(state.copy(), int(action), float(reward))
        priority = max(self._priorities) if self._priorities else 1.0
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
            self._priorities.append(priority)
        else:
            self._storage[self._next_slot] = transition
            self._priorities[self._next_slot] = priority
            self._next_slot = (self._next_slot + 1) % self.capacity

    def sample(
        self, batch_size: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Priority-proportional batch; also returns storage indices.

        The extra indices element is the contract the agent uses to
        detect a prioritised buffer and to route errors back.
        """
        if batch_size <= 0:
            raise PolicyError(f"batch_size must be positive, got {batch_size}")
        if not self._storage:
            raise PolicyError("cannot sample from an empty replay buffer")
        scaled = np.asarray(self._priorities, dtype=np.float64) ** self.alpha
        probabilities = scaled / scaled.sum()
        replace = len(self._storage) < batch_size
        indices = self._rng.choice(
            len(self._storage), size=batch_size, replace=replace, p=probabilities
        )
        states = np.stack([self._storage[i].state for i in indices])
        actions = np.array([self._storage[i].action for i in indices], dtype=np.int64)
        rewards = np.array(
            [self._storage[i].reward for i in indices], dtype=np.float64
        )
        return states, actions, rewards, indices

    def update_priorities(
        self, indices: np.ndarray, errors: np.ndarray
    ) -> None:
        """Set sampled transitions' priorities to their fresh errors."""
        indices = np.asarray(indices, dtype=np.int64)
        errors = np.asarray(errors, dtype=np.float64)
        if indices.shape != errors.shape:
            raise PolicyError(
                f"indices shape {indices.shape} != errors shape {errors.shape}"
            )
        for index, error in zip(indices, errors):
            if not 0 <= index < len(self._storage):
                raise PolicyError(f"index {index} out of range")
            self._priorities[index] = max(abs(float(error)), self.min_priority)

    def max_priority(self) -> float:
        """The current highest priority (new samples enter here)."""
        return max(self._priorities) if self._priorities else 1.0

    def clear(self) -> None:
        self._storage.clear()
        self._priorities.clear()
        self._next_slot = 0

    def storage_bytes(self, state_features: int = 5) -> int:
        """Wire-format footprint; priorities add 4 bytes per sample."""
        if state_features <= 0:
            raise ConfigurationError(
                f"state_features must be positive, got {state_features}"
            )
        return self.capacity * (4 * state_features + 1 + 4 + 4)
