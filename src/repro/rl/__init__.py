"""Reinforcement-learning primitives and agents.

The paper frames DVFS control as a *contextual bandit* (footnote 2):
the effect of a frequency choice is fully visible in the next
observation, so the agent learns the immediate expected reward
``mu(s, a, theta)`` per action rather than a long-horizon value. Two
agents implement that idea:

* :class:`repro.rl.agent.NeuralBanditAgent` — the paper's contribution:
  an MLP reward model trained with Adam/Huber from a replay buffer,
  acting through a softmax policy with exponentially decaying
  temperature (Algorithm 1).
* :class:`repro.rl.tabular_agent.TabularBanditAgent` — the table-based
  learner underlying the *Profit* baseline (epsilon-greedy, per-state
  running updates) operating on discretised states.
"""

from repro.rl.agent import NeuralBanditAgent
from repro.rl.discretize import EdgesDiscretizer, StateDiscretizer, UniformDiscretizer
from repro.rl.policies import EpsilonGreedyPolicy, GreedyPolicy, SoftmaxPolicy
from repro.rl.replay import ReplayBuffer, Transition
from repro.rl.rewards import PowerEfficiencyReward, ProfitReward
from repro.rl.schedules import (
    ConstantSchedule,
    ExponentialDecaySchedule,
    LinearDecaySchedule,
)
from repro.rl.state import NUM_STATE_FEATURES, StateNormalizer
from repro.rl.tabular_agent import StateStatistics, TabularBanditAgent

__all__ = [
    "ConstantSchedule",
    "EdgesDiscretizer",
    "EpsilonGreedyPolicy",
    "ExponentialDecaySchedule",
    "GreedyPolicy",
    "LinearDecaySchedule",
    "NUM_STATE_FEATURES",
    "NeuralBanditAgent",
    "PowerEfficiencyReward",
    "ProfitReward",
    "ReplayBuffer",
    "SoftmaxPolicy",
    "StateDiscretizer",
    "StateNormalizer",
    "StateStatistics",
    "TabularBanditAgent",
    "Transition",
    "UniformDiscretizer",
]
