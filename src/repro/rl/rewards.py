"""Reward functions.

:class:`PowerEfficiencyReward` is the paper's Eq. (4): below the power
constraint the reward is the normalised frequency (a performance
surrogate); above it the reward decays linearly over two ``k_offset``
bands down to a floor of -1 — a "soft" constraint that prefers running
just under the budget to a hard penalty cliff.

:class:`ProfitReward` is the signal of the *Profit* baseline [6]:
normalised IPS below the constraint, and ``-5 * |P_crit - P|``
otherwise.
"""

from __future__ import annotations

from repro.utils.validation import require_positive


class PowerEfficiencyReward:
    """Piecewise reward of Eq. (4).

    ``r = f/f_max`` while ``P <= P_crit``; between ``P_crit`` and
    ``P_crit + k_offset`` the performance term is scaled down linearly
    to zero; between ``P_crit + k_offset`` and ``P_crit + 2 k_offset``
    the reward goes linearly negative; beyond that it is -1.
    """

    def __init__(
        self,
        max_frequency_hz: float,
        power_limit_w: float = 0.6,
        offset_w: float = 0.05,
    ) -> None:
        self.max_frequency_hz = require_positive("max_frequency_hz", max_frequency_hz)
        self.power_limit_w = require_positive("power_limit_w", power_limit_w)
        self.offset_w = require_positive("offset_w", offset_w)

    def __call__(self, frequency_hz: float, power_w: float) -> float:
        """Reward for running at ``frequency_hz`` while drawing ``power_w``.

        The arguments are the *next* interval's frequency and power
        (``f_{t+1}``, ``P_{t+1}`` in Eq. 4): the consequence of the
        action just taken.
        """
        performance = frequency_hz / self.max_frequency_hz
        p_crit = self.power_limit_w
        k = self.offset_w
        if power_w <= p_crit:
            return performance
        if power_w <= p_crit + k:
            return performance * (p_crit + k - power_w) / k
        if power_w <= p_crit + 2.0 * k:
            return (p_crit + k - power_w) / k
        return -1.0

    @property
    def minimum(self) -> float:
        """The reward floor (-1, reached at ``P_crit + 2 k_offset``)."""
        return -1.0

    @property
    def maximum(self) -> float:
        """The best possible reward (1, running at ``f_max`` within budget)."""
        return 1.0


class ProfitReward:
    """Reward signal of the Profit baseline (Section IV-B).

    ``r = IPS / ips_scale`` when ``P <= P_crit``, else
    ``-penalty_coefficient * |P_crit - P|``. The IPS scale keeps the
    positive branch in a magnitude comparable to the penalty branch;
    the paper reports IPS in units of 10^6-10^9, and the value-table
    updates are scale-sensitive, so the scale is explicit here.
    """

    def __init__(
        self,
        power_limit_w: float = 0.6,
        penalty_coefficient: float = 5.0,
        ips_scale: float = 1.0e9,
    ) -> None:
        self.power_limit_w = require_positive("power_limit_w", power_limit_w)
        self.penalty_coefficient = require_positive(
            "penalty_coefficient", penalty_coefficient
        )
        self.ips_scale = require_positive("ips_scale", ips_scale)

    def __call__(self, ips: float, power_w: float) -> float:
        """Reward for achieving ``ips`` while drawing ``power_w``."""
        if power_w <= self.power_limit_w:
            return ips / self.ips_scale
        return -self.penalty_coefficient * abs(self.power_limit_w - power_w)
