"""Action-selection policies.

Policies are stateless strategies turning per-action value estimates
into a choice; the exploration parameter (temperature or epsilon) is
passed per call so the owning agent can anneal it with a schedule.
"""

from __future__ import annotations

import numpy as np

from repro.errors import PolicyError
from repro.utils.math import softmax
from repro.utils.rng import SeedLike, as_generator


class SoftmaxPolicy:
    """Boltzmann exploration over reward estimates (Eq. 3).

    At high temperature the distribution is near uniform (exploration);
    as the temperature decays it concentrates on the estimated-best
    V/f level (exploitation).
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = as_generator(seed)

    def probabilities(self, values: np.ndarray, temperature: float) -> np.ndarray:
        """The action distribution ``pi(a | values, temperature)``."""
        values = _as_values(values)
        return softmax(values, temperature)

    def select(self, values: np.ndarray, temperature: float) -> int:
        """Sample one action from the softmax distribution."""
        probs = self.probabilities(values, temperature)
        return int(self._rng.choice(len(probs), p=probs))


class EpsilonGreedyPolicy:
    """Uniform-random exploration with probability epsilon, else argmax.

    The exploration strategy of the Profit baseline (Section IV-B).
    """

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = as_generator(seed)

    def select(self, values: np.ndarray, epsilon: float) -> int:
        values = _as_values(values)
        if not 0.0 <= epsilon <= 1.0:
            raise PolicyError(f"epsilon must be in [0, 1], got {epsilon}")
        if self._rng.random() < epsilon:
            return int(self._rng.integers(0, values.shape[0]))
        return _argmax(values)


class GreedyPolicy:
    """Pure exploitation — used during evaluation rounds, where "the
    agents consistently exploit the action with the highest predicted
    reward" (Section IV-A)."""

    def select(self, values: np.ndarray) -> int:
        return _argmax(_as_values(values))


def _as_values(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=np.float64)
    if values.ndim != 1 or values.shape[0] == 0:
        raise PolicyError(
            f"values must be a non-empty 1-D array, got shape {values.shape}"
        )
    return values


def _argmax(values: np.ndarray) -> int:
    return int(np.argmax(values))
