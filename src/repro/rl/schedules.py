"""Exploration-parameter schedules.

Both agents anneal their exploration over *global* step counts: the
softmax temperature of the neural agent (Table I: ``tau_max`` 0.9,
``tau_decay`` 0.0005, ``tau_min`` 0.01) and the epsilon of the Profit
baseline. Schedules are pure functions of the step index, so restoring
an agent at step ``t`` restores its exploration exactly.
"""

from __future__ import annotations

from repro.utils.math import exponential_decay
from repro.utils.validation import require_non_negative, require_positive


class ExponentialDecaySchedule:
    """``value(t) = max(minimum, initial * exp(-rate * t))``."""

    def __init__(self, initial: float, rate: float, minimum: float = 0.0) -> None:
        self.initial = require_positive("initial", initial)
        self.rate = require_non_negative("rate", rate)
        self.minimum = require_non_negative("minimum", minimum)
        if minimum > initial:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"minimum ({minimum}) cannot exceed initial ({initial})"
            )

    def value(self, step: int) -> float:
        return exponential_decay(self.initial, self.rate, step, self.minimum)


class LinearDecaySchedule:
    """Linear ramp from ``initial`` to ``minimum`` over ``horizon`` steps."""

    def __init__(self, initial: float, minimum: float, horizon: int) -> None:
        self.initial = require_positive("initial", initial)
        self.minimum = require_non_negative("minimum", minimum)
        if horizon <= 0:
            from repro.errors import ConfigurationError

            raise ConfigurationError(f"horizon must be positive, got {horizon}")
        if minimum > initial:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                f"minimum ({minimum}) cannot exceed initial ({initial})"
            )
        self.horizon = horizon

    def value(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        if step >= self.horizon:
            return self.minimum
        fraction = step / self.horizon
        return self.initial + (self.minimum - self.initial) * fraction


class ConstantSchedule:
    """A fixed value, handy for evaluation and ablations."""

    def __init__(self, value: float) -> None:
        self._value = require_non_negative("value", value)

    def value(self, step: int) -> float:
        if step < 0:
            raise ValueError(f"step must be non-negative, got {step}")
        return self._value
