"""State discretisation for the tabular baselines.

Table-based RL (Profit [6], CollabPolicy [11]) cannot generalise across
continuous features, so states must be binned. The discretisers here
map a continuous feature onto an integer bin; a
:class:`StateDiscretizer` composes one discretiser per feature into a
hashable state key usable as a value-table index.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.processor import ProcessorSnapshot


class UniformDiscretizer:
    """Equal-width bins over ``[low, high]`` with saturating ends."""

    def __init__(self, low: float, high: float, bins: int) -> None:
        if bins <= 0:
            raise ConfigurationError(f"bins must be positive, got {bins}")
        if high <= low:
            raise ConfigurationError(f"invalid interval [{low}, {high}]")
        self.low = low
        self.high = high
        self.bins = bins

    @property
    def num_bins(self) -> int:
        return self.bins

    def bin(self, value: float) -> int:
        if value <= self.low:
            return 0
        if value >= self.high:
            return self.bins - 1
        fraction = (value - self.low) / (self.high - self.low)
        return min(int(fraction * self.bins), self.bins - 1)


class EdgesDiscretizer:
    """Bins defined by explicit interior edges (for skewed features).

    ``edges = [1, 5, 20]`` yields four bins:
    ``(-inf, 1), [1, 5), [5, 20), [20, inf)``.
    """

    def __init__(self, edges: Sequence[float]) -> None:
        if not edges:
            raise ConfigurationError("edges must be non-empty")
        if any(b <= a for a, b in zip(edges, list(edges)[1:])):
            raise ConfigurationError(f"edges must be strictly increasing, got {edges}")
        self.edges = list(edges)

    @property
    def num_bins(self) -> int:
        return len(self.edges) + 1

    def bin(self, value: float) -> int:
        return int(np.searchsorted(self.edges, value, side="right"))


class StateDiscretizer:
    """The Profit state key ``(f, P, IPC, MPKI)`` (Section IV-B).

    The frequency feature is already discrete (the OPP index); power,
    IPC and MPKI are binned with scales matched to the simulator's
    dynamic range. MPKI uses log-spaced edges because its distribution
    is heavily skewed (compute phases sit near 0, radix near 26).
    """

    def __init__(
        self,
        num_frequency_levels: int,
        power_bins: int = 8,
        power_range_w: Tuple[float, float] = (0.0, 1.6),
        ipc_bins: int = 6,
        ipc_range: Tuple[float, float] = (0.0, 1.5),
        mpki_edges: Sequence[float] = (1.0, 3.0, 8.0, 15.0, 25.0),
    ) -> None:
        if num_frequency_levels <= 0:
            raise ConfigurationError(
                f"num_frequency_levels must be positive, got {num_frequency_levels}"
            )
        self.num_frequency_levels = num_frequency_levels
        self.power = UniformDiscretizer(*power_range_w, power_bins)
        self.ipc = UniformDiscretizer(*ipc_range, ipc_bins)
        self.mpki = EdgesDiscretizer(mpki_edges)

    @property
    def num_states(self) -> int:
        """Size of the discrete state space (table rows)."""
        return (
            self.num_frequency_levels
            * self.power.num_bins
            * self.ipc.num_bins
            * self.mpki.num_bins
        )

    def key(self, snapshot: ProcessorSnapshot) -> Tuple[int, int, int, int]:
        """The hashable table index for a processor snapshot."""
        return (
            snapshot.frequency_index,
            self.power.bin(snapshot.power_w),
            self.ipc.bin(snapshot.ipc),
            self.mpki.bin(snapshot.mpki),
        )

    def key_raw(
        self, frequency_index: int, power_w: float, ipc: float, mpki: float
    ) -> Tuple[int, int, int, int]:
        """Key from bare feature values (for tests and tools)."""
        return (
            frequency_index,
            self.power.bin(power_w),
            self.ipc.bin(ipc),
            self.mpki.bin(mpki),
        )


def describe_bins(discretizer: StateDiscretizer) -> Dict[str, int]:
    """Bin counts per feature, for documentation and overhead analysis."""
    return {
        "frequency": discretizer.num_frequency_levels,
        "power": discretizer.power.num_bins,
        "ipc": discretizer.ipc.num_bins,
        "mpki": discretizer.mpki.num_bins,
        "total_states": discretizer.num_states,
    }
